"""Shared-delta factoring: evaluate a sweep's common prefix once.

Structured sweeps — grids, Monte Carlo samples, composed scenarios
(:mod:`repro.engine.plan`) — share most of their deltas: every point applies
the same base operations ("March price cut") before its own small
perturbation.  The sparse path still pays for the shared cells *per
scenario*; factoring splits the batch instead:

1. find the longest common *operation* prefix across the batch's scenarios
   (:func:`common_prefix_length` — operations compare by dataclass equality,
   so plans built from a shared base share them structurally);
2. apply that prefix once to the base row, producing the **factored
   baseline** row (:func:`factor_batch`);
3. lower only the *residual* operations of each scenario against the
   factored row, yielding a :class:`~repro.batch.planner.DeltaPlan` whose
   per-scenario changes are tiny.

The factored row and residual values are computed by the same sequential
float operations the unfactored lowering applies per scenario (prefix steps
first, residual steps after — in operation order), so the effective
valuation rows are bit-identical to the unfactored ones; the delta kernels
then see the same rows they would have seen, just against a different
baseline.

The hot loop lives in :func:`factor_batch` and is covered by cobralint's
CL003 hot-path-allocation rule — keep per-scenario allocations out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.batch.planner import DeltaPlan, ScenarioBatch
from repro.engine.scenario import Scenario
from repro.obs.tracer import trace
from repro.provenance.valuation import Valuation

_EMPTY_COLUMNS = np.zeros(0, dtype=np.intp)
_EMPTY_VALUES = np.zeros(0, dtype=np.float64)


def common_prefix_length(scenarios: Sequence[Scenario]) -> int:
    """The length of the longest operation prefix shared by all scenarios.

    Operations compare by dataclass equality: string/tuple selectors compare
    by value, callable selectors by identity — which is exactly what plans
    built from a shared base produce (the base's operation objects are
    literally reused), so composed sweeps factor even with predicate
    selectors.
    """
    if not scenarios:
        return 0
    first = scenarios[0].operations
    prefix = len(first)
    for scenario in scenarios[1:]:
        operations = scenario.operations
        limit = min(prefix, len(operations))
        k = 0
        while k < limit and first[k] == operations[k]:
            k += 1
        prefix = k
        if prefix == 0:
            return 0
    return prefix


@dataclass(frozen=True)
class Factoring:
    """The factored lowering of a scenario batch.

    Attributes
    ----------
    prefix_length:
        Number of leading operations shared by every scenario.
    factored_row:
        The base row with the shared prefix applied once.
    residual_plan:
        A :class:`DeltaPlan` whose ``base_row`` is the factored row and whose
        per-scenario changes cover only the residual (post-prefix) steps.
    prefix_cells:
        Distinct universe cells the shared prefix touches.
    residual_cells:
        Total changed cells across all residual plans.
    """

    prefix_length: int
    factored_row: np.ndarray
    residual_plan: DeltaPlan
    prefix_cells: int
    residual_cells: int

    def __len__(self) -> int:
        return len(self.residual_plan)

    @property
    def shared_fraction(self) -> float:
        """Fraction of per-scenario work the prefix absorbs.

        Per scenario the unfactored sparse path touches roughly
        ``prefix_cells + residual_cells / n`` cells; the factored path pays
        only the residual share.  1.0 means the sweep is pure prefix."""
        scenarios = max(1, len(self.residual_plan))
        per_scenario_residual = self.residual_cells / scenarios
        denominator = self.prefix_cells + per_scenario_residual
        if denominator == 0:
            return 0.0
        return self.prefix_cells / denominator


def prefix_statistics(
    batch: ScenarioBatch, prefix_length: Optional[int] = None
) -> Tuple[int, int, float]:
    """Cheap factoring stats without lowering: ``(prefix_length,
    prefix_cells, shared_fraction_estimate)``.

    The estimate compares the cells the prefix touches against the mean
    cells each scenario touches in total; the batch-mode heuristic uses it
    to decide whether factoring is worth the extra full-row evaluation.
    """
    if prefix_length is None:
        prefix_length = common_prefix_length(batch.scenarios)
    if prefix_length == 0 or not len(batch):
        return 0, 0, 0.0
    resolved = batch.resolved_operations
    prefix_ops = resolved[0][:prefix_length]
    prefix_selected = [columns for _kind, columns, _amount in prefix_ops
                       if columns.size]
    if not prefix_selected:
        return prefix_length, 0, 0.0
    prefix_cells = int(np.unique(np.concatenate(prefix_selected)).size)
    total = 0
    for operations in resolved:
        selected = [columns for _kind, columns, _amount in operations
                    if columns.size]
        if selected:
            total += int(np.unique(np.concatenate(selected)).size)
    mean_touched = total / len(batch)
    if mean_touched == 0:
        return prefix_length, prefix_cells, 0.0
    return prefix_length, prefix_cells, min(1.0, prefix_cells / mean_touched)


def factor_batch(
    batch: ScenarioBatch,
    base: Optional[Mapping[str, float]] = None,
    fill: float = 1.0,
    prefix_length: Optional[int] = None,
) -> Factoring:
    """Lower ``batch`` into a factored baseline plus residual deltas.

    Mirrors :meth:`ScenarioBatch.delta_plan` (same ``base``/``fill``
    contract, same value arithmetic) but applies the shared operation prefix
    exactly once.  The returned residual plan's rows, applied on top of the
    factored row, reproduce the unfactored valuation rows bit-for-bit.
    """
    if prefix_length is None:
        prefix_length = common_prefix_length(batch.scenarios)
    variables = batch.variables
    if base is None:
        base = Valuation.uniform(variables, fill)
    with trace(
        "batch.factor",
        scenarios=len(batch),
        variables=len(variables),
        prefix_length=prefix_length,
    ) as span:
        base_row = np.array(
            [float(base.get(name, fill)) for name in variables],
            dtype=np.float64,
        )
        resolved = batch.resolved_operations
        factored_row = base_row.copy()
        prefix_selected: List[np.ndarray] = []
        if len(batch):
            for kind, columns, amount in resolved[0][:prefix_length]:
                if columns.size == 0:
                    continue
                prefix_selected.append(columns)
                if kind == "scale":
                    factored_row[columns] *= amount
                else:
                    factored_row[columns] = amount
        prefix_cells = (
            int(np.unique(np.concatenate(prefix_selected)).size)
            if prefix_selected
            else 0
        )

        changes: List[Tuple[np.ndarray, np.ndarray]] = []
        residual_cells = 0
        for operations in resolved:
            live = [
                (kind, columns, amount)
                for kind, columns, amount in operations[prefix_length:]
                if columns.size
            ]
            if not live:
                changes.append((_EMPTY_COLUMNS, _EMPTY_VALUES))
                continue
            if len(live) == 1:
                kind, touched, amount = live[0]
                if kind == "scale":
                    values = factored_row[touched] * amount
                else:
                    values = np.full(touched.size, amount, dtype=np.float64)
            else:
                touched = np.unique(
                    np.concatenate(
                        [columns for _kind, columns, _amount in live]
                    )
                )
                # Fancy indexing yields a fresh array — no .copy() needed in
                # this per-scenario loop.
                values = factored_row[touched]
                for kind, columns, amount in live:
                    local = np.searchsorted(touched, columns)
                    if kind == "scale":
                        values[local] *= amount
                    else:
                        values[local] = amount
            moved = values != factored_row[touched]
            changed = touched[moved]
            changes.append((changed, values[moved]))
            residual_cells += int(changed.size)

        span.set("prefix_cells", prefix_cells)
        span.set("residual_cells", residual_cells)
        return Factoring(
            prefix_length=prefix_length,
            factored_row=factored_row,
            residual_plan=DeltaPlan(
                base_row=factored_row, changes=tuple(changes)
            ),
            prefix_cells=prefix_cells,
            residual_cells=residual_cells,
        )
