"""Aggregated results of a batch what-if evaluation.

A :class:`BatchReport` is the sweep-level counterpart of
:class:`~repro.engine.report.AssignmentReport`: instead of one scenario's
per-group comparison it holds the full ``scenarios × groups`` result
matrices — baseline, full provenance, and (optionally) compressed
provenance — plus the derived per-scenario deltas and abstraction-induced
errors, so an analyst can rank hundreds of hypotheticals at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's row of a :class:`BatchReport`."""

    name: str
    results: Dict[Tuple, float]
    deltas: Dict[Tuple, float]
    total_delta: float
    max_absolute_error: float
    mean_absolute_error: float

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly rendering (keys joined with ``/``)."""
        return {
            "name": self.name,
            "results": {
                "/".join(map(str, k)): v if isinstance(v, (int, float)) else str(v)
                for k, v in self.results.items()
            },
            "total_delta": self.total_delta,
            "max_absolute_error": self.max_absolute_error,
            "mean_absolute_error": self.mean_absolute_error,
        }


@dataclass(frozen=True)
class BatchReport:
    """The outcome of evaluating a scenario batch against a provenance set.

    Attributes
    ----------
    scenario_names:
        One name per row of the result matrices.
    keys:
        One result key per column.
    baseline:
        The query results under the base valuation, shape ``(groups,)``.
    full_results:
        Per-scenario results from the full provenance,
        shape ``(scenarios, groups)``.
    compressed_results:
        Per-scenario results from the compressed provenance (meta-variable
        defaults derived per scenario), or ``None`` when no abstraction was
        available.  Same shape as ``full_results``.
    full_size / compressed_size:
        Provenance sizes in monomials (``compressed_size`` is ``None``
        without an abstraction).
    semiring:
        The evaluation backend's name.  Numeric backends (``real``,
        ``tropical``, ``bool``) store float matrices; set-valued backends
        (``why``, ``lineage``) store object matrices of semiring values, and
        the delta/error matrices below are derived through the backend's
        error measure (symmetric-difference cardinality).
    mode:
        Which evaluation path produced the matrices: ``"dense"`` (the full
        ``scenarios × variables`` matrix pipeline), ``"sparse"`` (baseline-
        once delta evaluation), ``"factored"`` (shared-prefix deltas
        evaluated once, residual deltas per scenario), ``"mixed"`` (a
        chunked plan evaluation whose chunks took different paths) or
        ``"generic"`` (the per-scenario symbolic
        fallback of set-valued semirings).  Both numeric paths produce
        element-wise equal results; the field records what ``mode="auto"``
        picked.
    degradations:
        Resilience events the evaluation recovered from (shard retries,
        salvaged pool breaks, quarantined stores, serial fallbacks), one
        human-readable sentence each.  Empty for a clean run; non-empty
        means the numbers are exact but the sweep *succeeded degraded* —
        worth surfacing before trusting latency measurements.
    """

    scenario_names: Tuple[str, ...]
    keys: Tuple[Tuple, ...]
    baseline: np.ndarray
    full_results: np.ndarray
    compressed_results: Optional[np.ndarray] = None
    full_size: int = 0
    compressed_size: Optional[int] = None
    semiring: str = "real"
    mode: str = "dense"
    degradations: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether the evaluation recovered from any failure along the way."""
        return bool(self.degradations)

    def __len__(self) -> int:
        return len(self.scenario_names)

    def _backend(self):
        from repro.provenance.backends import resolve_backend

        return resolve_backend(self.semiring)

    def _is_object_valued(self) -> bool:
        return self.full_results.dtype == object

    def _elementwise(self, func, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Map a binary backend function over object-valued result matrices.

        ``left`` may be the 1-D baseline (broadcast along rows) or a matrix
        of ``right``'s shape.
        """
        result = np.zeros(right.shape, dtype=np.float64)
        for index in np.ndindex(right.shape):
            result[index] = func(left[index[-1]] if left.ndim == 1 else left[index],
                                 right[index])
        return result

    def _map_magnitudes(self, values: np.ndarray) -> np.ndarray:
        backend = self._backend()
        result = np.zeros(values.shape, dtype=np.float64)
        for index in np.ndindex(values.shape):
            result[index] = backend.magnitude(values[index])
        return result

    # -- derived matrices ---------------------------------------------------

    @property
    def deltas(self) -> np.ndarray:
        """Per-scenario, per-group change from the baseline (full provenance).

        Signed float differences for numeric semirings; for set-valued ones
        the backend's distance from the baseline (always non-negative).
        """
        if self._is_object_valued():
            return self._elementwise(
                self._backend().delta, self.baseline, self.full_results
            )
        base = self.baseline[np.newaxis, :]
        with np.errstate(invalid="ignore"):
            deltas = self.full_results - base
        # Equal entries are zero change even at infinity (a tropical group
        # unreachable in both evaluations would otherwise yield inf - inf
        # = NaN and poison total_delta and the scenario ranking).
        return np.where(self.full_results == base, 0.0, deltas)

    @property
    def total_deltas(self) -> np.ndarray:
        """Per-scenario total change, summed over the result groups."""
        return self.deltas.sum(axis=1)

    @property
    def absolute_errors(self) -> Optional[np.ndarray]:
        """``|full - compressed|`` per scenario and group, if compressed ran.

        Per the backend's error measure: numeric deltas for numeric
        semirings, symmetric-difference cardinality for set-valued ones.
        """
        if self.compressed_results is None:
            return None
        if self._is_object_valued():
            return self._elementwise(
                self._backend().error, self.full_results, self.compressed_results
            )
        with np.errstate(invalid="ignore"):
            errors = np.abs(self.full_results - self.compressed_results)
        return np.where(self.full_results == self.compressed_results, 0.0, errors)

    @property
    def max_absolute_error(self) -> float:
        """Largest abstraction-induced deviation across the whole sweep."""
        errors = self.absolute_errors
        if errors is None or errors.size == 0:
            return 0.0
        return float(errors.max())

    @property
    def mean_absolute_error(self) -> float:
        """Mean abstraction-induced deviation across the whole sweep."""
        errors = self.absolute_errors
        if errors is None or errors.size == 0:
            return 0.0
        return float(errors.mean())

    @property
    def max_relative_error(self) -> float:
        """Largest relative deviation (0 where the full result is ~0)."""
        errors = self.absolute_errors
        if errors is None or errors.size == 0:
            return 0.0
        if self._is_object_valued():
            scale = self._map_magnitudes(self.full_results)
        else:
            scale = np.abs(self.full_results)
        # Epsilon-clamped denominator: a corrupted zero-valued full result
        # is reported as a (large) relative error, never silently skipped;
        # corruption of an infinite-scale group reports inf, not inf/inf.
        from repro.core.metrics import ZERO_BASELINE_EPSILON

        with np.errstate(divide="ignore", invalid="ignore"):
            relative = errors / np.maximum(scale, ZERO_BASELINE_EPSILON)
        relative = np.where(errors == 0.0, 0.0, relative)
        relative = np.where(np.isnan(relative), np.inf, relative)
        return float(relative.max())

    # -- per-scenario views -------------------------------------------------

    def outcome(self, index: int) -> ScenarioOutcome:
        """The named per-group view of the ``index``-th scenario."""
        row = self.full_results[index]
        delta_row = self.deltas[index]
        errors = self.absolute_errors
        error_row = (
            errors[index] if errors is not None else np.zeros(len(row), dtype=np.float64)
        )
        if self._is_object_valued():
            results = {key: row[i] for i, key in enumerate(self.keys)}
        else:
            results = {key: float(row[i]) for i, key in enumerate(self.keys)}
        return ScenarioOutcome(
            name=self.scenario_names[index],
            results=results,
            deltas={key: float(delta_row[i]) for i, key in enumerate(self.keys)},
            total_delta=float(delta_row.sum()),
            max_absolute_error=float(error_row.max()) if error_row.size else 0.0,
            mean_absolute_error=float(error_row.mean()) if error_row.size else 0.0,
        )

    def outcomes(self) -> Tuple[ScenarioOutcome, ...]:
        """All per-scenario views, in row order."""
        return tuple(self.outcome(i) for i in range(len(self)))

    def ranked_by_total_delta(self, descending: bool = True) -> Tuple[int, ...]:
        """Scenario indices ordered by total change from the baseline."""
        order = np.argsort(self.total_deltas, kind="stable")
        if descending:
            order = order[::-1]
        return tuple(int(i) for i in order)

    # -- rendering ----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A flat dictionary of the headline numbers (for benchmarks/JSON)."""
        return {
            "scenarios": len(self),
            "groups": len(self.keys),
            "semiring": self.semiring,
            "mode": self.mode,
            "full_size": self.full_size,
            "compressed_size": self.compressed_size,
            "max_absolute_error": self.max_absolute_error,
            "mean_absolute_error": self.mean_absolute_error,
            "max_relative_error": self.max_relative_error,
            "degradations": list(self.degradations),
        }

    def render_text(self, max_rows: int = 10) -> str:
        """A human-readable sweep table (scenarios ranked by |total delta|)."""
        lines: List[str] = []
        suffix = "" if self.semiring == "real" else f", semiring: {self.semiring}"
        if self.mode != "dense":
            suffix += f", mode: {self.mode}"
        lines.append(
            f"{len(self)} scenarios x {len(self.keys)} result groups "
            f"(full provenance: {self.full_size} monomials{suffix})"
        )
        if self.compressed_results is not None:
            lines.append(
                f"compressed provenance: {self.compressed_size} monomials, "
                f"abstraction error mean {self.mean_absolute_error:.4g} / "
                f"max {self.max_absolute_error:.4g} "
                f"(max relative {self.max_relative_error:.2%})"
            )
        lines.append("")
        header = f"{'scenario':<32} {'total delta':>14}"
        if self.compressed_results is not None:
            header += f" {'max abs err':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        total_deltas = self.total_deltas
        errors = self.absolute_errors
        ranked = sorted(
            range(len(self)), key=lambda i: abs(float(total_deltas[i])), reverse=True
        )
        for index in ranked[:max_rows]:
            line = (
                f"{self.scenario_names[index]:<32} "
                f"{float(total_deltas[index]):>14.2f}"
            )
            if errors is not None:
                row_max = float(errors[index].max()) if errors[index].size else 0.0
                line += f" {row_max:>12.4f}"
            lines.append(line)
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more scenarios)")
        if self.degradations:
            lines.append("")
            lines.append(f"degraded ({len(self.degradations)} recoveries):")
            for event in self.degradations:
                lines.append(f"  - {event}")
        return "\n".join(lines)
