"""Batch what-if evaluation: many scenarios, one vectorised pass.

The interactive :class:`~repro.engine.session.CobraSession` answers one
hypothetical at a time.  This subpackage is the service-oriented counterpart
built for heavy multi-scenario traffic:

* :mod:`repro.batch.planner` — :class:`ScenarioBatch` lowers a list of
  :class:`~repro.engine.scenario.Scenario` objects over a shared variable
  index, either into one ``scenarios × variables`` valuation matrix or into
  a sparse :class:`DeltaPlan` (shared base row + per-scenario changed
  cells);
* :mod:`repro.batch.evaluator` — :class:`BatchEvaluator` compiles provenance
  sets once (LRU-cached by content fingerprint) and evaluates whole sweeps
  with chunked matrix kernels or baseline-once sparse delta kernels
  (``mode="auto"`` picks per batch), optionally sharded across worker
  processes;
* :mod:`repro.batch.factored` — shared-delta factoring for structured
  sweeps: the scenarios' common operation prefix is evaluated once against
  the base row and only small per-scenario residual deltas hit the kernels
  (``mode="auto"`` upgrades qualifying sparse batches to it);
* :mod:`repro.batch.report` — :class:`BatchReport` aggregates per-scenario /
  per-group deltas against the baseline and the abstraction-induced error of
  the compressed provenance across the sweep.

The convenient entry points are
:meth:`repro.engine.session.CobraSession.evaluate_many` (flat scenario
lists) and :meth:`repro.engine.session.CobraSession.evaluate_plan`
(declarative :mod:`repro.engine.plan` sweeps), which route through a
session's provenance (and its compressed form, if one was computed).
"""

from repro.batch.planner import DeltaPlan, ScenarioBatch
from repro.batch.evaluator import (
    BatchEvaluator,
    lower_meta_deltas,
    lower_meta_matrix,
)
from repro.batch.factored import (
    Factoring,
    common_prefix_length,
    factor_batch,
    prefix_statistics,
)
from repro.batch.report import BatchReport, ScenarioOutcome

__all__ = [
    "ScenarioBatch",
    "DeltaPlan",
    "BatchEvaluator",
    "lower_meta_matrix",
    "lower_meta_deltas",
    "Factoring",
    "common_prefix_length",
    "factor_batch",
    "prefix_statistics",
    "BatchReport",
    "ScenarioOutcome",
]
