"""Lowering scenario lists into valuation matrices.

The interactive engine answers one hypothetical at a time by rewriting a
:class:`~repro.provenance.valuation.Valuation` per scenario.  For batch
what-if traffic that per-scenario dict churn dominates, so the planner
lowers a list of :class:`~repro.engine.scenario.Scenario` objects into one
``scenarios × variables`` numpy matrix: row *s* is the value vector the
*s*-th scenario induces over a shared, sorted variable universe.  The matrix
feeds straight into
:meth:`~repro.provenance.valuation.CompiledProvenanceSet.evaluate_matrix`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.scenario import Scenario
from repro.provenance.valuation import Valuation


class ScenarioBatch:
    """A list of scenarios lowered over one shared variable index.

    Parameters
    ----------
    scenarios:
        The hypotheticals to evaluate, in row order.
    variables:
        The variable universe the scenarios' selectors are resolved against
        (typically the union of the provenance's variables and the base
        valuation's).  Sorted into a canonical column order.
    """

    __slots__ = ("_scenarios", "_variables", "_index", "_resolved")

    def __init__(
        self, scenarios: Sequence[Scenario], variables: Iterable[str]
    ) -> None:
        self._scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        self._variables: Tuple[str, ...] = tuple(sorted(set(variables)))
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self._variables)
        }
        # Selectors are resolved once per scenario against the shared
        # universe; applying the plan is pure array arithmetic from here on.
        self._resolved = tuple(
            tuple(
                (kind, np.array([self._index[n] for n in selected], dtype=np.intp), amount)
                for kind, selected, amount in scenario.resolved_operations(self._variables)
            )
            for scenario in self._scenarios
        )

    # -- inspection ---------------------------------------------------------

    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        """The scenarios, in row order."""
        return self._scenarios

    @property
    def names(self) -> Tuple[str, ...]:
        """The scenario names, in row order."""
        return tuple(scenario.name for scenario in self._scenarios)

    @property
    def variables(self) -> Tuple[str, ...]:
        """The shared variable universe, in column order (sorted)."""
        return self._variables

    def __len__(self) -> int:
        return len(self._scenarios)

    # -- lowering -----------------------------------------------------------

    def valuation_matrix(
        self, base: Optional[Mapping[str, float]] = None, fill: float = 1.0
    ) -> np.ndarray:
        """The ``scenarios × variables`` matrix of hypothetical valuations.

        Row *s* equals ``scenarios[s].apply(base, variables)`` restricted to
        the universe, with variables missing from ``base`` defaulting to
        ``fill`` — 1.0 (the identity valuation) on the float pipeline, the
        backend's identity fill for other numeric semirings (e.g. 0.0 added
        cost in the tropical backend).
        """
        if base is None:
            base = Valuation.uniform(self._variables, fill)
        base_row = np.array(
            [float(base.get(name, fill)) for name in self._variables],
            dtype=np.float64,
        )
        matrix = np.tile(base_row, (len(self._scenarios), 1))
        for row, operations in enumerate(self._resolved):
            for kind, columns, amount in operations:
                if columns.size == 0:
                    continue
                if kind == "scale":
                    matrix[row, columns] *= amount
                else:
                    matrix[row, columns] = amount
        return matrix

    def columns_for(self, names: Sequence[str]) -> np.ndarray:
        """Column indices of ``names`` within the universe (for submatrices).

        Raises ``KeyError`` for names outside the universe — callers should
        build the batch over the union of every variable set they need.
        """
        return np.array([self._index[name] for name in names], dtype=np.intp)
