"""Lowering scenario lists into valuation matrices and sparse delta plans.

The interactive engine answers one hypothetical at a time by rewriting a
:class:`~repro.provenance.valuation.Valuation` per scenario.  For batch
what-if traffic that per-scenario dict churn dominates, so the planner
lowers a list of :class:`~repro.engine.scenario.Scenario` objects over a
shared, sorted variable universe — in one of two shapes:

* :meth:`ScenarioBatch.valuation_matrix` — the dense ``scenarios ×
  variables`` matrix, feeding
  :meth:`~repro.provenance.valuation.CompiledProvenanceSet.evaluate_matrix`;
* :meth:`ScenarioBatch.delta_plan` — the sparse lowering: one shared base
  row plus per-scenario ``(changed_columns, new_values)`` pairs, feeding
  :meth:`~repro.provenance.valuation.CompiledProvenanceSet.evaluate_deltas`.
  Real what-if scenarios perturb a handful of variables, so the plan is a
  few cells per scenario instead of a full row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.scenario import Scenario
from repro.obs.tracer import trace
from repro.provenance.valuation import Valuation

_EMPTY_COLUMNS = np.zeros(0, dtype=np.intp)
_EMPTY_VALUES = np.zeros(0, dtype=np.float64)


@dataclass(frozen=True)
class DeltaPlan:
    """The sparse lowering of a scenario batch.

    Attributes
    ----------
    base_row:
        The shared base value vector over the batch's variable universe.
    changes:
        Per scenario, ``(changed_columns, new_values)`` — only the cells
        whose value actually differs from ``base_row`` (a no-op scenario has
        two empty arrays).  Columns index the batch universe.
    """

    base_row: np.ndarray
    changes: Tuple[Tuple[np.ndarray, np.ndarray], ...]

    def __len__(self) -> int:
        return len(self.changes)

    def changed_cells(self) -> int:
        """Total number of changed cells across the whole batch."""
        return sum(columns.size for columns, _values in self.changes)

    def project(
        self, columns: np.ndarray
    ) -> Tuple[np.ndarray, Tuple[Tuple[np.ndarray, np.ndarray], ...]]:
        """Restrict the plan to a compiled set's variable subspace.

        ``columns`` maps the target's variable order to universe columns
        (``batch.columns_for(compiled.variables)``).  Returns the projected
        base vector and per-scenario changes with universe columns remapped
        to target columns; changed variables outside the subspace (which
        cannot affect the target's results) are dropped.
        """
        columns = np.asarray(columns, dtype=np.intp)
        inverse = np.full(len(self.base_row), -1, dtype=np.intp)
        inverse[columns] = np.arange(columns.size, dtype=np.intp)
        projected: List[Tuple[np.ndarray, np.ndarray]] = []
        for changed, values in self.changes:
            local = inverse[changed]
            keep = local >= 0
            if keep.all():
                projected.append((local, values))
            else:
                projected.append((local[keep], values[keep]))
        return self.base_row[columns], tuple(projected)


class ScenarioBatch:
    """A list of scenarios lowered over one shared variable index.

    Parameters
    ----------
    scenarios:
        The hypotheticals to evaluate, in row order.
    variables:
        The variable universe the scenarios' selectors are resolved against
        (typically the union of the provenance's variables and the base
        valuation's).  Sorted into a canonical column order.
    """

    __slots__ = ("_scenarios", "_variables", "_index", "_resolved")

    def __init__(
        self, scenarios: Sequence[Scenario], variables: Iterable[str]
    ) -> None:
        self._scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        self._variables: Tuple[str, ...] = tuple(sorted(set(variables)))
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self._variables)
        }
        # Selectors are resolved once per scenario against the shared
        # universe (one membership set for the whole batch); applying the
        # plan is pure array arithmetic from here on.
        name_set = frozenset(self._variables)
        self._resolved = tuple(
            tuple(
                (kind, np.array([self._index[n] for n in selected], dtype=np.intp), amount)
                for kind, selected, amount in scenario.resolved_operations(
                    self._variables, name_set
                )
            )
            for scenario in self._scenarios
        )

    # -- inspection ---------------------------------------------------------

    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        """The scenarios, in row order."""
        return self._scenarios

    @property
    def names(self) -> Tuple[str, ...]:
        """The scenario names, in row order."""
        return tuple(scenario.name for scenario in self._scenarios)

    @property
    def variables(self) -> Tuple[str, ...]:
        """The shared variable universe, in column order (sorted)."""
        return self._variables

    def __len__(self) -> int:
        return len(self._scenarios)

    @property
    def resolved_operations(
        self,
    ) -> Tuple[Tuple[Tuple[str, np.ndarray, float], ...], ...]:
        """Per scenario, the resolved ``(kind, columns, amount)`` steps.

        Columns index the batch universe (``np.intp`` arrays), in the
        scenario's operation order — the contract the factored compiler
        (:mod:`repro.batch.factored`) relies on: operations resolve
        identically for every scenario sharing them, so a shared operation
        prefix resolves to a shared step prefix.
        """
        return self._resolved

    @property
    def noop_rows(self) -> Tuple[int, ...]:
        """Rows whose resolved operations all select nothing.

        A scenario whose selectors resolve to empty index arrays (ghost
        names, empty lists, predicates matching nothing) cannot move any
        value, so evaluators reuse the shared baseline row for it instead of
        re-evaluating.
        """
        return tuple(
            row
            for row, operations in enumerate(self._resolved)
            if all(columns.size == 0 for _kind, columns, _amount in operations)
        )

    def is_noop(self, row: int) -> bool:
        """Whether the ``row``-th scenario resolves to a pure no-op."""
        return all(
            columns.size == 0 for _kind, columns, _amount in self._resolved[row]
        )

    def touched_fraction(self) -> float:
        """Mean fraction of the universe the scenarios touch (the sparse/dense
        heuristic): per scenario, distinct selected columns over universe
        size, averaged over the batch."""
        if not self._scenarios or not self._variables:
            return 0.0
        total = 0
        for operations in self._resolved:
            selected = [columns for _kind, columns, _amount in operations
                        if columns.size]
            if not selected:
                continue
            total += np.unique(np.concatenate(selected)).size
        return total / (len(self._scenarios) * len(self._variables))

    # -- lowering -----------------------------------------------------------

    def valuation_matrix(
        self, base: Optional[Mapping[str, float]] = None, fill: float = 1.0
    ) -> np.ndarray:
        """The ``scenarios × variables`` matrix of hypothetical valuations.

        Row *s* equals ``scenarios[s].apply(base, variables)`` restricted to
        the universe, with variables missing from ``base`` defaulting to
        ``fill`` — 1.0 (the identity valuation) on the float pipeline, the
        backend's identity fill for other numeric semirings (e.g. 0.0 added
        cost in the tropical backend).
        """
        with trace(
            "batch.lower",
            kind="dense",
            scenarios=len(self._scenarios),
            variables=len(self._variables),
        ):
            if base is None:
                base = Valuation.uniform(self._variables, fill)
            base_row = np.array(
                [float(base.get(name, fill)) for name in self._variables],
                dtype=np.float64,
            )
            matrix = np.tile(base_row, (len(self._scenarios), 1))
            for row, operations in enumerate(self._resolved):
                for kind, columns, amount in operations:
                    if columns.size == 0:
                        continue
                    if kind == "scale":
                        matrix[row, columns] *= amount
                    else:
                        matrix[row, columns] = amount
            return matrix

    def delta_plan(
        self, base: Optional[Mapping[str, float]] = None, fill: float = 1.0
    ) -> DeltaPlan:
        """The sparse lowering: a shared base row plus per-scenario changes.

        Produces exactly the rows :meth:`valuation_matrix` would — but as
        ``(changed_columns, new_values)`` pairs against the base row, with
        cells that end up back at their base value filtered out.  Cost is
        O(universe + touched cells), independent of the batch size × universe
        product the dense lowering pays.
        """
        with trace(
            "batch.lower",
            kind="sparse",
            scenarios=len(self._scenarios),
            variables=len(self._variables),
        ):
            return self._delta_plan(base, fill)

    def _delta_plan(
        self, base: Optional[Mapping[str, float]], fill: float
    ) -> DeltaPlan:
        if base is None:
            base = Valuation.uniform(self._variables, fill)
        base_row = np.array(
            [float(base.get(name, fill)) for name in self._variables],
            dtype=np.float64,
        )
        changes: List[Tuple[np.ndarray, np.ndarray]] = []
        for operations in self._resolved:
            live = [
                (kind, columns, amount)
                for kind, columns, amount in operations
                if columns.size
            ]
            if not live:
                changes.append((_EMPTY_COLUMNS, _EMPTY_VALUES))
                continue
            if len(live) == 1:
                # The common one-operation scenario needs no column union.
                kind, touched, amount = live[0]
                if kind == "scale":
                    values = base_row[touched] * amount
                else:
                    values = np.full(touched.size, amount, dtype=np.float64)
            else:
                touched = np.unique(
                    np.concatenate([columns for _kind, columns, _amount in live])
                )
                values = base_row[touched].copy()
                for kind, columns, amount in live:
                    local = np.searchsorted(touched, columns)
                    if kind == "scale":
                        values[local] *= amount
                    else:
                        values[local] = amount
            moved = values != base_row[touched]
            changes.append((touched[moved], values[moved]))
        return DeltaPlan(base_row=base_row, changes=tuple(changes))

    def columns_for(self, names: Sequence[str]) -> np.ndarray:
        """Column indices of ``names`` within the universe (for submatrices).

        Raises ``KeyError`` for names outside the universe — callers should
        build the batch over the union of every variable set they need.
        """
        return np.array([self._index[name] for name in names], dtype=np.intp)
