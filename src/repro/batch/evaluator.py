"""The batch what-if evaluation service.

:class:`BatchEvaluator` ties the batch subsystem together: it compiles
provenance sets once (an LRU cache keyed by
:meth:`~repro.provenance.polynomial.ProvenanceSet.fingerprint`), lowers
scenario lists into valuation matrices via
:class:`~repro.batch.planner.ScenarioBatch`, and evaluates the whole sweep
with vectorised matrix kernels — chunked to bound memory and optionally
fanned out over a thread pool for mega-batches (the kernels are numpy-bound,
so threads parallelise them without pickling anything).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.compression import Abstraction, Compressor
from repro.core.defaults import default_meta_valuation
from repro.engine.scenario import Scenario
from repro.provenance.backends import BackendLike, resolve_backend
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.valuation import (
    CompiledProvenanceSet,
    FingerprintCache,
    Valuation,
)
from repro.batch.planner import ScenarioBatch
from repro.batch.report import BatchReport

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
    from repro.core.optimizer import OptimizationResult

#: Target number of (monomial × scenario) cells per evaluation chunk; keeps
#: the per-chunk gather/product temporaries comfortably inside cache/RAM.
_TARGET_CELLS_PER_CHUNK = 4_000_000


def lower_meta_matrix(
    abstraction: Abstraction,
    batch: ScenarioBatch,
    matrix: np.ndarray,
    meta_variables: Sequence[str],
    fill: float = 1.0,
) -> np.ndarray:
    """Lower a scenarios × originals matrix to the compressed variable space.

    Column *j* of the result is the value of ``meta_variables[j]`` under each
    scenario, derived exactly as the interactive engine's
    ``default_meta_valuation(reducer="mean", on_missing="skip")``: the mean of
    the scenario values of the meta-variable's members that occur in the
    universe, the scenario value itself for originals the abstraction leaves
    untouched, and ``fill`` (the backend's identity fill, 1.0 on the float
    pipeline) otherwise.  The mean lowering is shared by every numeric
    backend: it is the paper's default for real and tropical values, and for
    0/1 Boolean columns it is non-zero exactly when the disjunction is.
    """
    grouped = abstraction.grouped_variables()
    mapped = set(abstraction.mapping)
    universe = set(batch.variables)
    result = np.full(
        (matrix.shape[0], len(meta_variables)), fill, dtype=np.float64
    )
    for j, variable in enumerate(meta_variables):
        members = grouped.get(variable)
        if members is not None:
            present = [m for m in members if m in universe]
            if present:
                result[:, j] = matrix[:, batch.columns_for(present)].mean(axis=1)
        elif variable in universe and variable not in mapped:
            result[:, j] = matrix[:, batch.columns_for([variable])[0]]
    return result


class BatchEvaluator:
    """Evaluates many scenarios against (possibly many) provenance sets.

    Parameters
    ----------
    cache_size:
        How many compiled provenance sets to keep, LRU-evicted.  Compilation
        is the expensive step (one pass over every monomial), so a service
        answering what-if traffic over a handful of live provenance sets pays
        it once per set, not once per request.
    max_workers:
        When set (> 1), mega-batches are split into chunks evaluated on a
        thread pool; the numpy kernels release the GIL for the bulk of the
        work.  ``None`` evaluates chunks serially on the calling thread.
    chunk_size:
        Rows per evaluation chunk.  Defaults to a size keeping roughly
        ``4e6`` monomial × scenario cells in flight per chunk.
    """

    def __init__(
        self,
        cache_size: int = 8,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        compressor: Optional[Compressor] = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None)")
        self._max_workers = max_workers
        self._chunk_size = chunk_size
        self._compiled = FingerprintCache(cache_size)
        self._compressor = compressor

    # -- compiled-provenance cache -------------------------------------------

    def compile(self, provenance: ProvenanceSet, semiring: "BackendLike" = None):
        """The compiled form of ``provenance``, cached by content fingerprint.

        The cache is keyed by ``(fingerprint, backend name)``, so the same
        provenance compiled for several semirings coexists; the default is
        the real backend, whose compiled form is ``CompiledProvenanceSet``.
        """
        backend = resolve_backend(semiring)
        return self._compiled.get_or_build(
            (provenance.fingerprint(), backend.name),
            lambda: backend.compile(provenance),
        )

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the compiled-provenance cache."""
        return self._compiled.info()

    def clear_cache(self) -> None:
        """Drop every cached compilation (counters are kept)."""
        self._compiled.clear()

    # -- compression ----------------------------------------------------------

    @property
    def compressor(self) -> Compressor:
        """The evaluator's compression service (lazy; share one for a fleet)."""
        if self._compressor is None:
            self._compressor = Compressor()
        return self._compressor

    # -- matrix evaluation ----------------------------------------------------

    def _resolve_chunk_size(self, compiled: CompiledProvenanceSet, rows: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        per_row = max(1, compiled.size())
        return max(1, min(rows, _TARGET_CELLS_PER_CHUNK // per_row))

    def evaluate_matrix(
        self, compiled: CompiledProvenanceSet, matrix: np.ndarray
    ) -> np.ndarray:
        """Chunked (and optionally threaded) ``scenarios × groups`` evaluation."""
        matrix = np.asarray(matrix, dtype=np.float64)
        rows = matrix.shape[0]
        chunk = self._resolve_chunk_size(compiled, rows)
        if rows <= chunk:
            return compiled.evaluate_matrix(matrix)
        pieces = [matrix[start : start + chunk] for start in range(0, rows, chunk)]
        if self._max_workers is not None and self._max_workers > 1 and len(pieces) > 1:
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                results = list(pool.map(compiled.evaluate_matrix, pieces))
        else:
            results = [compiled.evaluate_matrix(piece) for piece in pieces]
        return np.concatenate(results, axis=0)

    # -- the full service entry point -----------------------------------------

    def evaluate(
        self,
        provenance: ProvenanceSet,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]] = None,
        compressed: Optional[ProvenanceSet] = None,
        abstraction: Optional[Abstraction] = None,
        semiring: BackendLike = None,
    ) -> BatchReport:
        """Evaluate ``scenarios`` against ``provenance`` in one vectorised pass.

        When ``compressed`` and ``abstraction`` are given, the sweep is also
        evaluated against the compressed provenance (per-scenario
        meta-variable values derived as member means), so the report carries
        the abstraction-induced error across the whole sweep.

        ``semiring`` selects the evaluation backend: numeric backends (real,
        tropical, bool) take the chunked matrix path; set-valued backends
        fall back to a per-scenario Python loop over the generic evaluator,
        producing object-valued result matrices with backend-defined deltas.
        """
        if (compressed is None) != (abstraction is None):
            raise ValueError(
                "compressed and abstraction must be provided together"
            )
        backend = resolve_backend(semiring)
        if not backend.is_numeric:
            return self._evaluate_generic(
                provenance, scenarios, base_valuation, compressed, abstraction, backend
            )
        fill = getattr(backend, "numeric_fill", 1.0)
        base = (
            Valuation(dict(base_valuation), semiring=backend)
            if base_valuation
            else Valuation(semiring=backend)
        )
        universe = set(provenance.variables()) | set(base)
        batch = ScenarioBatch(scenarios, universe)
        matrix = batch.valuation_matrix(base, fill=fill)

        compiled_full = self.compile(provenance, backend)
        full_columns = batch.columns_for(compiled_full.variables)
        base_row = np.array(
            [float(base.get(name, fill)) for name in compiled_full.variables],
            dtype=np.float64,
        )
        baseline = compiled_full.evaluate_matrix(base_row[np.newaxis, :])[0]
        full_results = self.evaluate_matrix(compiled_full, matrix[:, full_columns])

        compressed_results = None
        compressed_size = None
        if compressed is not None and abstraction is not None:
            compiled_compressed = self.compile(compressed, backend)
            meta_matrix = lower_meta_matrix(
                abstraction, batch, matrix, compiled_compressed.variables, fill=fill
            )
            meta_rows = self.evaluate_matrix(compiled_compressed, meta_matrix)
            # Align the compressed columns with the full provenance's keys;
            # groups absent from the compressed set evaluate to the semiring
            # zero, as in the interactive report.
            key_column = {key: i for i, key in enumerate(compiled_compressed.keys)}
            zero = float(backend.semiring.zero)
            compressed_results = np.full_like(full_results, zero)
            for j, key in enumerate(compiled_full.keys):
                column = key_column.get(key)
                if column is not None:
                    compressed_results[:, j] = meta_rows[:, column]
            compressed_size = compressed.size()

        return BatchReport(
            scenario_names=batch.names,
            keys=compiled_full.keys,
            baseline=baseline,
            full_results=full_results,
            compressed_results=compressed_results,
            full_size=provenance.size(),
            compressed_size=compressed_size,
            semiring=backend.name,
        )

    def _evaluate_generic(
        self,
        provenance: ProvenanceSet,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]],
        compressed: Optional[ProvenanceSet],
        abstraction: Optional[Abstraction],
        backend,
    ) -> BatchReport:
        """The pure-Python fallback for set-valued semirings (Why, Lineage)."""
        base = (
            Valuation(dict(base_valuation), semiring=backend)
            if base_valuation
            else Valuation(semiring=backend)
        )
        universe = tuple(sorted(set(provenance.variables()) | set(base)))
        base = base.updated(
            {
                name: backend.default_value(name)
                for name in universe
                if name not in base
            }
        )
        compiled_full = self.compile(provenance, backend)
        compiled_compressed = None
        if compressed is not None and abstraction is not None:
            compiled_compressed = self.compile(compressed, backend)

        keys = compiled_full.keys
        names = tuple(scenario.name for scenario in scenarios)
        baseline_map = compiled_full.evaluate(base)
        baseline = np.empty(len(keys), dtype=object)
        for j, key in enumerate(keys):
            baseline[j] = baseline_map[key]

        zero = backend.semiring.zero
        full_results = np.empty((len(scenarios), len(keys)), dtype=object)
        compressed_results = (
            np.empty((len(scenarios), len(keys)), dtype=object)
            if compiled_compressed is not None
            else None
        )
        for i, scenario in enumerate(scenarios):
            valuation = scenario.apply(base, universe)
            row = compiled_full.evaluate(valuation)
            for j, key in enumerate(keys):
                full_results[i, j] = row[key]
            if compiled_compressed is not None:
                meta_valuation = default_meta_valuation(
                    abstraction, valuation, on_missing="skip", semiring=backend
                )
                missing = meta_valuation.missing(compiled_compressed.variables)
                if missing:
                    meta_valuation = meta_valuation.updated(
                        {name: backend.default_value(name) for name in missing}
                    )
                compressed_row = compiled_compressed.evaluate(meta_valuation)
                for j, key in enumerate(keys):
                    compressed_results[i, j] = compressed_row.get(key, zero)

        return BatchReport(
            scenario_names=names,
            keys=keys,
            baseline=baseline,
            full_results=full_results,
            compressed_results=compressed_results,
            full_size=provenance.size(),
            compressed_size=compressed.size() if compressed is not None else None,
            semiring=backend.name,
        )

    def compress_and_evaluate(
        self,
        provenance: ProvenanceSet,
        trees: "Union[AbstractionTree, AbstractionForest]",
        bound: int,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]] = None,
        strategy: str = "incremental",
        allow_infeasible: bool = False,
        semiring: BackendLike = None,
    ) -> Tuple[BatchReport, "OptimizationResult"]:
        """Compress under ``bound`` and evaluate ``scenarios`` in one call.

        The compress-once-then-sweep service path: the abstraction is chosen
        through :attr:`compressor` (so repeated calls over the same
        provenance/forest — even at different bounds — reuse one cached
        coarsening trajectory), and both the full and the compressed
        provenance come out of the fingerprint-keyed compile cache.  Returns
        the batch report together with the optimisation result that produced
        the abstraction.
        """
        result = self.compressor.compress(
            provenance,
            trees,
            bound,
            strategy=strategy,
            allow_infeasible=allow_infeasible,
        )
        report = self.evaluate(
            provenance,
            scenarios,
            base_valuation=base_valuation,
            compressed=result.compressed,
            abstraction=result.abstraction,
            semiring=semiring,
        )
        return report, result
