"""The batch what-if evaluation service.

:class:`BatchEvaluator` ties the batch subsystem together: it compiles
provenance sets once (an LRU cache keyed by
:meth:`~repro.provenance.polynomial.ProvenanceSet.fingerprint`), lowers
scenario lists through :class:`~repro.batch.planner.ScenarioBatch`, and
evaluates the whole sweep with one of three vectorised pipelines:

* **dense** — one ``scenarios × variables`` matrix through the segmented
  matrix kernels, chunked to a memory budget and optionally fanned out over
  a thread pool (the kernels release the GIL);
* **sparse** — the baseline valuation is evaluated **once**, then each
  scenario is applied as a ``(changed_columns, new_values)`` delta through
  the compiled sets' inverted variable→monomial index
  (:meth:`~repro.provenance.valuation.CompiledProvenanceSet.evaluate_deltas`),
  recomputing only affected monomials/segments.  Real what-if traffic
  perturbs a few variables per scenario, so this is the hot path;
* **factored** — for structured sweeps sharing a common operation prefix
  (grids, samples and composed plans from :mod:`repro.engine.plan`): the
  prefix is applied **once** to produce a factored baseline
  (:mod:`repro.batch.factored`), then only each scenario's small residual
  delta runs through the sparse kernel.

``mode="auto"`` picks between them by the batch's touched-variable fraction
and prefix-sharing statistics; ``processes=N`` shards scenario rows of any
pipeline across worker processes with chunked, memory-bounded assembly.

Resilience: shard maps run in *rounds* under the evaluator's
:class:`~repro.resilience.RetryPolicy` — a broken pool salvages every
completed shard result and re-submits only the failed shards to a fresh
pool, escalating to per-shard serial evaluation (itself retried) only
after the pool rounds are exhausted.  Per-shard wall-clock deadlines
(``RetryPolicy.shard_timeout``) bound hung workers, pool bringup and
compilation retry transient I/O failures, and every recovery lands in the
``resilience.*`` metrics plus the report's ``degradations`` summary.  The
``batch.shard``/``batch.compile``/``pool.bringup`` fault-injection sites
make all of it deterministically testable.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple, Union

try:
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover — platforms without multiprocessing
    class BrokenProcessPool(Exception):
        pass

import numpy as np

from repro.core.compression import Abstraction, Compressor
from repro.core.defaults import default_meta_valuation
from repro.engine.scenario import Scenario
from repro.exceptions import SerializationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import current_span, get_tracer, trace, tracing_enabled
from repro.provenance.backends import BackendLike, resolve_backend
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.valuation import (
    CompiledProvenanceSet,
    FingerprintCache,
    Valuation,
)
from repro.resilience import (
    RetryPolicy,
    active_plan_spec,
    collect_degradations,
    fault_point,
    install_plan,
    plan_from_spec,
    policy_from_env,
    record_degradation,
)
from repro.batch.factored import factor_batch, prefix_statistics
from repro.batch.planner import DeltaPlan, ScenarioBatch
from repro.batch.report import BatchReport

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
    from repro.core.optimizer import OptimizationResult
    from repro.engine.plan import ScenarioPlan

#: Scenarios per chunk when consuming a lazily-lowered plan
#: (:meth:`BatchEvaluator.evaluate_plan`); bounds peak ``Scenario``
#: materialisation for huge grids.
PLAN_CHUNK_SCENARIOS = 8192

#: Target number of float64 cells materialised per evaluation chunk when no
#: explicit memory budget is configured; keeps the per-chunk gather/product
#: temporaries comfortably inside cache/RAM.
_TARGET_CELLS_PER_CHUNK = 4_000_000

#: Environment variable naming the default per-chunk memory budget (bytes)
#: of the dense matrix pipeline.
MAX_BYTES_ENV = "COBRA_BATCH_MAX_BYTES"

#: ``mode="auto"`` takes the sparse path when the mean fraction of the
#: variable universe the scenarios touch is at most this.  Real what-if
#: sweeps sit far below it; matrix-filling sweeps far above.
SPARSE_TOUCHED_FRACTION = 0.1

#: ``mode="auto"`` upgrades a sparse batch to the factored path only when it
#: has at least this many scenarios — below that the extra full-row pass for
#: the factored baseline costs more than the shared cells it saves.
FACTORED_MIN_SCENARIOS = 8

#: ...and only when the shared operation prefix accounts for at least this
#: fraction of the cells a typical scenario touches (see
#: :func:`repro.batch.factored.prefix_statistics`).
FACTORED_SHARED_FRACTION = 0.5

_EVALUATION_MODES = ("auto", "dense", "sparse", "factored")

# ---------------------------------------------------------------------------
# Process-pool sharding
# ---------------------------------------------------------------------------

#: Per-worker state installed by the pool initializer, so the compiled set
#: (and sparse base vector) is pickled once per worker, not once per shard.
_SHARD_STATE: Dict[str, object] = {}


def _init_shard_worker(
    compiled, base_vector, obs: bool = False, fault_spec=None
) -> None:
    _SHARD_STATE["compiled"] = compiled
    _SHARD_STATE["base"] = base_vector
    _SHARD_STATE["obs"] = obs
    if fault_spec is not None:
        # Re-arm the parent's fault plan in this worker (spawn platforms
        # inherit nothing; fork platforms get fresh per-worker counters).
        install_plan(plan_from_spec(fault_spec))
    if obs:
        # Fresh observability state in the worker: a forked child inherits
        # the parent's open span stack and recorded roots, which must not
        # leak into the subtrees this worker ships home.
        tracer = get_tracer()
        tracer.reset()
        tracer.enabled = True


def _obs_shard(func, **attributes):
    """Run one shard under a ``batch.shard`` span and capture its telemetry.

    The worker returns ``(result, span_dicts, metrics_delta)``: its completed
    span subtrees serialised to dicts plus the metric delta the shard
    produced, which the parent grafts back via :meth:`Tracer.attach` and
    :meth:`MetricsRegistry.merge`.
    """
    registry = get_registry()
    tracer = get_tracer()
    before = registry.snapshot()
    with trace("batch.shard", **attributes):
        result = func()
    spans = [span.to_dict() for span in tracer.drain()]
    return result, spans, registry.diff(before, registry.snapshot())


def _dense_shard_worker(matrix: np.ndarray):
    fault_point("batch.shard", kind="dense")
    compiled = _SHARD_STATE["compiled"]

    def run_kernel():
        return compiled.evaluate_matrix(matrix)

    if not _SHARD_STATE.get("obs"):
        return run_kernel()
    return _obs_shard(run_kernel, kind="dense", rows=int(matrix.shape[0]))


def _sparse_shard_worker(plans):
    fault_point("batch.shard", kind="sparse")
    compiled = _SHARD_STATE["compiled"]
    base_vector = _SHARD_STATE["base"]

    def run_kernel():
        return compiled.evaluate_deltas(base_vector, plans)

    if not _SHARD_STATE.get("obs"):
        return run_kernel()
    return _obs_shard(run_kernel, kind="sparse", rows=len(plans))


def _pool_probe() -> bool:
    """The trivial task :func:`_bringup_pool` uses to force worker bringup."""
    return True


def _bringup_pool(processes, initializer=None, initargs=(), policy=None):
    """A live ``ProcessPoolExecutor`` of ``processes`` workers, or ``None``.

    Process pools need working ``fork``/semaphores; sandboxes and exotic
    platforms may refuse them.  Workers are spawned lazily by the executor,
    so bringup failures can surface either at construction or at first
    submit — both are probed here, with a task that cannot itself raise.

    Bringup runs under ``policy``: transient ``OSError`` / broken-pool
    failures are retried with backoff before giving up (injected via the
    ``pool.bringup`` fault site).  A ``None`` return means "no pool" —
    either the platform refuses (``ImportError``/``PermissionError``) or
    retries were exhausted; the swallowed cause is logged to the metrics
    registry (``resilience.pool_bringup_failures.<ExcName>``) and recorded
    as a degradation, never silently eaten.  Any *other* exception — a
    genuine worker bug such as a ``RuntimeError`` from an initializer that
    survives bringup — propagates to the caller.
    """
    if policy is None:
        policy = policy_from_env()

    def attempt():
        fault_point("pool.bringup", processes=processes)
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(
            max_workers=processes, initializer=initializer, initargs=initargs
        )
        probed = False
        try:
            pool.submit(_pool_probe).result()
            probed = True
        finally:
            if not probed:
                pool.shutdown(wait=False, cancel_futures=True)
        return pool

    try:
        return policy.run(
            attempt,
            retryable=(OSError, BrokenProcessPool),
            give_up=(ImportError, PermissionError),
            site="pool.bringup",
        )
    except (ImportError, BrokenProcessPool, OSError) as exc:
        registry = get_registry()
        registry.inc("resilience.pool_bringup_failures")
        registry.inc(f"resilience.pool_bringup_failures.{type(exc).__name__}")
        record_degradation(
            f"process-pool bringup failed ({type(exc).__name__}: {exc}); "
            "degrading to serial evaluation"
        )
        return None


def _unpack_shard(raw, obs: bool, shard: int):
    """Normalise one shard result, grafting worker telemetry immediately."""
    if not obs:
        return raw
    result, spans, delta = raw
    get_tracer().attach(spans, shard=shard)
    get_registry().merge(delta)
    return result


def _serial_shards(compiled, base_vector, worker, pieces, indices, results, policy):
    """The last rung of the escalation ladder: failed shards, in-process.

    Each shard is evaluated serially under ``policy`` (transient
    I/O / corruption faults are retried; genuine kernel bugs propagate)
    and written into its slot of ``results``.
    """
    _init_shard_worker(compiled, base_vector, False)
    try:
        for i in indices:
            with trace("batch.shard", shard=i, fallback="serial"):
                piece = pieces[i]

                def run_shard(piece=piece):
                    return worker(piece)

                results[i] = policy.run(
                    run_shard,
                    retryable=(OSError, SerializationError),
                    site="batch.shard.serial",
                )
    finally:
        # The fallback runs in-process: drop the references so a large
        # compiled set is not pinned for the life of the service.
        _SHARD_STATE.clear()


def _harvest_round(pool, submit, indices, pieces, results, policy, obs):
    """Submit one round of shards and harvest: the indices that failed.

    Completed shard results are written straight into ``results`` — a pool
    that breaks mid-round loses only its unfinished shards.  A shard misses
    its ``policy.shard_timeout`` deadline → counted under
    ``resilience.timeouts`` and marked failed; transient worker failures
    (``OSError``, store corruption) are marked failed for re-run; anything
    else is a genuine worker bug and propagates.
    """
    timeout = policy.shard_timeout
    deadline = None if timeout is None else time.monotonic() + timeout
    futures = []
    unsubmitted = []
    for position, i in enumerate(indices):
        try:
            futures.append((i, submit(pool, pieces[i])))
        except BrokenProcessPool:
            # The pool died while we were still submitting: everything not
            # yet submitted joins the failed set for the next round.
            unsubmitted = list(indices[position:])
            break
    failed = []
    registry = get_registry()
    for i, future in futures:
        try:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            raw = future.result(timeout=remaining)
        except BrokenProcessPool:
            failed.append(i)
        except _FuturesTimeout:
            registry.inc("resilience.timeouts")
            record_degradation(
                f"batch.shard[{i}] missed its {timeout:.3g}s deadline"
            )
            future.cancel()
            failed.append(i)
        except (OSError, SerializationError) as exc:
            record_degradation(
                f"batch.shard[{i}] failed ({type(exc).__name__}: {exc}); "
                "queued for re-run"
            )
            failed.append(i)
        else:
            results[i] = _unpack_shard(raw, obs, i)
    failed.extend(unsubmitted)
    return failed


def _resilient_map(pieces, policy, obs, make_pool, submit, release, run_serial):
    """Map shards over pool rounds with salvage, then serial escalation.

    Round *n* submits every still-pending shard to the pool ``make_pool``
    yields; completed results are kept (``resilience.salvaged_shards``)
    and only failures re-run.  ``policy.attempts - 1`` pool rounds (fresh
    pool each round on the in-memory path, evaluator-managed persistent
    pool on the store path) are tried before ``run_serial`` finishes the
    stragglers in-process.  Returns results in piece order.
    """
    registry = get_registry()
    results = [None] * len(pieces)
    pending = list(range(len(pieces)))
    pool_rounds = max(1, policy.attempts - 1)
    for round_no in range(pool_rounds):
        pool = make_pool(round_no)
        if pool is None:
            break
        submitted = list(pending)
        completed_ok = False
        try:
            failed = _harvest_round(
                pool, submit, submitted, pieces, results, policy, obs
            )
            completed_ok = True
        finally:
            release(pool, broken=not completed_ok or bool(failed))
        if not failed:
            return results
        salvaged = len(submitted) - len(failed)
        if salvaged:
            registry.inc("resilience.salvaged_shards", salvaged)
        record_degradation(
            f"shard round {round_no + 1} degraded: salvaged "
            f"{salvaged}/{len(submitted)} shards, re-running {len(failed)}"
        )
        pending = failed
    run_serial(pending, results)
    return results


def _process_map(processes, compiled, base_vector, worker, pieces, policy=None):
    """Map ``worker`` over ``pieces`` on per-call process pools with salvage.

    The in-memory flavour: each pool round pickles the compiled set into
    worker initargs (fresh pool per round, so a broken pool never poisons
    the retry).  Escalation and salvage semantics are
    :func:`_resilient_map`'s; with no pool at all every shard runs serially.

    With tracing enabled, pool workers record their own span subtrees and
    metric deltas (see :func:`_obs_shard`) and the parent grafts them as
    each future completes, stamping each root with its shard index; the
    serial rung records plain nested ``batch.shard`` spans instead — it
    already runs inside the parent's live trace, so nothing needs shipping.
    """
    if policy is None:
        policy = policy_from_env()
    obs = tracing_enabled()
    fault_spec = active_plan_spec()

    def make_pool(round_no):
        return _bringup_pool(
            processes,
            initializer=_init_shard_worker,
            initargs=(compiled, base_vector, obs, fault_spec),
            policy=policy,
        )

    def submit_shard(pool, piece):
        return pool.submit(worker, piece)

    def release(pool, broken):
        pool.shutdown(wait=not broken, cancel_futures=broken)

    def run_serial(indices, results):
        _serial_shards(
            compiled, base_vector, worker, pieces, indices, results, policy
        )

    return _resilient_map(
        pieces, policy, obs, make_pool, submit_shard, release, run_serial
    )


def _store_shard_task(task):
    """One task of the persistent store-backed pool: open + evaluate a shard.

    ``task`` is ``(store_path, kind, base_vector, obs, fault_spec, piece)`` —
    the pool is generic (no initializer), so each task names its compiled
    store.  The per-process store cache
    (:func:`repro.provenance.store.open_store`) makes repeated opens
    O(header), and every worker mapping the same file shares one page-cache
    copy of the arrays.
    """
    path, kind, base_vector, obs, fault_spec, piece = task
    if fault_spec is not None:
        from repro.resilience import active_plan

        # Arm once per worker process (counters persist across this
        # worker's tasks, keeping injection schedules deterministic).
        if active_plan() is None:
            install_plan(plan_from_spec(fault_spec))
    fault_point("batch.shard", kind=kind, store=True)
    # Persistent workers serve many calls: start each task with a clean
    # tracer so reused workers never accumulate undrained spans, and only
    # record when the parent is tracing this call.
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = bool(obs)
    from repro.provenance.store import open_store

    compiled = open_store(path)
    if kind == "dense":
        rows = int(piece.shape[0])

        def run_kernel():
            return compiled.evaluate_matrix(piece)
    else:
        rows = len(piece)

        def run_kernel():
            return compiled.evaluate_deltas(base_vector, piece)
    if not obs:
        return run_kernel()
    return _obs_shard(run_kernel, kind=kind, rows=rows, store=True)


class _StoreShardPool:
    """A persistent, store-generic worker pool owned by one evaluator.

    Store-backed sharding ships a *path* per task instead of pickling the
    compiled set into per-call pool initargs, which is what lets the pool
    outlive individual calls — amortising bringup/teardown across a sweep of
    calls is where the store's sharding win comes from on warm services.
    """

    __slots__ = ("pool", "processes")

    def __init__(self, pool, processes: int) -> None:
        self.pool = pool
        self.processes = processes

    def close(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    def __del__(self):  # pragma: no cover — best-effort cleanup
        self.close()


def _resolve_max_bytes(max_bytes: Optional[int]) -> Optional[int]:
    """The effective dense-chunk memory budget, or ``None`` for the default.

    An explicit argument wins; otherwise the ``COBRA_BATCH_MAX_BYTES``
    environment variable is consulted, and a malformed or non-positive value
    there raises a :class:`ValueError` naming the variable and the value —
    not a bare ``int()`` traceback deep inside evaluation.
    """
    if max_bytes is not None:
        return int(max_bytes)
    env = os.environ.get(MAX_BYTES_ENV)
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{MAX_BYTES_ENV} must be an integer number of bytes, "
            f"got {env!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{MAX_BYTES_ENV} must be >= 1, got {env!r}")
    return value


def lower_meta_matrix(
    abstraction: Abstraction,
    batch: ScenarioBatch,
    matrix: np.ndarray,
    meta_variables: Sequence[str],
    fill: float = 1.0,
) -> np.ndarray:
    """Lower a scenarios × originals matrix to the compressed variable space.

    Column *j* of the result is the value of ``meta_variables[j]`` under each
    scenario, derived exactly as the interactive engine's
    ``default_meta_valuation(reducer="mean", on_missing="skip")``: the mean of
    the scenario values of the meta-variable's members that occur in the
    universe, the scenario value itself for originals the abstraction leaves
    untouched, and ``fill`` (the backend's identity fill, 1.0 on the float
    pipeline) otherwise.  The mean lowering is shared by every numeric
    backend: it is the paper's default for real and tropical values, and for
    0/1 Boolean columns it is non-zero exactly when the disjunction is.
    """
    grouped = abstraction.grouped_variables()
    mapped = set(abstraction.mapping)
    universe = set(batch.variables)
    result = np.full(
        (matrix.shape[0], len(meta_variables)), fill, dtype=np.float64
    )
    for j, variable in enumerate(meta_variables):
        members = grouped.get(variable)
        if members is not None:
            present = [m for m in members if m in universe]
            if present:
                result[:, j] = matrix[:, batch.columns_for(present)].mean(axis=1)
        elif variable in universe and variable not in mapped:
            result[:, j] = matrix[:, batch.columns_for([variable])[0]]
    return result


def lower_meta_deltas(
    abstraction: Abstraction,
    batch: ScenarioBatch,
    plan: DeltaPlan,
    meta_variables: Sequence[str],
    fill: float = 1.0,
) -> Tuple[np.ndarray, Tuple[Tuple[np.ndarray, np.ndarray], ...]]:
    """The sparse counterpart of :func:`lower_meta_matrix`.

    Lowers a :class:`~repro.batch.planner.DeltaPlan` over the originals into
    the compressed variable space without materialising any dense matrix:
    the meta base row is derived once from the plan's base row, and per
    scenario only the meta-variables containing a changed original are
    re-averaged.  Cell for cell this computes the exact numbers
    :func:`lower_meta_matrix` would.
    """
    grouped = abstraction.grouped_variables()
    mapped = set(abstraction.mapping)
    universe = set(batch.variables)
    base_row = np.full(len(meta_variables), fill, dtype=np.float64)
    # Per meta column: ("mean", member column array) | ("pass", column) |
    # ("fill", None) — mirroring the dense lowering's three cases.
    lowering = []
    column_to_metas: Dict[int, list] = {}
    for j, variable in enumerate(meta_variables):
        members = grouped.get(variable)
        if members is not None:
            present = [m for m in members if m in universe]
            if present:
                columns = batch.columns_for(present)
                base_row[j] = plan.base_row[columns].mean()
                lowering.append(("mean", columns))
                for column in columns:
                    column_to_metas.setdefault(int(column), []).append(j)
            else:
                lowering.append(("fill", None))
        elif variable in universe and variable not in mapped:
            column = int(batch.columns_for([variable])[0])
            base_row[j] = plan.base_row[column]
            lowering.append(("pass", column))
            column_to_metas.setdefault(column, []).append(j)
        else:
            lowering.append(("fill", None))

    empty_columns = np.zeros(0, dtype=np.intp)
    empty_values = np.zeros(0, dtype=np.float64)
    scratch = plan.base_row.copy()
    changes = []
    for columns, values in plan.changes:
        if columns.size == 0:
            changes.append((empty_columns, empty_values))
            continue
        scratch[columns] = values
        metas = sorted(
            {
                j
                for column in columns
                for j in column_to_metas.get(int(column), ())
            }
        )
        meta_columns = []
        meta_values = []
        for j in metas:
            kind, source = lowering[j]
            value = scratch[source].mean() if kind == "mean" else scratch[source]
            if value != base_row[j]:
                meta_columns.append(j)
                meta_values.append(value)
        changes.append(
            (
                np.asarray(meta_columns, dtype=np.intp),
                np.asarray(meta_values, dtype=np.float64),
            )
        )
        scratch[columns] = plan.base_row[columns]
    return base_row, tuple(changes)


class BatchEvaluator:
    """Evaluates many scenarios against (possibly many) provenance sets.

    Parameters
    ----------
    cache_size:
        How many compiled provenance sets to keep, LRU-evicted.  Compilation
        is the expensive step (one pass over every monomial), so a service
        answering what-if traffic over a handful of live provenance sets pays
        it once per set, not once per request.
    max_workers:
        When set (> 1), dense mega-batches are split into chunks evaluated on
        a thread pool; the numpy kernels release the GIL for the bulk of the
        work.  ``None`` evaluates chunks serially on the calling thread.
    chunk_size:
        Rows per evaluation chunk; overrides the memory-derived default.
    max_bytes:
        Peak bytes of dense-kernel temporaries a chunk may materialise.
        Defaults to the ``COBRA_BATCH_MAX_BYTES`` environment variable when
        set, otherwise a ~32 MB cells heuristic.  A single row is always
        evaluable, so the effective floor is one row's footprint.
    processes:
        Default process-pool width for :meth:`evaluate`'s sharding path
        (overridable per call).  ``None`` evaluates in-process.
    retry_policy:
        The :class:`~repro.resilience.RetryPolicy` governing shard
        retries/deadlines, pool bringup and store opens.  Defaults to
        :func:`~repro.resilience.policy_from_env` (``COBRA_RETRY``
        overrides honoured).
    """

    def __init__(
        self,
        cache_size: int = 8,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        compressor: Optional[Compressor] = None,
        max_bytes: Optional[int] = None,
        processes: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None)")
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1 (or None)")
        max_bytes = _resolve_max_bytes(max_bytes)
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        self._max_workers = max_workers
        self._chunk_size = chunk_size
        self._max_bytes = max_bytes
        self._processes = processes
        self._retry = retry_policy if retry_policy is not None else policy_from_env()
        self._compiled = FingerprintCache(cache_size, metrics="batch.compile_cache")
        self._compressor = compressor
        self._store_pool: Optional[_StoreShardPool] = None

    @property
    def retry_policy(self) -> RetryPolicy:
        """The retry posture this evaluator applies to shards/pools/stores."""
        return self._retry

    # -- compiled-provenance cache -------------------------------------------

    def compile(self, provenance: ProvenanceSet, semiring: "BackendLike" = None):
        """The compiled form of ``provenance``, cached by content fingerprint.

        The cache is keyed by ``(fingerprint, backend name)``, so the same
        provenance compiled for several semirings coexists; the default is
        the real backend, whose compiled form is ``CompiledProvenanceSet``.
        """
        backend = resolve_backend(semiring)

        def build_once():
            fault_point("batch.compile", backend=backend.name)
            with trace(
                "batch.compile", backend=backend.name, monomials=provenance.size()
            ):
                return backend.compile(provenance)

        def build():
            return self._retry.run(
                build_once, retryable=(OSError,), site="batch.compile"
            )

        return self._compiled.get_or_build(
            (provenance.fingerprint(), backend.name), build
        )

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the compiled-provenance cache."""
        return self._compiled.info()

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Deprecated alias for :meth:`cache_info` (kept as a thin view).

        The canonical surface is the process-wide metrics registry
        (``repro.obs.get_registry().snapshot()``, counters
        ``batch.compile_cache.hits`` / ``batch.compile_cache.misses``).
        """
        return self.cache_info()

    def clear_cache(self) -> None:
        """Drop every cached compilation (counters are kept)."""
        self._compiled.clear()

    # -- compiled stores -------------------------------------------------------

    def adopt_store(self, path, provenance=None, semiring=None):
        """Open the compiled store at ``path`` and seed the compile cache.

        Subsequent :meth:`evaluate` calls over provenance with the store's
        fingerprint (and backend) reuse the mapped arrays instead of
        recompiling, and ``processes=N`` sharding ships the store *path* to a
        persistent worker pool instead of pickling the compiled set per call.
        Returns the mapped compiled set.

        Opening runs under the evaluator's retry policy (transient I/O
        failures back off and retry).  A store that fails verification —
        bad magic, truncated blocks, a CRC mismatch — is quarantined
        (:func:`~repro.provenance.store.quarantine_store`); when
        ``provenance`` is supplied the evaluator then transparently
        recompiles it (for ``semiring``) instead of raising, so a corrupt
        artifact degrades a warm start into a recompile, not an outage.
        """
        from repro.provenance.store import open_store, quarantine_store

        def open_once():
            return open_store(path)

        try:
            compiled = self._retry.run(
                open_once,
                retryable=(OSError,),
                give_up=(FileNotFoundError,),
                site="store.open",
            )
        except SerializationError as exc:
            quarantined = quarantine_store(path)
            if provenance is None:
                raise
            record_degradation(
                f"store {path} was corrupt ({exc}); quarantined to "
                f"{quarantined} and recompiled from provenance"
            )
            return self.compile(provenance, semiring)
        self._compiled.put(
            (compiled.source_fingerprint, compiled.backend_name), compiled
        )
        return compiled

    def close(self) -> None:
        """Shut down the persistent store-shard worker pool (if one is live).

        Safe to call repeatedly; the evaluator stays usable (a later
        store-backed sharded call simply brings a fresh pool up).
        """
        if self._store_pool is not None:
            self._store_pool.close()
            self._store_pool = None

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False

    def _store_pool_for(self, processes: int) -> Optional[_StoreShardPool]:
        """The persistent store-shard pool, (re)built at ``processes`` width."""
        if self._store_pool is not None and self._store_pool.processes != processes:
            self.close()
        if self._store_pool is None:
            pool = _bringup_pool(processes, policy=self._retry)
            if pool is None:
                return None
            self._store_pool = _StoreShardPool(pool, processes)
        return self._store_pool

    def _shard_map(self, processes, compiled, base_vector, worker, kind, pieces):
        """Dispatch shards to the right pool flavour.

        Store-backed compiled sets take the evaluator's persistent pool with
        path-per-task shipping; in-memory ones take the per-call pool that
        pickles the compiled set into worker initargs.  Both run the same
        salvage/retry rounds (:func:`_resilient_map`): a broken pool keeps
        completed shards and re-runs only the failures on a fresh pool,
        escalating to in-process serial evaluation; genuine worker
        exceptions still propagate.
        """
        store_path = getattr(compiled, "store_path", None)
        policy = self._retry
        if store_path is None:
            return _process_map(
                processes, compiled, base_vector, worker, pieces, policy
            )
        obs = tracing_enabled()
        fault_spec = active_plan_spec()

        def make_pool(round_no):
            if round_no:
                # The previous round broke the persistent pool; force a
                # fresh one for the re-run.
                self.close()
            shard_pool = self._store_pool_for(processes)
            return None if shard_pool is None else shard_pool.pool

        def submit_shard(pool, piece):
            task = (store_path, kind, base_vector, obs, fault_spec, piece)
            return pool.submit(_store_shard_task, task)

        def release(pool, broken):
            if broken:
                self.close()

        def run_serial(indices, results):
            _serial_shards(
                compiled, base_vector, worker, pieces, indices, results, policy
            )

        return _resilient_map(
            pieces, policy, obs, make_pool, submit_shard, release, run_serial
        )

    # -- compression ----------------------------------------------------------

    @property
    def compressor(self) -> Compressor:
        """The evaluator's compression service (lazy; share one for a fleet)."""
        if self._compressor is None:
            self._compressor = Compressor()
        return self._compressor

    # -- matrix evaluation ----------------------------------------------------

    def _resolve_chunk_size(self, compiled, rows: int) -> int:
        """Rows per dense chunk, respecting the explicit memory budget.

        With ``max_bytes`` set, the chunk is sized so the dense kernels'
        per-row float64 temporaries (``compiled.dense_row_footprint()``
        cells) never exceed the budget — floored at one row, since a single
        row is the smallest evaluable unit.
        """
        if self._chunk_size is not None:
            return self._chunk_size
        footprint = getattr(compiled, "dense_row_footprint", None)
        per_row_cells = footprint() if callable(footprint) else max(1, compiled.size())
        if self._max_bytes is not None:
            per_row_bytes = 8 * per_row_cells
            return max(1, min(rows, self._max_bytes // max(1, per_row_bytes)))
        return max(1, min(rows, _TARGET_CELLS_PER_CHUNK // per_row_cells))

    def evaluate_matrix(
        self,
        compiled: CompiledProvenanceSet,
        matrix: np.ndarray,
        processes: Optional[int] = None,
    ) -> np.ndarray:
        """Chunked (threaded or process-sharded) ``scenarios × groups`` evaluation."""
        matrix = np.asarray(matrix, dtype=np.float64)
        rows = matrix.shape[0]
        chunk = self._resolve_chunk_size(compiled, rows)
        with trace("batch.kernel.dense", rows=rows, chunk=chunk) as span:
            if rows <= chunk and not (processes and processes > 1):
                return compiled.evaluate_matrix(matrix)
            pieces = [
                matrix[start : start + chunk] for start in range(0, rows, chunk)
            ]
            span.set("chunks", len(pieces))
            if processes and processes > 1 and len(pieces) > 1:
                span.set("processes", processes)
                results = self._shard_map(
                    processes, compiled, None, _dense_shard_worker, "dense", pieces
                )
            elif (
                self._max_workers is not None
                and self._max_workers > 1
                and len(pieces) > 1
            ):
                with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                    results = list(pool.map(compiled.evaluate_matrix, pieces))
            else:
                results = [compiled.evaluate_matrix(piece) for piece in pieces]
            return np.concatenate(results, axis=0)

    def evaluate_deltas(
        self,
        compiled,
        base_vector: np.ndarray,
        plans: Sequence[Tuple[np.ndarray, np.ndarray]],
        processes: Optional[int] = None,
    ) -> np.ndarray:
        """Sparse ``scenarios × groups`` evaluation, optionally process-sharded.

        The baseline is evaluated once (inside the compiled set's cached
        delta state); each shard re-ships only its plans, so assembly memory
        is bounded by ``shards × shard_rows × groups`` floats.
        """
        with trace("batch.kernel.sparse", rows=len(plans)) as span:
            if not (processes and processes > 1) or len(plans) < 2:
                return compiled.evaluate_deltas(base_vector, plans)
            shard = max(1, -(-len(plans) // (processes * 4)))
            pieces = [
                plans[start : start + shard]
                for start in range(0, len(plans), shard)
            ]
            if len(pieces) == 1:
                return compiled.evaluate_deltas(base_vector, plans)
            span.update({"processes": processes, "shards": len(pieces)})
            results = self._shard_map(
                processes, compiled, base_vector, _sparse_shard_worker, "sparse",
                pieces,
            )
            return np.concatenate(results, axis=0)

    # -- the full service entry point -----------------------------------------

    def evaluate(
        self,
        provenance: ProvenanceSet,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]] = None,
        compressed: Optional[ProvenanceSet] = None,
        abstraction: Optional[Abstraction] = None,
        semiring: BackendLike = None,
        mode: str = "auto",
        processes: Optional[int] = None,
    ) -> BatchReport:
        """Evaluate ``scenarios`` against ``provenance`` in one vectorised pass.

        When ``compressed`` and ``abstraction`` are given, the sweep is also
        evaluated against the compressed provenance (per-scenario
        meta-variable values derived as member means), so the report carries
        the abstraction-induced error across the whole sweep.

        ``semiring`` selects the evaluation backend: numeric backends (real,
        tropical, bool) take the vectorised pipelines; set-valued backends
        fall back to a per-scenario Python loop over the generic evaluator,
        producing object-valued result matrices with backend-defined deltas.

        ``mode`` picks the numeric pipeline: ``"dense"`` lowers the batch to
        a full matrix, ``"sparse"`` evaluates the baseline once and applies
        per-scenario deltas through the inverted variable→monomial index,
        ``"factored"`` additionally evaluates the scenarios' shared
        operation prefix once against a factored baseline, and ``"auto"``
        (default) selects sparse whenever the scenarios touch at most
        ``SPARSE_TOUCHED_FRACTION`` of the variable universe on average —
        upgrading to factored when at least ``FACTORED_MIN_SCENARIOS``
        scenarios share at least ``FACTORED_SHARED_FRACTION`` of their
        touched cells.  All three produce element-wise equal results.
        ``processes`` shards scenario rows across worker processes (default:
        the evaluator's configured width).
        """
        registry = get_registry()
        registry.inc("batch.evaluations")
        registry.inc("batch.scenarios", len(scenarios))
        with collect_degradations() as degradations:
            if not tracing_enabled():
                report = self._evaluate_impl(
                    provenance, scenarios, base_valuation, compressed,
                    abstraction, semiring, mode, processes,
                )
            else:
                with trace(
                    "batch.evaluate", scenarios=len(scenarios), requested_mode=mode
                ) as span:
                    with registry.scope() as run:
                        report = self._evaluate_impl(
                            provenance, scenarios, base_valuation, compressed,
                            abstraction, semiring, mode, processes,
                        )
                    span.update(
                        {
                            "mode": report.mode,
                            "semiring": report.semiring,
                            "metrics": run.metrics,
                        }
                    )
        if degradations:
            report = replace(
                report, degradations=report.degradations + tuple(degradations)
            )
        return report

    def _evaluate_impl(
        self,
        provenance: ProvenanceSet,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]],
        compressed: Optional[ProvenanceSet],
        abstraction: Optional[Abstraction],
        semiring: BackendLike,
        mode: str,
        processes: Optional[int],
    ) -> BatchReport:
        if (compressed is None) != (abstraction is None):
            raise ValueError(
                "compressed and abstraction must be provided together"
            )
        if mode not in _EVALUATION_MODES:
            raise ValueError(
                f"mode must be one of {_EVALUATION_MODES}, got {mode!r}"
            )
        if processes is None:
            processes = self._processes
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1 (or None)")
        backend = resolve_backend(semiring)
        if not backend.is_numeric:
            return self._evaluate_generic(
                provenance, scenarios, base_valuation, compressed, abstraction, backend
            )
        fill = getattr(backend, "numeric_fill", 1.0)
        base = (
            Valuation(dict(base_valuation), semiring=backend)
            if base_valuation
            else Valuation(semiring=backend)
        )
        universe = set(provenance.variables()) | set(base)
        batch = ScenarioBatch(scenarios, universe)

        compiled_full = self.compile(provenance, backend)
        supports_deltas = getattr(compiled_full, "supports_deltas", False)
        if mode in ("sparse", "factored") and not supports_deltas:
            raise ValueError(
                f"the {backend.name!r} backend's compiled form does not "
                "support sparse delta evaluation; use mode='dense'"
            )
        registry = get_registry()
        chosen = "dense"
        if mode in ("sparse", "factored"):
            chosen = mode
        elif mode == "auto" and supports_deltas:
            # Factored first: a structured sweep's shared prefix may touch a
            # large slice of the universe (disqualifying plain sparse), but
            # it is evaluated once — only the *residual* touched fraction
            # has to be sparse.  Factoring needs enough scenarios sharing a
            # large enough prefix to pay for the extra factored-baseline row.
            touched = batch.touched_fraction()
            prefix_length, prefix_cells, shared = prefix_statistics(batch)
            residual_touched = max(
                0.0, touched - prefix_cells / max(1, len(batch.variables))
            )
            if (
                len(batch) >= FACTORED_MIN_SCENARIOS
                and prefix_length >= 1
                and shared >= FACTORED_SHARED_FRACTION
                and residual_touched <= SPARSE_TOUCHED_FRACTION
            ):
                chosen = "factored"
                registry.inc("batch.factored.auto_hits")
            else:
                registry.inc("batch.factored.auto_misses")
                if touched <= SPARSE_TOUCHED_FRACTION:
                    chosen = "sparse"
        registry.inc(f"batch.mode.{chosen}")
        if tracing_enabled():
            current_span().update(
                {
                    "touched_fraction": batch.touched_fraction(),
                    "mode": chosen,
                    "backend": backend.name,
                }
            )

        compiled_compressed = None
        if compressed is not None and abstraction is not None:
            compiled_compressed = self.compile(compressed, backend)

        if chosen == "factored":
            baseline, full_results, meta_rows = self._evaluate_factored(
                compiled_full, compiled_compressed, abstraction, batch, base,
                fill, processes,
            )
        elif chosen == "sparse":
            baseline, full_results, meta_rows = self._evaluate_sparse(
                compiled_full, compiled_compressed, abstraction, batch, base,
                fill, processes,
            )
        else:
            baseline, full_results, meta_rows = self._evaluate_dense(
                compiled_full, compiled_compressed, abstraction, batch, base,
                fill, processes,
            )

        with trace("batch.reduce", keys=len(compiled_full.keys)):
            compressed_results = None
            compressed_size = None
            if compiled_compressed is not None:
                compressed_results = self._align_compressed(
                    compiled_full, compiled_compressed, full_results, meta_rows,
                    backend,
                )
                compressed_size = compressed.size()

            return BatchReport(
                scenario_names=batch.names,
                keys=compiled_full.keys,
                baseline=baseline,
                full_results=full_results,
                compressed_results=compressed_results,
                full_size=provenance.size(),
                compressed_size=compressed_size,
                semiring=backend.name,
                mode=chosen,
            )

    # -- the two numeric pipelines --------------------------------------------

    def _evaluate_dense(
        self, compiled_full, compiled_compressed, abstraction, batch, base,
        fill, processes,
    ):
        matrix = batch.valuation_matrix(base, fill=fill)
        full_columns = batch.columns_for(compiled_full.variables)
        base_row = np.array(
            [float(base.get(name, fill)) for name in compiled_full.variables],
            dtype=np.float64,
        )
        baseline = compiled_full.evaluate_matrix(base_row[np.newaxis, :])[0]

        noop = batch.noop_rows
        if noop and len(batch):
            # No-op scenarios reuse the shared baseline result; only the
            # rows that actually move a value hit the kernels.
            live = np.setdiff1d(
                np.arange(len(batch), dtype=np.intp),
                np.asarray(noop, dtype=np.intp),
            )
            full_results = np.empty(
                (len(batch), len(compiled_full.keys)), dtype=np.float64
            )
            full_results[np.asarray(noop, dtype=np.intp)] = baseline
            if live.size:
                full_results[live] = self.evaluate_matrix(
                    compiled_full, matrix[live][:, full_columns], processes
                )
        else:
            full_results = self.evaluate_matrix(
                compiled_full, matrix[:, full_columns], processes
            )

        meta_rows = None
        if compiled_compressed is not None:
            meta_matrix = lower_meta_matrix(
                abstraction, batch, matrix, compiled_compressed.variables, fill=fill
            )
            meta_rows = self.evaluate_matrix(
                compiled_compressed, meta_matrix, processes
            )
        return baseline, full_results, meta_rows

    def _evaluate_sparse(
        self, compiled_full, compiled_compressed, abstraction, batch, base,
        fill, processes,
    ):
        plan = batch.delta_plan(base, fill=fill)
        full_columns = batch.columns_for(compiled_full.variables)
        base_vector, plans = plan.project(full_columns)
        baseline = compiled_full.baseline_totals(base_vector)
        full_results = self.evaluate_deltas(
            compiled_full, base_vector, plans, processes
        )

        meta_rows = None
        if compiled_compressed is not None:
            meta_base, meta_plans = lower_meta_deltas(
                abstraction, batch, plan, compiled_compressed.variables, fill=fill
            )
            meta_rows = self.evaluate_deltas(
                compiled_compressed, meta_base, meta_plans, processes
            )
        return baseline, full_results, meta_rows

    def _evaluate_factored(
        self, compiled_full, compiled_compressed, abstraction, batch, base,
        fill, processes,
    ):
        """The factored pipeline: shared prefix once, residual deltas after.

        The report's baseline stays the *unfactored* baseline (the valuation
        with no scenario applied); only the delta evaluation runs against the
        factored row.  The residual plan's rows equal the unfactored plan's
        rows bit-for-bit (see :mod:`repro.batch.factored`), so per-scenario
        results match the sparse path cell for cell.
        """
        factoring = factor_batch(batch, base, fill=fill)
        full_columns = batch.columns_for(compiled_full.variables)
        base_vector = np.array(
            [float(base.get(name, fill)) for name in compiled_full.variables],
            dtype=np.float64,
        )
        baseline = compiled_full.baseline_totals(base_vector)
        factored_vector, plans = factoring.residual_plan.project(full_columns)
        full_results = self.evaluate_deltas(
            compiled_full, factored_vector, plans, processes
        )

        registry = get_registry()
        registry.inc("batch.factored.prefix_cells", factoring.prefix_cells)
        registry.inc("batch.factored.residual_cells", factoring.residual_cells)
        if tracing_enabled():
            current_span().update(
                {
                    "prefix_length": factoring.prefix_length,
                    "prefix_cells": factoring.prefix_cells,
                    "residual_cells": factoring.residual_cells,
                    "shared_fraction": factoring.shared_fraction,
                }
            )

        meta_rows = None
        if compiled_compressed is not None:
            meta_base, meta_plans = lower_meta_deltas(
                abstraction, batch, factoring.residual_plan,
                compiled_compressed.variables, fill=fill,
            )
            meta_rows = self.evaluate_deltas(
                compiled_compressed, meta_base, meta_plans, processes
            )
        return baseline, full_results, meta_rows

    # -- declarative plans ------------------------------------------------------

    def evaluate_plan(
        self,
        provenance: ProvenanceSet,
        plan: "ScenarioPlan",
        base_valuation: Optional[Mapping[str, float]] = None,
        compressed: Optional[ProvenanceSet] = None,
        abstraction: Optional[Abstraction] = None,
        semiring: BackendLike = None,
        mode: str = "auto",
        processes: Optional[int] = None,
        chunk_scenarios: Optional[int] = None,
    ) -> BatchReport:
        """Evaluate a declarative :class:`~repro.engine.plan.ScenarioPlan`.

        The plan lowers lazily and is consumed in chunks of
        ``chunk_scenarios`` (default :data:`PLAN_CHUNK_SCENARIOS`) scenarios,
        so a 10^6-point grid never materialises every ``Scenario`` at once;
        each chunk goes through :meth:`evaluate` (keeping the mode heuristic,
        sharding, and compressed-sweep semantics) and the chunk reports are
        stitched back into one :class:`BatchReport`.
        """
        if chunk_scenarios is None:
            chunk_scenarios = PLAN_CHUNK_SCENARIOS
        if chunk_scenarios < 1:
            raise ValueError("chunk_scenarios must be >= 1 (or None)")
        registry = get_registry()
        registry.inc("batch.plans")
        with trace(
            "batch.plan",
            plan=getattr(plan, "name", type(plan).__name__),
            points=len(plan),
            chunk=chunk_scenarios,
        ) as span:
            reports = []
            chunk: list = []
            for scenario in plan.lower():
                chunk.append(scenario)
                if len(chunk) >= chunk_scenarios:
                    reports.append(
                        self.evaluate(
                            provenance, chunk, base_valuation, compressed,
                            abstraction, semiring, mode, processes,
                        )
                    )
                    chunk = []
            if chunk:
                reports.append(
                    self.evaluate(
                        provenance, chunk, base_valuation, compressed,
                        abstraction, semiring, mode, processes,
                    )
                )
            if not reports:
                raise ValueError("the plan lowered to zero scenarios")
            span.set("chunks", len(reports))
            if len(reports) == 1:
                return reports[0]
            return self._stitch_reports(reports)

    @staticmethod
    def _stitch_reports(reports: Sequence[BatchReport]) -> BatchReport:
        """One report covering every chunk of a plan evaluation.

        Shared fields (keys, baseline, sizes, semiring) come from the first
        chunk — every chunk evaluated the same provenance against the same
        base.  ``mode`` is the shared chunk mode, or ``"mixed"`` when the
        auto heuristic picked differently across chunks.
        """
        first = reports[0]
        names = tuple(
            name for report in reports for name in report.scenario_names
        )
        full_results = np.concatenate(
            [report.full_results for report in reports], axis=0
        )
        compressed_results = None
        if first.compressed_results is not None:
            compressed_results = np.concatenate(
                [report.compressed_results for report in reports], axis=0
            )
        modes = {report.mode for report in reports}
        return BatchReport(
            scenario_names=names,
            keys=first.keys,
            baseline=first.baseline,
            full_results=full_results,
            compressed_results=compressed_results,
            full_size=first.full_size,
            compressed_size=first.compressed_size,
            semiring=first.semiring,
            mode=modes.pop() if len(modes) == 1 else "mixed",
            degradations=tuple(
                event for report in reports for event in report.degradations
            ),
        )

    @staticmethod
    def _align_compressed(
        compiled_full, compiled_compressed, full_results, meta_rows, backend
    ) -> np.ndarray:
        """Align compressed columns with the full provenance's keys; groups
        absent from the compressed set evaluate to the semiring zero, as in
        the interactive report."""
        key_column = {key: i for i, key in enumerate(compiled_compressed.keys)}
        zero = float(backend.semiring.zero)
        compressed_results = np.full_like(full_results, zero)
        for j, key in enumerate(compiled_full.keys):
            column = key_column.get(key)
            if column is not None:
                compressed_results[:, j] = meta_rows[:, column]
        return compressed_results

    def _evaluate_generic(
        self,
        provenance: ProvenanceSet,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]],
        compressed: Optional[ProvenanceSet],
        abstraction: Optional[Abstraction],
        backend,
    ) -> BatchReport:
        """The pure-Python fallback for set-valued semirings (Why, Lineage).

        Sparse mode does not apply to symbolic carriers; every requested
        ``mode`` takes this same per-scenario loop (reported as
        ``mode="generic"``), so results never depend on the mode knob.
        """
        get_registry().inc("batch.mode.generic")
        if tracing_enabled():
            current_span().update({"mode": "generic", "backend": backend.name})
        base = (
            Valuation(dict(base_valuation), semiring=backend)
            if base_valuation
            else Valuation(semiring=backend)
        )
        universe = tuple(sorted(set(provenance.variables()) | set(base)))
        base = base.updated(
            {
                name: backend.default_value(name)
                for name in universe
                if name not in base
            }
        )
        compiled_full = self.compile(provenance, backend)
        compiled_compressed = None
        if compressed is not None and abstraction is not None:
            compiled_compressed = self.compile(compressed, backend)

        keys = compiled_full.keys
        names = tuple(scenario.name for scenario in scenarios)
        baseline_map = compiled_full.evaluate(base)
        baseline = np.empty(len(keys), dtype=object)
        for j, key in enumerate(keys):
            baseline[j] = baseline_map[key]

        zero = backend.semiring.zero
        full_results = np.empty((len(scenarios), len(keys)), dtype=object)
        compressed_results = (
            np.empty((len(scenarios), len(keys)), dtype=object)
            if compiled_compressed is not None
            else None
        )
        with trace("batch.kernel.generic", rows=len(scenarios)):
            for i, scenario in enumerate(scenarios):
                valuation = scenario.apply(base, universe)
                row = compiled_full.evaluate(valuation)
                for j, key in enumerate(keys):
                    full_results[i, j] = row[key]
                if compiled_compressed is not None:
                    meta_valuation = default_meta_valuation(
                        abstraction, valuation, on_missing="skip", semiring=backend
                    )
                    missing = meta_valuation.missing(compiled_compressed.variables)
                    if missing:
                        meta_valuation = meta_valuation.updated(
                            {name: backend.default_value(name) for name in missing}
                        )
                    compressed_row = compiled_compressed.evaluate(meta_valuation)
                    for j, key in enumerate(keys):
                        compressed_results[i, j] = compressed_row.get(key, zero)

        return BatchReport(
            scenario_names=names,
            keys=keys,
            baseline=baseline,
            full_results=full_results,
            compressed_results=compressed_results,
            full_size=provenance.size(),
            compressed_size=compressed.size() if compressed is not None else None,
            semiring=backend.name,
            mode="generic",
        )

    def compress_and_evaluate(
        self,
        provenance: ProvenanceSet,
        trees: "Union[AbstractionTree, AbstractionForest]",
        bound: int,
        scenarios: Sequence[Scenario],
        base_valuation: Optional[Mapping[str, float]] = None,
        strategy: str = "incremental",
        allow_infeasible: bool = False,
        semiring: BackendLike = None,
        mode: str = "auto",
        processes: Optional[int] = None,
    ) -> Tuple[BatchReport, "OptimizationResult"]:
        """Compress under ``bound`` and evaluate ``scenarios`` in one call.

        The compress-once-then-sweep service path: the abstraction is chosen
        through :attr:`compressor` (so repeated calls over the same
        provenance/forest — even at different bounds — reuse one cached
        coarsening trajectory), and both the full and the compressed
        provenance come out of the fingerprint-keyed compile cache.  Returns
        the batch report together with the optimisation result that produced
        the abstraction.
        """
        result = self.compressor.compress(
            provenance,
            trees,
            bound,
            strategy=strategy,
            allow_infeasible=allow_infeasible,
        )
        report = self.evaluate(
            provenance,
            scenarios,
            base_valuation=base_valuation,
            compressed=result.compressed,
            abstraction=result.abstraction,
            semiring=semiring,
            mode=mode,
            processes=processes,
        )
        return report, result
