"""The COBRA engine: sessions, hypothetical scenarios and reports.

This subpackage is the back-end of Figure 4 in the paper: it receives
provenance polynomials, a bound and abstraction trees, computes an
abstraction (via :mod:`repro.core`), lets the analyst assign values to the
meta-variables, and reports the induced query results, the provenance size
and the assignment speedup relative to the full provenance.
"""

from repro.engine.scenario import Scenario
from repro.engine.plan import (
    Axis,
    GridPlan,
    SamplePlan,
    ComposePlan,
    ScenarioPlan,
    axis,
    choice,
    compose,
    grid,
    normal,
    plan_from_spec,
    sample,
    sample_axis,
    uniform,
)
from repro.engine.report import AssignmentReport, MetaVariableInfo
from repro.engine.session import CobraSession

__all__ = [
    "Scenario",
    "ScenarioPlan",
    "GridPlan",
    "SamplePlan",
    "ComposePlan",
    "Axis",
    "axis",
    "sample_axis",
    "uniform",
    "normal",
    "choice",
    "grid",
    "sample",
    "compose",
    "plan_from_spec",
    "AssignmentReport",
    "MetaVariableInfo",
    "CobraSession",
]
