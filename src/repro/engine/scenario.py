"""Hypothetical scenarios: named, composable modifications of a valuation.

A scenario captures questions such as the ones the paper's analyst asks —
"what if the price per minute of all plans is decreased by 20% in March?" or
"what if the business plans' ppm is increased by 10%?" — as a sequence of
operations over provenance variables.  Scenarios are applied to a valuation
to produce the valuation encoding the hypothetical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ScenarioError
from repro.provenance.valuation import Valuation

VariableSelector = Union[str, Sequence[str], Callable[[str], bool]]


def _select(selector: VariableSelector, variables: Iterable[str]) -> Tuple[str, ...]:
    """Resolve a selector against the available variable names."""
    names = list(variables)
    if callable(selector):
        return tuple(name for name in names if selector(name))
    if isinstance(selector, str):
        return (selector,) if selector in names else ()
    wanted = set(selector)
    return tuple(name for name in names if name in wanted)


@dataclass(frozen=True)
class _Operation:
    """One scenario step: scale or set the selected variables."""

    kind: str  # "scale" | "set"
    selector: VariableSelector
    amount: float

    def apply(self, valuation: Valuation, variables: Iterable[str]) -> Valuation:
        selected = _select(self.selector, variables)
        if self.kind == "scale":
            return valuation.scaled(selected, self.amount)
        return valuation.updated({name: self.amount for name in selected})


@dataclass(frozen=True)
class Scenario:
    """A named hypothetical: a sequence of scale/set operations on variables.

    Scenarios are immutable; ``scale``/``set_value`` return extended copies so
    they can be built fluently::

        march_discount = (
            Scenario("March discount")
            .scale(lambda name: name == "m3", 0.8)
        )
    """

    name: str
    description: str = ""
    operations: Tuple[_Operation, ...] = ()

    def scale(self, selector: VariableSelector, factor: float) -> "Scenario":
        """Multiply the selected variables' values by ``factor``."""
        if factor < 0:
            raise ScenarioError("scale factor must be non-negative")
        return Scenario(
            self.name,
            self.description,
            self.operations + (_Operation("scale", selector, float(factor)),),
        )

    def set_value(self, selector: VariableSelector, value: float) -> "Scenario":
        """Set the selected variables' values to ``value``."""
        return Scenario(
            self.name,
            self.description,
            self.operations + (_Operation("set", selector, float(value)),),
        )

    def apply(
        self, valuation: Valuation, variables: Optional[Iterable[str]] = None
    ) -> Valuation:
        """Apply the scenario to ``valuation``.

        ``variables`` restricts which names the selectors may touch; by
        default the valuation's own variables are used.
        """
        if not isinstance(valuation, Valuation):
            valuation = Valuation(valuation)
        names = list(variables) if variables is not None else list(valuation)
        result = valuation
        for operation in self.operations:
            result = operation.apply(result, names)
        return result

    def affected_variables(self, variables: Iterable[str]) -> Tuple[str, ...]:
        """The subset of ``variables`` touched by at least one operation."""
        names = list(variables)
        touched: List[str] = []
        for operation in self.operations:
            for name in _select(operation.selector, names):
                if name not in touched:
                    touched.append(name)
        return tuple(touched)

    def __repr__(self) -> str:
        return f"Scenario({self.name!r}, operations={len(self.operations)})"
