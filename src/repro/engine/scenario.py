"""Hypothetical scenarios: named, composable modifications of a valuation.

A scenario captures questions such as the ones the paper's analyst asks —
"what if the price per minute of all plans is decreased by 20% in March?" or
"what if the business plans' ppm is increased by 10%?" — as a sequence of
operations over provenance variables.  Scenarios are applied to a valuation
to produce the valuation encoding the hypothetical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ScenarioError
from repro.provenance.valuation import Valuation

VariableSelector = Union[str, Sequence[str], Callable[[str], bool]]

#: One resolved scenario step: ``(kind, selected variable names, amount)``.
ResolvedOperation = Tuple[str, Tuple[str, ...], float]


def _select(
    selector: VariableSelector,
    names: Sequence[str],
    name_set: Optional[frozenset] = None,
) -> Tuple[str, ...]:
    """Resolve a selector against an already-materialised name universe.

    ``names`` must be a sequence (resolved once per scenario application, not
    per operation); ``name_set`` is an optional matching set for O(1)
    membership tests, built on demand otherwise.
    """
    if callable(selector):
        return tuple(name for name in names if selector(name))
    if name_set is None:
        name_set = frozenset(names)
    if isinstance(selector, str):
        return (selector,) if selector in name_set else ()
    # Explicit name lists are typically tiny against a large universe, so
    # iterate the selector (deduplicated, first occurrence wins) instead of
    # scanning every universe name per operation.
    return tuple(
        name for name in dict.fromkeys(selector) if name in name_set
    )


@dataclass(frozen=True)
class _Operation:
    """One scenario step: scale or set the selected variables."""

    kind: str  # "scale" | "set"
    selector: VariableSelector
    amount: float


@dataclass(frozen=True)
class Scenario:
    """A named hypothetical: a sequence of scale/set operations on variables.

    Scenarios are immutable; ``scale``/``set_value`` return extended copies so
    they can be built fluently::

        march_discount = (
            Scenario("March discount")
            .scale(lambda name: name == "m3", 0.8)
        )
    """

    name: str
    description: str = ""
    operations: Tuple[_Operation, ...] = ()

    def scale(self, selector: VariableSelector, factor: float) -> "Scenario":
        """Multiply the selected variables' values by ``factor``."""
        if factor < 0:
            raise ScenarioError("scale factor must be non-negative")
        return Scenario(
            self.name,
            self.description,
            self.operations + (_Operation("scale", selector, float(factor)),),
        )

    def set_value(self, selector: VariableSelector, value: float) -> "Scenario":
        """Set the selected variables' values to ``value``."""
        return Scenario(
            self.name,
            self.description,
            self.operations + (_Operation("set", selector, float(value)),),
        )

    def resolved_operations(
        self,
        variables: Iterable[str],
        name_set: Optional[frozenset] = None,
    ) -> Tuple[ResolvedOperation, ...]:
        """Resolve every operation's selector against ``variables`` in one pass.

        The name universe is materialised exactly once (a single list and a
        single membership set shared by all operations), so applying a
        scenario — or lowering it into a batch plan — costs one resolution per
        operation instead of one list materialisation per operation.  Callers
        resolving many scenarios against one universe (the batch planner)
        pass the membership set in so it is built once per batch, not once
        per scenario.
        """
        names = variables if isinstance(variables, (list, tuple)) else list(variables)
        if name_set is None:
            name_set = frozenset(names)
        return tuple(
            (op.kind, _select(op.selector, names, name_set), op.amount)
            for op in self.operations
        )

    def apply(
        self,
        valuation: Valuation,
        variables: Optional[Iterable[str]] = None,
        semiring: Optional[object] = None,
    ) -> Valuation:
        """Apply the scenario to ``valuation``.

        ``variables`` restricts which names the selectors may touch; by
        default the valuation's own variables are used.  The operations'
        meaning is defined by the valuation's semiring backend (``semiring=``
        types a plain mapping first): numeric backends multiply/assign, set
        backends interpret scale-by-0 / set-0 as deletion.
        """
        if not isinstance(valuation, Valuation):
            valuation = Valuation(valuation, semiring=semiring)
        names = list(variables) if variables is not None else list(valuation)
        result = valuation
        for kind, selected, amount in self.resolved_operations(names):
            if kind == "scale":
                result = result.scaled(selected, amount)
            else:
                result = result.set_to(selected, amount)
        return result

    def affected_variables(self, variables: Iterable[str]) -> Tuple[str, ...]:
        """The subset of ``variables`` touched by at least one operation."""
        touched: List[str] = []
        seen = set()
        for _kind, selected, _amount in self.resolved_operations(variables):
            for name in selected:
                if name not in seen:
                    seen.add(name)
                    touched.append(name)
        return tuple(touched)

    def __repr__(self) -> str:
        return f"Scenario({self.name!r}, operations={len(self.operations)})"
