"""Reports produced by a COBRA session.

Two artefacts mirror what the demo's front-end shows:

* :class:`MetaVariableInfo` — one row of the meta-variable assignment screen
  (Figure 5): the meta-variable, the original variables it abstracts, their
  values under the analyst's valuation and the suggested default;
* :class:`AssignmentReport` — the result screen: per-group query results
  computed from the full provenance versus the compressed provenance, the
  provenance sizes, and the assignment speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.metrics import ZERO_BASELINE_EPSILON
from repro.utils.timing import SpeedupMeasurement


@dataclass(frozen=True)
class MetaVariableInfo:
    """One meta-variable of the abstraction, as shown in the assignment screen.

    Attributes
    ----------
    name:
        The meta-variable's name (a cut node of the abstraction tree).
    members:
        The original variables it abstracts.
    member_values:
        Their values under the analyst's original valuation.
    default_value:
        The suggested default (average of ``member_values`` by default).
    """

    name: str
    members: Tuple[str, ...]
    member_values: Tuple[float, ...]
    default_value: float

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly rendering."""
        return {
            "name": self.name,
            "members": list(self.members),
            "member_values": list(self.member_values),
            "default_value": self.default_value,
        }


@dataclass(frozen=True)
class GroupComparison:
    """Full-vs-compressed result for one result group (one output tuple).

    With a non-real ``semiring``, the result fields hold values of that
    semiring's carrier (e.g. witness sets) and the error/delta measures are
    the backend's — symmetric-difference cardinality for set-valued
    semirings, numeric deltas otherwise.
    """

    key: Tuple
    baseline: object
    full_result: object
    compressed_result: object
    semiring: str = "real"

    def _backend(self):
        from repro.provenance.backends import resolve_backend

        return resolve_backend(self.semiring)

    @property
    def absolute_error(self) -> float:
        """``|full - compressed|`` per the semiring's error measure."""
        if self.semiring == "real":
            return abs(self.full_result - self.compressed_result)
        return self._backend().error(self.full_result, self.compressed_result)

    @property
    def relative_error(self) -> float:
        """Absolute error relative to the full result's magnitude.

        The denominator is epsilon-clamped (``ZERO_BASELINE_EPSILON``), so a
        compression that fabricates a value where the full result is 0 is
        reported as a (large) relative error rather than silently skipped —
        the same convention as ``compute_error_metrics``.
        """
        error = self.absolute_error
        if error == 0.0:
            return 0.0
        if self.semiring == "real":
            magnitude = abs(self.full_result)
        else:
            magnitude = self._backend().magnitude(self.full_result)
        if magnitude == float("inf"):
            return float("inf")
        return error / max(magnitude, ZERO_BASELINE_EPSILON)

    @property
    def change_from_baseline(self) -> float:
        """How much the hypothetical changed the result, per the full provenance."""
        if self.semiring == "real":
            return self.full_result - self.baseline
        return self._backend().delta(self.baseline, self.full_result)


@dataclass(frozen=True)
class AssignmentReport:
    """The outcome of assigning values to (meta-)variables in a session.

    Attributes
    ----------
    groups:
        Per-result-group comparisons of full vs compressed evaluation.
    full_size / compressed_size:
        Provenance sizes (number of monomials).
    full_variables / compressed_variables:
        Numbers of distinct variables.
    speedup:
        Wall-clock assignment-speedup measurement (full vs compressed).
    """

    groups: Tuple[GroupComparison, ...]
    full_size: int
    compressed_size: int
    full_variables: int
    compressed_variables: int
    speedup: Optional[SpeedupMeasurement] = None
    semiring: str = "real"

    # -- aggregate error measures ------------------------------------------------

    @property
    def max_absolute_error(self) -> float:
        """Largest per-group absolute deviation of compressed from full results."""
        return max((g.absolute_error for g in self.groups), default=0.0)

    @property
    def mean_absolute_error(self) -> float:
        """Mean per-group absolute deviation."""
        if not self.groups:
            return 0.0
        return sum(g.absolute_error for g in self.groups) / len(self.groups)

    @property
    def max_relative_error(self) -> float:
        """Largest per-group relative deviation."""
        return max((g.relative_error for g in self.groups), default=0.0)

    @property
    def mean_relative_error(self) -> float:
        """Mean per-group relative deviation."""
        if not self.groups:
            return 0.0
        return sum(g.relative_error for g in self.groups) / len(self.groups)

    @property
    def compression_ratio(self) -> float:
        """``compressed_size / full_size``."""
        if self.full_size == 0:
            return 1.0
        return self.compressed_size / self.full_size

    @property
    def speedup_fraction(self) -> Optional[float]:
        """The assignment speedup as a fraction (e.g. 0.47 for 47%), if measured."""
        if self.speedup is None:
            return None
        return self.speedup.speedup_fraction

    def summary(self) -> Dict[str, object]:
        """A flat dictionary of the headline numbers (for benchmarks/JSON)."""
        return {
            "groups": len(self.groups),
            "semiring": self.semiring,
            "full_size": self.full_size,
            "compressed_size": self.compressed_size,
            "compression_ratio": self.compression_ratio,
            "full_variables": self.full_variables,
            "compressed_variables": self.compressed_variables,
            "max_absolute_error": self.max_absolute_error,
            "mean_absolute_error": self.mean_absolute_error,
            "max_relative_error": self.max_relative_error,
            "mean_relative_error": self.mean_relative_error,
            "speedup_fraction": self.speedup_fraction,
        }

    def render_text(self, max_groups: int = 10) -> str:
        """A human-readable rendering for the CLI (at most ``max_groups`` rows)."""
        lines: List[str] = []
        if self.semiring != "real":
            lines.append(f"semiring: {self.semiring}")
        lines.append(
            f"provenance size: {self.full_size} -> {self.compressed_size} "
            f"({self.compression_ratio:.1%} of original)"
        )
        lines.append(
            f"variables:       {self.full_variables} -> {self.compressed_variables}"
        )
        if self.speedup is not None:
            lines.append(
                f"assignment speedup: {self.speedup.speedup_fraction:.0%} "
                f"({self.speedup.baseline_seconds * 1e3:.2f} ms -> "
                f"{self.speedup.optimized_seconds * 1e3:.2f} ms)"
            )
        lines.append(
            f"result error: mean {self.mean_relative_error:.2%}, "
            f"max {self.max_relative_error:.2%} (relative)"
        )
        lines.append("")
        header = f"{'group':<20} {'baseline':>14} {'full':>14} {'compressed':>14} {'diff':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        if self.semiring == "real":
            formatted = lambda value: f"{value:14.2f}"  # noqa: E731
        else:
            from repro.provenance.backends import resolve_backend

            backend = resolve_backend(self.semiring)
            formatted = lambda value: f"{backend.format_value(value):>14}"  # noqa: E731
        for group in self.groups[:max_groups]:
            key_text = ", ".join(str(part) for part in group.key)
            lines.append(
                f"{key_text:<20} {formatted(group.baseline)} "
                f"{formatted(group.full_result)} "
                f"{formatted(group.compressed_result)} {group.absolute_error:>10.2f}"
            )
        if len(self.groups) > max_groups:
            lines.append(f"... ({len(self.groups) - max_groups} more groups)")
        return "\n".join(lines)
