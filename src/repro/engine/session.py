"""The COBRA session: the back-end workflow of Figure 4.

A :class:`CobraSession` walks through exactly the steps the demo walks its
audience through:

1. load provenance polynomials (from any provenance engine) together with
   the analyst's valuation of the provenance variables;
2. set an abstraction tree (or forest) and a bound on the provenance size;
3. :meth:`compress` — compute the optimal abstraction under the bound;
4. inspect the meta-variables and their default values
   (:meth:`meta_variable_panel`, Figure 5);
5. :meth:`assign` values to the meta-variables (or accept the defaults) and
   receive an :class:`~repro.engine.report.AssignmentReport` comparing the
   results from the compressed provenance with those from the full
   provenance, together with the provenance sizes and the assignment
   speedup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import SerializationError, SessionStateError
from repro.provenance.backends import BackendLike, resolve_backend
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.valuation import (
    CompiledProvenanceSet,
    Valuation,
)
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.core.compression import Abstraction, Compressor
from repro.core.defaults import default_meta_valuation
from repro.core.multi_tree import optimize_forest
from repro.core.optimizer import OptimizationResult
from repro.engine.report import AssignmentReport, GroupComparison, MetaVariableInfo
from repro.engine.scenario import Scenario
from repro.obs.tracer import trace as obs_trace
from repro.utils.timing import measure_speedup

if TYPE_CHECKING:  # pragma: no cover — import cycle: repro.batch imports engine
    from repro.batch.evaluator import BatchEvaluator
    from repro.batch.report import BatchReport
    from repro.engine.plan import ScenarioPlan

TreeOrForest = Union[AbstractionTree, AbstractionForest]


class CobraSession:
    """One analyst's interaction with COBRA over a fixed provenance input.

    Parameters
    ----------
    provenance:
        The full provenance polynomials, keyed by result group.
    base_valuation:
        The analyst's valuation of the provenance variables.  The identity
        valuation (the default) reproduces the original query results.
    semiring:
        The evaluation backend — a name (``"real"``, ``"tropical"``,
        ``"bool"``, ``"why"``, ``"lineage"``), a semiring instance, or a
        :class:`~repro.provenance.backends.SemiringBackend`.  The default is
        the real (float) pipeline; any other backend types the valuations by
        its carrier and evaluates results in that semiring.
    """

    def __init__(
        self,
        provenance: ProvenanceSet,
        base_valuation: Optional[Mapping[str, float]] = None,
        semiring: BackendLike = None,
    ) -> None:
        if not isinstance(provenance, ProvenanceSet):
            raise SessionStateError(
                "CobraSession expects a ProvenanceSet; use "
                "repro.db.to_provenance_set or the workload generators"
            )
        self._provenance = provenance
        self._backend = resolve_backend(semiring)
        if base_valuation is None:
            self._base_valuation = Valuation.identity_for(
                provenance, semiring=self._backend
            )
        else:
            self._base_valuation = Valuation(
                dict(base_valuation), semiring=self._backend
            )
        missing = self._base_valuation.missing(provenance.variables())
        if missing:
            # Unassigned variables default to their backend identity (1.0 on
            # the float pipeline — no change), mirroring the demo's behaviour
            # of starting from the original query result.
            self._base_valuation = self._base_valuation.updated(
                {name: self._backend.default_value(name) for name in missing}
            )

        self._trees: Optional[AbstractionForest] = None
        self._bound: Optional[int] = None
        self._optimization: Optional[OptimizationResult] = None
        self._compiled_full: Optional[CompiledProvenanceSet] = None
        self._compiled_compressed: Optional[CompiledProvenanceSet] = None
        self._batch_evaluator = None  # lazy repro.batch.BatchEvaluator
        self._compressor: Optional[Compressor] = None  # lazy, trajectory-cached

    # -- step 1: the input ----------------------------------------------------

    @property
    def provenance(self) -> ProvenanceSet:
        """The full (uncompressed) provenance."""
        return self._provenance

    @property
    def base_valuation(self) -> Valuation:
        """The analyst's valuation of the original provenance variables."""
        return self._base_valuation

    @property
    def backend(self):
        """The session's semiring backend (the real backend by default)."""
        return self._backend

    def initial_results(self) -> Dict[Tuple, float]:
        """The query results under the base valuation (the demo's first screen)."""
        if self._backend.name == "real":
            return self._provenance.evaluate(self._base_valuation)
        if self._compiled_full is None:
            self._compiled_full = self._backend.compile(self._provenance)
        return self._compiled_full.evaluate(self._base_valuation)

    # -- step 2: tree and bound ---------------------------------------------------

    def set_abstraction_trees(self, trees: TreeOrForest) -> None:
        """Set the abstraction tree or forest guiding the compression."""
        if isinstance(trees, AbstractionTree):
            trees = AbstractionForest([trees])
        self._trees = trees
        self._optimization = None
        self._compiled_compressed = None

    def set_bound(self, bound: int) -> None:
        """Set the bound on the number of monomials of the compressed provenance."""
        if bound < 0:
            raise SessionStateError("the bound must be non-negative")
        self._bound = int(bound)
        self._optimization = None
        self._compiled_compressed = None

    @property
    def bound(self) -> Optional[int]:
        """The current bound (``None`` until :meth:`set_bound` is called)."""
        return self._bound

    # -- step 3: compression ------------------------------------------------------

    def compressor(self) -> Compressor:
        """The session's trajectory-cached compression service (lazy)."""
        if self._compressor is None:
            self._compressor = Compressor()
        return self._compressor

    def compress(
        self,
        method: str = "auto",
        allow_infeasible: bool = False,
        keep_trace: bool = False,
    ) -> OptimizationResult:
        """Compute the optimal abstraction for the configured trees and bound.

        ``method="incremental"`` routes through the session's
        :class:`~repro.core.compression.Compressor`, so repeated
        ``set_bound`` → ``compress`` rounds reuse one cached coarsening
        trajectory instead of re-running the greedy search per bound;
        ``method="legacy"`` forces the original full-rescan greedy.
        """
        if self._trees is None:
            raise SessionStateError("call set_abstraction_trees() before compress()")
        if self._bound is None:
            raise SessionStateError("call set_bound() before compress()")
        with obs_trace("session.compress", method=method, bound=self._bound):
            if method in ("incremental", "legacy"):
                self._optimization = self.compressor().compress(
                    self._provenance,
                    self._trees,
                    self._bound,
                    strategy=method,
                    allow_infeasible=allow_infeasible,
                    keep_trace=keep_trace,
                )
            else:
                self._optimization = optimize_forest(
                    self._provenance,
                    self._trees,
                    self._bound,
                    method=method,
                    allow_infeasible=allow_infeasible,
                    keep_trace=keep_trace,
                )
        self._compiled_compressed = None
        return self._optimization

    def compress_sweep(
        self,
        bounds: Sequence[int],
        strategy: str = "incremental",
        allow_infeasible: bool = False,
    ) -> Dict[int, OptimizationResult]:
        """Compress under every bound in ``bounds`` (compress once, sweep many).

        The incremental kernel's coarsening order does not depend on the
        bound, so the whole sweep shares one cached trajectory: the cost is
        one greedy run down to the tightest bound, plus cheap prefix
        reconstructions.  The session's own ``optimization`` state is left
        untouched — use :meth:`compress` to commit to a single bound.
        """
        if self._trees is None:
            raise SessionStateError(
                "call set_abstraction_trees() before compress_sweep()"
            )
        return self.compressor().sweep(
            self._provenance,
            self._trees,
            bounds,
            strategy=strategy,
            allow_infeasible=allow_infeasible,
        )

    @property
    def optimization(self) -> OptimizationResult:
        """The result of the last :meth:`compress` call."""
        if self._optimization is None:
            raise SessionStateError("no abstraction computed yet; call compress()")
        return self._optimization

    @property
    def abstraction(self) -> Abstraction:
        """The abstraction chosen by the last :meth:`compress` call."""
        return self.optimization.abstraction

    @property
    def compressed_provenance(self) -> ProvenanceSet:
        """The compressed provenance of the last :meth:`compress` call."""
        return self.optimization.compressed

    # -- step 4: the meta-variable panel -------------------------------------------

    def default_valuation(self, reducer: str = "mean") -> Valuation:
        """The default valuation of the compressed provenance's variables.

        Tree leaves that never occur in the provenance are excluded from the
        averages (``on_missing="skip"``), so a meta-variable's default is the
        average of the values its *occurring* members take under the base
        valuation — exactly the number the demo's assignment screen shows.
        """
        return default_meta_valuation(
            self.abstraction,
            self._base_valuation,
            reducer=reducer,
            provenance=self._provenance,
            on_missing="skip",
            semiring=self._backend,
        )

    def meta_variable_panel(self, reducer: str = "mean") -> Tuple[MetaVariableInfo, ...]:
        """The rows of the meta-variable assignment screen (Figure 5)."""
        abstraction = self.abstraction
        defaults = self.default_valuation(reducer=reducer)
        is_real = self._backend.name == "real"
        rows = []
        for meta, members in sorted(abstraction.grouped_variables().items()):
            member_values = tuple(
                float(self._base_valuation.get(member, 1.0))
                if is_real
                else self._base_valuation.get(
                    member, self._backend.default_value(member)
                )
                for member in members
            )
            rows.append(
                MetaVariableInfo(
                    name=meta,
                    members=members,
                    member_values=member_values,
                    default_value=float(defaults[meta]) if is_real else defaults[meta],
                )
            )
        return tuple(rows)

    # -- step 5: assignment and comparison -------------------------------------------

    def _compiled(self) -> Tuple[CompiledProvenanceSet, CompiledProvenanceSet]:
        # The backend decides the compiled form: CompiledProvenanceSet for the
        # real backend (unchanged fast path), a numpy semiring kernel or the
        # generic fallback otherwise — all sharing the same surface.
        if self._compiled_full is None:
            with obs_trace("session.compile", which="full"):
                self._compiled_full = self._backend.compile(self._provenance)
        if self._compiled_compressed is None:
            with obs_trace("session.compile", which="compressed"):
                self._compiled_compressed = self._backend.compile(
                    self.compressed_provenance
                )
        return self._compiled_full, self._compiled_compressed

    # -- compiled stores -------------------------------------------------------

    def compile_to_store(self, path):
        """Compile the full provenance and persist it as a mmap-able store.

        The paper's workflow split in one call: the strong machine compiles
        once and writes ``path``; any number of consumers then
        :meth:`open_from_store` it with O(header) cold-start cost.  Returns
        the compiled set (also kept as the session's compiled-full state).
        """
        if self._compiled_full is None:
            with obs_trace("session.compile", which="full"):
                self._compiled_full = self._backend.compile(self._provenance)
        compiled = self._compiled_full
        to_store = getattr(compiled, "to_store", None)
        if to_store is None:
            raise SessionStateError(
                f"the {self._backend.name!r} backend's compiled form has no "
                "mmap store format (only real/tropical/bool do)"
            )
        to_store(path)
        return compiled

    def open_from_store(self, path, recover: bool = True):
        """Adopt the compiled store at ``path`` as this session's compiled form.

        The store must match the session: same backend, and a fingerprint
        equal to this session's provenance (a store compiled from different
        provenance would silently answer the wrong what-ifs).  On success the
        mapped compiled set replaces the session's compiled-full state and is
        seeded into the batch evaluator's compile cache, so
        :meth:`evaluate_many` — including ``processes=N`` sharding, which
        then ships the store *path* to a persistent worker pool — runs off
        the mapped arrays.  Returns the mapped compiled set.

        Opening runs under the environment's retry policy
        (``COBRA_RETRY``-tunable): transient I/O failures back off and
        retry before anything is declared corrupt.

        With ``recover=True`` (default), a store that fails verification —
        bad magic, truncated blocks, a CRC32 mismatch — is quarantined
        (renamed ``<path>.quarantined``) and the session transparently
        recompiles from its own provenance instead of raising: the warm
        start degrades to a compile, recorded as a degradation event and
        under ``resilience.quarantines``.

        Raises
        ------
        SerializationError
            If the file is not a valid compiled store (``recover=False``).
        SessionStateError
            On a backend or provenance-fingerprint mismatch.
        """
        from repro.batch.evaluator import BatchEvaluator
        from repro.provenance.store import open_store, quarantine_store
        from repro.resilience import policy_from_env, record_degradation

        def open_once():
            return open_store(path)

        try:
            compiled = policy_from_env().run(
                open_once,
                retryable=(OSError,),
                give_up=(FileNotFoundError,),
                site="store.open",
            )
        except SerializationError as exc:
            quarantined = quarantine_store(path)
            if not recover:
                raise
            record_degradation(
                f"store {path} was corrupt ({exc}); quarantined to "
                f"{quarantined} and recompiled from session provenance"
            )
            with obs_trace("session.compile", which="full", recovery="store"):
                self._compiled_full = self._backend.compile(self._provenance)
            return self._compiled_full
        if compiled.backend_name != self._backend.name:
            raise SessionStateError(
                f"{path}: store was compiled for the "
                f"{compiled.backend_name!r} backend, but this session "
                f"evaluates in {self._backend.name!r}"
            )
        fingerprint = self._provenance.fingerprint()
        if compiled.source_fingerprint != fingerprint:
            raise SessionStateError(
                f"{path}: store fingerprint {compiled.source_fingerprint!r} "
                "does not match this session's provenance "
                f"({fingerprint!r}); recompile the store"
            )
        self._compiled_full = compiled
        if self._batch_evaluator is None:
            self._batch_evaluator = BatchEvaluator(compressor=self.compressor())
        self._batch_evaluator.adopt_store(path)
        return compiled

    def assign(
        self,
        meta_changes: Optional[Mapping[str, float]] = None,
        full_valuation: Optional[Mapping[str, float]] = None,
        measure_assignment_speedup: bool = True,
        speedup_repeats: int = 3,
    ) -> AssignmentReport:
        """Assign values to the meta-variables and compare against the full provenance.

        Parameters
        ----------
        meta_changes:
            Values for (a subset of) the meta-variables; unspecified
            meta-variables take their default value (average of their
            members), and untouched original variables keep their base value.
        full_valuation:
            The valuation of the *original* variables representing the same
            hypothetical, used to evaluate the full provenance.  Defaults to
            the base valuation, which corresponds to the analyst accepting
            the original scenario.
        measure_assignment_speedup:
            Also time the two evaluations (via the compiled evaluators) and
            report the speedup, as the demo does.
        """
        with obs_trace("session.assign"):
            return self._assign(
                meta_changes,
                full_valuation,
                measure_assignment_speedup,
                speedup_repeats,
            )

    def _assign(
        self,
        meta_changes: Optional[Mapping[str, float]],
        full_valuation: Optional[Mapping[str, float]],
        measure_assignment_speedup: bool,
        speedup_repeats: int,
    ) -> AssignmentReport:
        full_value_map = (
            Valuation(dict(full_valuation), semiring=self._backend)
            if full_valuation is not None
            else self._base_valuation
        )
        missing = full_value_map.missing(self._provenance.variables())
        if missing:
            full_value_map = full_value_map.updated(
                {name: self._backend.default_value(name) for name in missing}
            )

        meta_valuation = default_meta_valuation(
            self.abstraction,
            full_value_map,
            reducer="mean",
            on_missing="skip",
            semiring=self._backend,
        )
        if meta_changes:
            meta_valuation = meta_valuation.updated(dict(meta_changes))
        compressed_missing = meta_valuation.missing(
            self.compressed_provenance.variables()
        )
        if compressed_missing:
            meta_valuation = meta_valuation.updated(
                {
                    name: self._backend.default_value(name)
                    for name in compressed_missing
                }
            )

        compiled_full, compiled_compressed = self._compiled()
        baseline_results = compiled_full.evaluate(self._base_valuation)
        full_results = compiled_full.evaluate(full_value_map)
        compressed_results = compiled_compressed.evaluate(meta_valuation)

        zero = self._backend.semiring.zero
        groups = tuple(
            GroupComparison(
                key=key,
                baseline=baseline_results[key],
                full_result=full_results[key],
                compressed_result=compressed_results.get(key, zero),
                semiring=self._backend.name,
            )
            for key in self._provenance.keys()
        )

        speedup = None
        if measure_assignment_speedup:
            if self._backend.name == "real":
                full_fn = lambda: compiled_full.evaluate_vector(full_value_map)  # noqa: E731
                compressed_fn = lambda: compiled_compressed.evaluate_vector(  # noqa: E731
                    meta_valuation
                )
            else:
                full_fn = lambda: compiled_full.evaluate(full_value_map)  # noqa: E731
                compressed_fn = lambda: compiled_compressed.evaluate(  # noqa: E731
                    meta_valuation
                )
            speedup = measure_speedup(full_fn, compressed_fn, repeats=speedup_repeats)

        return AssignmentReport(
            groups=groups,
            full_size=self._provenance.size(),
            compressed_size=self.compressed_provenance.size(),
            full_variables=self._provenance.num_variables(),
            compressed_variables=self.compressed_provenance.num_variables(),
            speedup=speedup,
            semiring=self._backend.name,
        )

    def assign_scenario(
        self,
        scenario: Scenario,
        measure_assignment_speedup: bool = True,
    ) -> AssignmentReport:
        """Apply a :class:`~repro.engine.scenario.Scenario` and compare results.

        The scenario is applied to the original variables to obtain the full
        valuation; the corresponding meta-variable values are derived as the
        average of their members' scenario values (the demo's default), which
        is exact whenever the scenario treats all members of a group alike.
        """
        full_valuation = scenario.apply(
            self._base_valuation, self._provenance.variables()
        )
        return self.assign(
            meta_changes=None,
            full_valuation=full_valuation,
            measure_assignment_speedup=measure_assignment_speedup,
        )

    def evaluate_many(
        self,
        scenarios: Sequence[Scenario],
        include_compressed: Union[bool, str] = "auto",
        evaluator: Optional["BatchEvaluator"] = None,
        mode: str = "auto",
        processes: Optional[int] = None,
    ) -> "BatchReport":
        """Evaluate a whole scenario sweep in one vectorised batch pass.

        Unlike :meth:`compare_scenarios` (a Python loop over
        :meth:`assign_scenario`, fine for a handful of what-ifs), this lowers
        all scenarios through the :mod:`repro.batch` subsystem — hundreds of
        scenarios cost a handful of numpy operations.

        Parameters
        ----------
        scenarios:
            The hypotheticals to evaluate, one report row each.
        include_compressed:
            ``"auto"`` (default) also evaluates the compressed provenance
            whenever :meth:`compress` has run, so the report carries the
            abstraction-induced error across the sweep; ``True`` requires a
            compression (raising otherwise); ``False`` evaluates the full
            provenance only.
        evaluator:
            An explicit :class:`~repro.batch.BatchEvaluator` (e.g. shared
            across sessions, or configured with a worker pool).  By default
            the session keeps one of its own, so repeated sweeps reuse the
            compiled provenance.
        mode:
            ``"auto"`` (default) picks between the dense matrix pipeline and
            sparse baseline-once delta evaluation by how much of the variable
            universe the scenarios touch; ``"dense"``/``"sparse"`` force a
            pipeline.  Both produce element-wise equal results.
        processes:
            Shard scenario rows across this many worker processes (large
            sweeps on multi-core hosts); ``None`` evaluates in-process.
        """
        from repro.batch.evaluator import BatchEvaluator

        if include_compressed not in (True, False, "auto"):
            raise SessionStateError(
                "include_compressed must be True, False or 'auto'"
            )
        if evaluator is None:
            if self._batch_evaluator is None:
                # Share the session's Compressor so a compress-then-sweep
                # through either entry point reuses one trajectory cache.
                self._batch_evaluator = BatchEvaluator(
                    compressor=self.compressor()
                )
            evaluator = self._batch_evaluator

        compressed = None
        abstraction = None
        if include_compressed is True and self._optimization is None:
            raise SessionStateError(
                "include_compressed=True requires compress() to have run"
            )
        if include_compressed is not False and self._optimization is not None:
            compressed = self.compressed_provenance
            abstraction = self.abstraction

        with obs_trace(
            "session.evaluate_many",
            scenarios=len(scenarios),
            compressed=compressed is not None,
        ):
            return evaluator.evaluate(
                self._provenance,
                scenarios,
                base_valuation=self._base_valuation,
                compressed=compressed,
                abstraction=abstraction,
                semiring=self._backend,
                mode=mode,
                processes=processes,
            )

    def evaluate_plan(
        self,
        plan: "ScenarioPlan",
        include_compressed: Union[bool, str] = "auto",
        evaluator: Optional["BatchEvaluator"] = None,
        mode: str = "auto",
        processes: Optional[int] = None,
        chunk_scenarios: Optional[int] = None,
    ) -> "BatchReport":
        """Evaluate a declarative :class:`~repro.engine.plan.ScenarioPlan`.

        The plan form of :meth:`evaluate_many`: grids, Monte Carlo samples
        and composed sweeps (:mod:`repro.engine.plan`) lower lazily in
        bounded chunks, and sweeps sharing a common operation prefix take
        the factored pipeline (shared deltas evaluated once — see
        :mod:`repro.batch.factored`) under ``mode="auto"``.
        ``include_compressed``/``evaluator``/``mode``/``processes`` behave
        exactly as in :meth:`evaluate_many`; ``chunk_scenarios`` bounds how
        many ``Scenario`` objects a huge plan materialises at once.
        """
        from repro.batch.evaluator import BatchEvaluator

        if include_compressed not in (True, False, "auto"):
            raise SessionStateError(
                "include_compressed must be True, False or 'auto'"
            )
        if evaluator is None:
            if self._batch_evaluator is None:
                self._batch_evaluator = BatchEvaluator(
                    compressor=self.compressor()
                )
            evaluator = self._batch_evaluator

        compressed = None
        abstraction = None
        if include_compressed is True and self._optimization is None:
            raise SessionStateError(
                "include_compressed=True requires compress() to have run"
            )
        if include_compressed is not False and self._optimization is not None:
            compressed = self.compressed_provenance
            abstraction = self.abstraction

        with obs_trace(
            "session.evaluate_plan",
            plan=getattr(plan, "name", type(plan).__name__),
            points=len(plan),
            compressed=compressed is not None,
        ):
            return evaluator.evaluate_plan(
                self._provenance,
                plan,
                base_valuation=self._base_valuation,
                compressed=compressed,
                abstraction=abstraction,
                semiring=self._backend,
                mode=mode,
                processes=processes,
                chunk_scenarios=chunk_scenarios,
            )

    def compare_scenarios(
        self,
        scenarios: Sequence[Scenario],
        measure_assignment_speedup: bool = False,
    ) -> Dict[str, AssignmentReport]:
        """Run several hypothetical scenarios and return one report per scenario.

        This is the batch form of :meth:`assign_scenario`, matching the
        analyst workflow of examining a handful of candidate what-ifs side by
        side (scenario name → report).
        """
        reports: Dict[str, AssignmentReport] = {}
        for scenario in scenarios:
            reports[scenario.name] = self.assign_scenario(
                scenario, measure_assignment_speedup=measure_assignment_speedup
            )
        return reports

    # -- "under the hood" -----------------------------------------------------------

    def size_profile(self) -> Dict[int, int]:
        """The size/expressiveness Pareto frontier of the configured tree.

        Maps every achievable number of meta-variables to the smallest
        provenance size any cut of that cardinality can reach — the curve the
        meta-analyst consults before picking a bound.  Only available for a
        single abstraction tree satisfying the single-tree precondition.
        """
        from repro.core.optimizer import compute_size_profile

        if self._trees is None:
            raise SessionStateError("call set_abstraction_trees() first")
        if len(self._trees) != 1:
            raise SessionStateError(
                "size_profile() is only defined for a single abstraction tree"
            )
        return compute_size_profile(self._provenance, self._trees.trees()[0])

    def trace(self) -> Optional[Dict]:
        """The optimizer's intermediate results, if ``compress(keep_trace=True)``."""
        return self.optimization.trace
