"""Declarative scenario plans: grids, Monte Carlo samples and composition.

A :class:`ScenarioPlan` describes a *structured* sweep — "scale March's
price by each factor in this list, crossed with these business-plan
factors", or "draw 1,000 price perturbations from this distribution" —
without materialising the individual :class:`~repro.engine.scenario.Scenario`
objects.  Plans lower lazily (:meth:`ScenarioPlan.lower` is a generator), so
a :func:`grid` with 10^6 points costs O(axes) memory until it is consumed,
and the batch layer (:meth:`repro.batch.BatchEvaluator.evaluate_plan`)
evaluates it in bounded-size chunks.

Every plan built from a shared ``base`` scenario emits scenarios whose
operation tuples literally share the base's operation objects, which is what
lets the batch layer's shared-delta factoring recognise the common prefix
and evaluate it once for the whole sweep (:mod:`repro.batch.factored`).

The three constructors:

* :func:`grid` — the Cartesian product of :func:`axis` value lists;
* :func:`sample` — Monte Carlo points drawn from per-axis distributions
  with an **explicit** ``seed`` (no ambient RNG state);
* :func:`compose` — one base scenario prefixed onto a list of variants
  (or onto another plan's points).

:func:`plan_from_spec` builds any of them from a JSON-friendly dict — the
format the ``cobra sweep`` subcommand reads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.scenario import Scenario, VariableSelector
from repro.exceptions import ScenarioError

#: The operation kinds a plan axis may apply (the Scenario surface).
OPERATION_KINDS: Tuple[str, ...] = ("scale", "set")

#: Distribution kinds :func:`sample` axes may draw from.
DISTRIBUTION_KINDS: Tuple[str, ...] = ("uniform", "normal", "choice")


def _check_kind(kind: str) -> str:
    if kind not in OPERATION_KINDS:
        raise ScenarioError(
            f"axis kind must be one of {OPERATION_KINDS}, got {kind!r}"
        )
    return kind


def _selector_label(selector: VariableSelector) -> str:
    """A short human-readable rendering of a selector (for scenario names)."""
    if isinstance(selector, str):
        return selector
    if callable(selector):
        return getattr(selector, "__name__", "<predicate>")
    names = list(selector)
    if len(names) <= 2:
        return ",".join(names)
    return f"{names[0]},..x{len(names)}"


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Axis:
    """One grid dimension: an operation applied at each value of a list."""

    kind: str
    selector: VariableSelector
    values: Tuple[float, ...]
    label: str = ""

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if not self.values:
            raise ScenarioError("a grid axis needs at least one value")
        if self.kind == "scale" and any(v < 0 for v in self.values):
            raise ScenarioError("scale axis values must be non-negative")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def display(self) -> str:
        return self.label or _selector_label(self.selector)


def axis(
    kind: str,
    selector: VariableSelector,
    values: Sequence[float],
    label: str = "",
) -> Axis:
    """A grid axis: apply ``kind`` to ``selector`` at each of ``values``."""
    return Axis(kind, selector, tuple(float(v) for v in values), label)


@dataclass(frozen=True)
class Distribution:
    """A scalar distribution a :func:`sample` axis draws amounts from."""

    kind: str
    low: float = 0.0
    high: float = 1.0
    mean: float = 0.0
    std: float = 1.0
    choices: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in DISTRIBUTION_KINDS:
            raise ScenarioError(
                f"distribution kind must be one of {DISTRIBUTION_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "choice" and not self.choices:
            raise ScenarioError("a choice distribution needs at least one value")

    def draw(self, rng: np.random.Generator) -> float:
        """One draw (samples lower one scenario at a time, staying lazy)."""
        if self.kind == "uniform":
            return float(rng.uniform(self.low, self.high))
        if self.kind == "normal":
            return float(rng.normal(self.mean, self.std))
        return float(self.choices[int(rng.integers(0, len(self.choices)))])


def uniform(low: float, high: float) -> Distribution:
    """A uniform distribution over ``[low, high)``."""
    return Distribution("uniform", low=float(low), high=float(high))


def normal(mean: float, std: float) -> Distribution:
    """A normal distribution with the given mean and standard deviation."""
    return Distribution("normal", mean=float(mean), std=float(std))


def choice(values: Sequence[float]) -> Distribution:
    """A uniform draw over an explicit value list."""
    return Distribution("choice", choices=tuple(float(v) for v in values))


@dataclass(frozen=True)
class SampleAxis:
    """One Monte Carlo dimension: an operation with a sampled amount."""

    kind: str
    selector: VariableSelector
    distribution: Distribution
    label: str = ""

    def __post_init__(self) -> None:
        _check_kind(self.kind)

    @property
    def display(self) -> str:
        return self.label or _selector_label(self.selector)


def sample_axis(
    kind: str,
    selector: VariableSelector,
    distribution: Distribution,
    label: str = "",
) -> SampleAxis:
    """A sampled axis: apply ``kind`` to ``selector`` at drawn amounts."""
    return SampleAxis(kind, selector, distribution, label)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class ScenarioPlan:
    """A declarative, lazily-lowered description of a scenario sweep.

    Subclasses implement :meth:`lower` (a generator — a plan never holds all
    its scenarios at once) and ``__len__`` (the number of points, computed
    without materialising them), and carry a ``name``.  Iterating a plan is
    iterating its lowering.
    """

    name: str  # annotation only: subclasses are dataclasses with a name field

    def __len__(self) -> int:
        raise NotImplementedError

    def lower(self) -> Iterator[Scenario]:
        """Yield the plan's scenarios one at a time, in a deterministic order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Scenario]:
        return self.lower()

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary of the plan (type, name, point count)."""
        return {
            "type": type(self).__name__,
            "name": self.name,
            "points": len(self),
        }

    def scenarios(self) -> Tuple[Scenario, ...]:
        """Materialise every point (convenience for small plans and tests)."""
        return tuple(self.lower())

    def _base_scenario(self) -> Optional[Scenario]:
        return getattr(self, "base", None)

    def _extend(self, scenario: Scenario, axis_: Union[Axis, SampleAxis],
                amount: float) -> Scenario:
        if axis_.kind == "scale":
            return scenario.scale(axis_.selector, amount)
        return scenario.set_value(axis_.selector, amount)


@dataclass(frozen=True)
class GridPlan(ScenarioPlan):
    """The Cartesian product of grid axes (optionally behind a base prefix)."""

    name: str
    axes: Tuple[Axis, ...]
    base: Optional[Scenario] = None

    def __len__(self) -> int:
        count = 1
        for ax in self.axes:
            count *= len(ax.values)
        return count

    def lower(self) -> Iterator[Scenario]:
        prefix = self.base.operations if self.base is not None else ()
        ranges = [range(len(ax.values)) for ax in self.axes]
        for index, picks in enumerate(itertools.product(*ranges)):
            parts = [
                f"{ax.display}={ax.values[i]:g}"
                for ax, i in zip(self.axes, picks)
            ]
            scenario = Scenario(
                f"{self.name}[{index}]", ", ".join(parts), prefix
            )
            for ax, i in zip(self.axes, picks):
                scenario = self._extend(scenario, ax, ax.values[i])
            yield scenario

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["axes"] = [
            {"kind": ax.kind, "axis": ax.display, "values": len(ax.values)}
            for ax in self.axes
        ]
        summary["base_operations"] = (
            len(self.base.operations) if self.base is not None else 0
        )
        return summary


@dataclass(frozen=True)
class SamplePlan(ScenarioPlan):
    """``count`` Monte Carlo points drawn with an explicit ``seed``."""

    name: str
    axes: Tuple[SampleAxis, ...]
    count: int
    seed: int
    base: Optional[Scenario] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ScenarioError("a sample plan needs count >= 1")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ScenarioError(
                "sample(...) requires an explicit integer seed — Monte Carlo "
                "sweeps must be reproducible, so there is no ambient default"
            )

    def __len__(self) -> int:
        return self.count

    def lower(self) -> Iterator[Scenario]:
        prefix = self.base.operations if self.base is not None else ()
        rng = np.random.default_rng(self.seed)
        for index in range(self.count):
            amounts = [ax.distribution.draw(rng) for ax in self.axes]
            if self.axes and any(
                ax.kind == "scale" and amount < 0
                for ax, amount in zip(self.axes, amounts)
            ):
                amounts = [
                    max(0.0, amount) if ax.kind == "scale" else amount
                    for ax, amount in zip(self.axes, amounts)
                ]
            parts = [
                f"{ax.display}={amount:g}"
                for ax, amount in zip(self.axes, amounts)
            ]
            scenario = Scenario(
                f"{self.name}[{index}]", ", ".join(parts), prefix
            )
            for ax, amount in zip(self.axes, amounts):
                scenario = self._extend(scenario, ax, amount)
            yield scenario

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["seed"] = self.seed
        summary["axes"] = [
            {"kind": ax.kind, "axis": ax.display,
             "distribution": ax.distribution.kind}
            for ax in self.axes
        ]
        summary["base_operations"] = (
            len(self.base.operations) if self.base is not None else 0
        )
        return summary


@dataclass(frozen=True)
class ComposePlan(ScenarioPlan):
    """A base scenario prefixed onto every variant of a sweep.

    The emitted scenarios *share* the base's operation objects, so the batch
    layer's factoring recognises the common prefix even when the base uses
    callable selectors (which compare by identity).
    """

    name: str
    base: Scenario
    variants: Union[Tuple[Scenario, ...], ScenarioPlan]

    def __len__(self) -> int:
        return len(self.variants)

    def lower(self) -> Iterator[Scenario]:
        source: Iterator[Scenario] = iter(self.variants)
        for variant in source:
            yield Scenario(
                variant.name,
                variant.description,
                self.base.operations + variant.operations,
            )

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["base_operations"] = len(self.base.operations)
        if isinstance(self.variants, ScenarioPlan):
            summary["variants"] = self.variants.describe()
        return summary


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def grid(
    *axes: Axis,
    name: str = "grid",
    base: Optional[Scenario] = None,
) -> GridPlan:
    """The Cartesian product of ``axes`` (optionally after ``base``'s ops)."""
    return GridPlan(name=name, axes=tuple(axes), base=base)


def sample(
    *axes: SampleAxis,
    count: int,
    seed: int,
    name: str = "sample",
    base: Optional[Scenario] = None,
) -> SamplePlan:
    """``count`` Monte Carlo points; ``seed`` is required, never ambient."""
    return SamplePlan(
        name=name, axes=tuple(axes), count=int(count), seed=seed, base=base
    )


def compose(
    base: Scenario,
    variants: Union[Sequence[Scenario], ScenarioPlan],
    name: str = "",
) -> ComposePlan:
    """Prefix ``base``'s operations onto every variant scenario (or plan point)."""
    resolved: Union[Tuple[Scenario, ...], ScenarioPlan]
    if isinstance(variants, ScenarioPlan):
        resolved = variants
        default_name = f"{base.name}+{variants.name}"
    else:
        resolved = tuple(variants)
        default_name = f"{base.name}+{len(resolved)} variants"
    return ComposePlan(name=name or default_name, base=base, variants=resolved)


# ---------------------------------------------------------------------------
# JSON specs (the `cobra sweep` wire format)
# ---------------------------------------------------------------------------


def _selector_from_spec(spec: Mapping[str, object]) -> VariableSelector:
    if "variables" in spec:
        names = spec["variables"]
        if isinstance(names, str):
            return names
        if isinstance(names, Sequence):
            return tuple(str(name) for name in names)
    if "variable" in spec:
        return str(spec["variable"])
    raise ScenarioError(
        "an axis/operation spec needs 'variables' (list) or 'variable' (name)"
    )


def _base_from_spec(
    operations: Sequence[Mapping[str, object]], name: str
) -> Optional[Scenario]:
    if not operations:
        return None
    scenario = Scenario(f"{name}-base")
    for op in operations:
        kind = _check_kind(str(op.get("op", "scale")))
        selector = _selector_from_spec(op)
        amount = float(op["amount"])  # type: ignore[arg-type]
        if kind == "scale":
            scenario = scenario.scale(selector, amount)
        else:
            scenario = scenario.set_value(selector, amount)
    return scenario


def _distribution_from_spec(spec: Mapping[str, object]) -> Distribution:
    kind = str(spec.get("kind", "uniform"))
    if kind == "uniform":
        return uniform(
            float(spec.get("low", 0.0)),  # type: ignore[arg-type]
            float(spec.get("high", 1.0)),  # type: ignore[arg-type]
        )
    if kind == "normal":
        return normal(
            float(spec.get("mean", 0.0)),  # type: ignore[arg-type]
            float(spec.get("std", 1.0)),  # type: ignore[arg-type]
        )
    if kind == "choice":
        values = spec.get("values", ())
        if not isinstance(values, Sequence) or isinstance(values, str):
            raise ScenarioError("a choice distribution spec needs 'values'")
        return choice([float(v) for v in values])
    raise ScenarioError(
        f"distribution kind must be one of {DISTRIBUTION_KINDS}, got {kind!r}"
    )


def plan_from_spec(spec: Mapping[str, object]) -> ScenarioPlan:
    """Build a plan from a JSON-friendly dict.

    Grid::

        {"type": "grid", "name": "march",
         "base": [{"op": "scale", "variables": ["p1"], "amount": 0.9}],
         "axes": [{"op": "scale", "variables": ["m3"],
                   "values": [0.8, 0.9, 1.0, 1.1]}]}

    Sample (the seed is mandatory)::

        {"type": "sample", "count": 500, "seed": 7,
         "axes": [{"op": "scale", "variables": ["m3"],
                   "distribution": {"kind": "uniform",
                                    "low": 0.8, "high": 1.2}}]}
    """
    plan_type = str(spec.get("type", "grid"))
    name = str(spec.get("name", plan_type))
    raw_axes = spec.get("axes", ())
    if not isinstance(raw_axes, Sequence) or isinstance(raw_axes, str):
        raise ScenarioError("a plan spec needs an 'axes' list")
    raw_base = spec.get("base", ())
    if not isinstance(raw_base, Sequence) or isinstance(raw_base, str):
        raise ScenarioError("'base' must be a list of operation specs")
    base = _base_from_spec(
        [op for op in raw_base if isinstance(op, Mapping)], name
    )

    if plan_type == "grid":
        axes_: List[Axis] = []
        for ax in raw_axes:
            if not isinstance(ax, Mapping):
                raise ScenarioError("each axis spec must be an object")
            values = ax.get("values")
            if not isinstance(values, Sequence) or isinstance(values, str):
                raise ScenarioError("a grid axis spec needs a 'values' list")
            axes_.append(
                axis(
                    str(ax.get("op", "scale")),
                    _selector_from_spec(ax),
                    [float(v) for v in values],
                    label=str(ax.get("label", "")),
                )
            )
        return grid(*axes_, name=name, base=base)

    if plan_type == "sample":
        if "seed" not in spec:
            raise ScenarioError(
                "a sample plan spec requires an explicit 'seed'"
            )
        sample_axes: List[SampleAxis] = []
        for ax in raw_axes:
            if not isinstance(ax, Mapping):
                raise ScenarioError("each axis spec must be an object")
            dist = ax.get("distribution")
            if not isinstance(dist, Mapping):
                raise ScenarioError(
                    "a sample axis spec needs a 'distribution' object"
                )
            sample_axes.append(
                sample_axis(
                    str(ax.get("op", "scale")),
                    _selector_from_spec(ax),
                    _distribution_from_spec(dist),
                    label=str(ax.get("label", "")),
                )
            )
        return sample(
            *sample_axes,
            count=int(spec.get("count", 1)),  # type: ignore[arg-type]
            seed=int(spec["seed"]),  # type: ignore[arg-type]
            name=name,
            base=base,
        )

    raise ScenarioError(
        f"plan type must be 'grid' or 'sample', got {plan_type!r}"
    )
