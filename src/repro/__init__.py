"""COBRA — Compression via Abstraction of Provenance for Hypothetical Reasoning.

A from-scratch reproduction of the ICDE 2019 demonstration paper by Deutch,
Moskovitch and Rinetzky (and the algorithmic core of its SIGMOD 2019
companion).  The package is organised as follows:

* :mod:`repro.provenance` — provenance polynomials, semirings and valuations;
* :mod:`repro.db` — a provenance-aware in-memory relational engine;
* :mod:`repro.core` — abstraction trees and the compression algorithms (the
  paper's contribution);
* :mod:`repro.engine` — the COBRA session: compress, assign, compare;
* :mod:`repro.batch` — the batch what-if service: whole scenario sweeps
  evaluated as vectorised matrix operations over compiled provenance;
* :mod:`repro.workloads` — the telephony running example and a TPC-H-style
  workload, plus random-instance generators;
* :mod:`repro.resilience` — deterministic fault injection, retry policy and
  degradation events threaded through the store and batch pipelines;
* :mod:`repro.cli` — a command-line front-end mirroring the demo's GUI flow.
"""

from repro.exceptions import (
    CobraError,
    InfeasibleBoundError,
    InvalidCutError,
    InvalidTreeError,
    UnsupportedPolynomialError,
)
from repro.provenance import (
    SEMIRING_BACKEND_NAMES,
    CompiledPolynomial,
    CompiledProvenanceSet,
    Monomial,
    Polynomial,
    ProvenanceSet,
    ProvenanceStatistics,
    SemiringBackend,
    Valuation,
    Variable,
    VariableRegistry,
    describe_provenance,
    parse_polynomial,
    format_polynomial,
    resolve_backend,
)
from repro.core import (
    Abstraction,
    AbstractionForest,
    AbstractionTree,
    CompressionResult,
    Compressor,
    Cut,
    IncrementalGreedyKernel,
    OptimizationResult,
    apply_abstraction,
    compute_size_profile,
    default_meta_valuation,
    enumerate_cuts,
    leaf_cut,
    optimize_brute_force,
    optimize_forest,
    optimize_greedy,
    optimize_single_tree,
    root_cut,
)
from repro.engine import CobraSession, Scenario, AssignmentReport
from repro.batch import (
    BatchEvaluator,
    BatchReport,
    ScenarioBatch,
    ScenarioOutcome,
)
from repro.db import Catalog, Query, col, const, execute, parse_sql, to_provenance_set
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    collect_degradations,
    fault_plan,
    fault_point,
    install_plan,
)

__version__ = "1.0.0"

__all__ = [
    "CobraError",
    "InfeasibleBoundError",
    "InvalidCutError",
    "InvalidTreeError",
    "UnsupportedPolynomialError",
    "CompiledPolynomial",
    "CompiledProvenanceSet",
    "Monomial",
    "Polynomial",
    "ProvenanceSet",
    "ProvenanceStatistics",
    "Valuation",
    "Variable",
    "VariableRegistry",
    "describe_provenance",
    "parse_polynomial",
    "format_polynomial",
    "SemiringBackend",
    "resolve_backend",
    "SEMIRING_BACKEND_NAMES",
    "compute_size_profile",
    "Abstraction",
    "AbstractionForest",
    "AbstractionTree",
    "CompressionResult",
    "Compressor",
    "Cut",
    "IncrementalGreedyKernel",
    "OptimizationResult",
    "apply_abstraction",
    "default_meta_valuation",
    "enumerate_cuts",
    "leaf_cut",
    "optimize_brute_force",
    "optimize_forest",
    "optimize_greedy",
    "optimize_single_tree",
    "root_cut",
    "CobraSession",
    "Scenario",
    "AssignmentReport",
    "BatchEvaluator",
    "BatchReport",
    "ScenarioBatch",
    "ScenarioOutcome",
    "Catalog",
    "Query",
    "col",
    "const",
    "execute",
    "parse_sql",
    "to_provenance_set",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "collect_degradations",
    "fault_plan",
    "fault_point",
    "install_plan",
    "__version__",
]
