"""Resilience: deterministic fault injection, retry policy, degradation
events.

This package is a *base* layer (like :mod:`repro.obs`): it imports
nothing from the rest of :mod:`repro` at module level, so the store,
evaluator and backends can all arm :func:`fault_point` sites and route
retries through :class:`RetryPolicy` without layering cycles.

Importing the package arms any plan named by the ``COBRA_FAULTS``
environment variable, so chaos CI jobs need no code changes to inject.
"""

from __future__ import annotations

from repro.resilience.events import collect_degradations, record_degradation
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedCorruption,
    InjectedFault,
    InjectedIOError,
    InjectedWorkerError,
    KNOWN_SITES,
    active_plan,
    active_plan_spec,
    arm_from_env,
    clear_plan,
    fault_plan,
    fault_point,
    install_plan,
    plan_from_env,
    plan_from_spec,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RETRY_ENV_VAR,
    RetryError,
    RetryPolicy,
    policy_from_env,
    policy_from_spec,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "RETRY_ENV_VAR",
    "KNOWN_SITES",
    "DEFAULT_RETRY_POLICY",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCorruption",
    "InjectedFault",
    "InjectedIOError",
    "InjectedWorkerError",
    "RetryError",
    "RetryPolicy",
    "active_plan",
    "active_plan_spec",
    "arm_from_env",
    "clear_plan",
    "collect_degradations",
    "fault_plan",
    "fault_point",
    "install_plan",
    "plan_from_env",
    "plan_from_spec",
    "policy_from_env",
    "policy_from_spec",
    "record_degradation",
]

# Arm the environment-specified plan (noop when COBRA_FAULTS is unset) so
# chaos jobs and pool workers inject without code changes.
arm_from_env()
