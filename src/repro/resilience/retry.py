"""Retry policy: bounded attempts, exponential backoff, seeded jitter.

All retry behaviour in the codebase routes through :class:`RetryPolicy`
(cobralint rule CL007 forbids ad-hoc ``try/except``-retry loops and bare
``time.sleep`` calls in loops elsewhere).  The policy is deliberately
small: ``attempts`` bounds the loop, backoff grows ``base * factor**n``
capped at ``max_backoff``, and jitter is drawn from a seeded stream so a
chaos run retries on the same schedule every time.

``shard_timeout`` is not used by :meth:`run` — it is the per-shard
wall-clock deadline the batch evaluator applies to pool futures, carried
here so one object describes the whole retry posture of an evaluation.

``COBRA_RETRY`` (JSON object, e.g. ``{"attempts": 4, "backoff": 0.05}``)
overrides the defaults process-wide via :func:`policy_from_env`.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple, TypeVar

from repro.exceptions import CobraError

T = TypeVar("T")

#: Environment variable holding RetryPolicy overrides as a JSON object.
RETRY_ENV_VAR = "COBRA_RETRY"


class RetryError(CobraError):
    """Raised when a retry policy is misconfigured."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    ``attempts`` counts total tries (1 = no retries).  Backoff before
    retry *n* (1-based) is ``backoff * factor**(n-1)`` capped at
    ``max_backoff``, plus uniform jitter in ``[0, jitter]`` drawn from a
    stream seeded with ``seed`` — deterministic schedules keep chaos
    tests reproducible.  ``shard_timeout`` is the per-shard future
    deadline (seconds; ``None`` = wait forever) the evaluator enforces.
    """

    attempts: int = 3
    backoff: float = 0.01
    factor: float = 2.0
    max_backoff: float = 0.25
    jitter: float = 0.005
    shard_timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise RetryError("attempts must be at least 1")
        if self.backoff < 0 or self.max_backoff < 0 or self.jitter < 0:
            raise RetryError("backoff, max_backoff and jitter must be >= 0")
        if self.factor < 1.0:
            raise RetryError("factor must be >= 1.0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise RetryError("shard_timeout must be positive (or None)")

    def delays(self) -> Tuple[float, ...]:
        """The backoff delay before each retry (``attempts - 1`` values)."""
        rng = random.Random(self.seed)
        out = []
        for retry in range(self.attempts - 1):
            base = min(self.backoff * self.factor**retry, self.max_backoff)
            out.append(base + (rng.uniform(0.0, self.jitter) if self.jitter else 0.0))
        return tuple(out)

    def run(
        self,
        func: Callable[[], T],
        *,
        retryable: Tuple[type, ...],
        give_up: Tuple[type, ...] = (),
        site: str = "call",
        sleep: Callable[[float], None] = time.sleep,
    ) -> T:
        """Call ``func`` under this policy; its result.

        Exceptions matching ``give_up`` (checked first) and anything not
        in ``retryable`` propagate immediately.  Each retry bumps the
        ``resilience.retries`` counter (and a per-site one); the final
        failure re-raises the last exception.
        """
        delays = self.delays()
        for attempt in range(self.attempts):
            try:
                return func()
            except give_up:
                raise
            except retryable as exc:
                if attempt + 1 >= self.attempts:
                    raise
                from repro.obs.metrics import get_registry

                registry = get_registry()
                registry.inc("resilience.retries")
                registry.inc(f"resilience.retries.{site}")
                from repro.resilience.events import record_degradation

                record_degradation(
                    f"{site} attempt {attempt + 1}/{self.attempts} failed "
                    f"({type(exc).__name__}: {exc}); retrying"
                )
                if delays[attempt] > 0:
                    sleep(delays[attempt])
        raise AssertionError("unreachable: run() returns or re-raises")

    def to_dict(self) -> dict:
        """A JSON-serialisable form (round-trips via :func:`policy_from_spec`)."""
        return {
            "attempts": self.attempts,
            "backoff": self.backoff,
            "factor": self.factor,
            "max_backoff": self.max_backoff,
            "jitter": self.jitter,
            "shard_timeout": self.shard_timeout,
            "seed": self.seed,
        }


#: The policy used when a caller does not supply one and the environment
#: does not override it.
DEFAULT_RETRY_POLICY = RetryPolicy()

_FIELD_TYPES: Mapping[str, Callable[[Any], Any]] = {
    "attempts": int,
    "backoff": float,
    "factor": float,
    "max_backoff": float,
    "jitter": float,
    "shard_timeout": lambda v: None if v is None else float(v),
    "seed": int,
}


def policy_from_spec(spec: Mapping[str, Any]) -> RetryPolicy:
    """A :class:`RetryPolicy` from a (possibly partial) JSON object."""
    unknown = set(spec) - set(_FIELD_TYPES)
    if unknown:
        raise RetryError("unknown retry-policy keys: " + ", ".join(sorted(unknown)))
    kwargs = {name: _FIELD_TYPES[name](value) for name, value in spec.items()}
    return RetryPolicy(**kwargs)


def policy_from_env(environ: Optional[Mapping[str, str]] = None) -> RetryPolicy:
    """The default policy, with ``COBRA_RETRY`` JSON overrides applied."""
    env = os.environ if environ is None else environ
    raw = env.get(RETRY_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_RETRY_POLICY
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise RetryError(f"{RETRY_ENV_VAR} holds invalid JSON: {exc}") from exc
    if not isinstance(spec, Mapping):
        raise RetryError(f"{RETRY_ENV_VAR} must hold a JSON object")
    return policy_from_spec(spec)
