"""Degradation events: how a sweep reports that it succeeded *degraded*.

A resilience event (retry, timeout, salvage, quarantine, recompile) is a
human-readable sentence recorded via :func:`record_degradation`.  The
batch evaluator brackets each evaluation with
:func:`collect_degradations` and folds whatever was recorded into
``BatchReport.degradations``, so callers can distinguish a clean run
from one that recovered along the way.

Collectors nest: every active collector on the stack receives each
event, so an outer caller (e.g. a CLI sweep) sees the degradations of
every inner evaluation it drove.  The stack is thread-local — concurrent
evaluations on different threads do not see each other's events.  With
no collector active, :func:`record_degradation` only bumps the
``resilience.degradations`` counter.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List


class _CollectorStack(threading.local):
    """Thread-local stack of active degradation collectors."""

    def __init__(self) -> None:
        self.stack: List[List[str]] = []


_COLLECTORS = _CollectorStack()


def record_degradation(event: str) -> None:
    """Record one degradation event into every active collector."""
    from repro.obs.metrics import get_registry

    get_registry().inc("resilience.degradations")
    for sink in _COLLECTORS.stack:
        sink.append(event)


@contextmanager
def collect_degradations() -> Iterator[List[str]]:
    """Collect every degradation recorded inside the block.

    Yields the (initially empty) list events are appended to; read it
    after the block exits.
    """
    sink: List[str] = []
    _COLLECTORS.stack.append(sink)
    try:
        yield sink
    finally:
        _COLLECTORS.stack.remove(sink)
