"""Deterministic, seeded fault injection for chaos testing.

Production code is sprinkled with *named injection sites* — one
:func:`fault_point` call per failure surface (``store.open``,
``store.read_block``, ``batch.shard``, ``batch.compile``,
``pool.bringup``).  With no plan installed the call is a single global
read plus an ``is None`` check, the same disabled-is-a-noop discipline as
the tracer, so hot paths pay nothing.

A :class:`FaultPlan` arms sites with :class:`FaultSpec` triggers.  Firing
is fully deterministic: each site draws from its own
``random.Random(crc32(site) ^ seed)`` stream (the built-in ``hash`` is
randomised per process and must never be used for this), and hit-indexed
triggers (``times=(0, 2)``) fire on exact call ordinals.  The same plan
over the same code path therefore injects the same faults every run —
which is what lets the chaos suite assert bit-identical recovery.

Plans cross process boundaries as plain dicts (:meth:`FaultPlan.to_spec`
/ :func:`plan_from_spec`) because the live object holds a lock; pool
workers re-arm themselves from the spec shipped through initargs.  The
``COBRA_FAULTS`` environment variable (inline JSON or a path to a JSON
file) arms the process at import time via :func:`plan_from_env`.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import CobraError, SerializationError

#: The injection sites production code arms.  Plans may only name these —
#: a typo'd site would otherwise silently never fire.
KNOWN_SITES: Tuple[str, ...] = (
    "store.open",
    "store.read_block",
    "batch.shard",
    "batch.compile",
    "pool.bringup",
)

#: Environment variable holding a fault-plan spec (inline JSON or a path
#: to a JSON file).
FAULTS_ENV_VAR = "COBRA_FAULTS"


class FaultPlanError(CobraError):
    """Raised when a fault-plan spec is malformed."""


class InjectedFault(Exception):
    """Mix-in marking an exception as deliberately injected.

    Kept out of the :class:`~repro.exceptions.CobraError` hierarchy on
    purpose: injected faults must look exactly like the real failure they
    model, so each concrete type below multiple-inherits from the real
    exception class production code already catches.
    """


class InjectedIOError(InjectedFault, OSError):
    """An injected I/O failure (models a flaky read/open)."""


class InjectedCorruption(InjectedFault, SerializationError):
    """An injected store-corruption failure (models a bad checksum)."""


class InjectedWorkerError(InjectedFault, RuntimeError):
    """An injected in-worker crash (models a genuine worker bug)."""


_KIND_EXCEPTIONS: Dict[str, type] = {
    "io": InjectedIOError,
    "corruption": InjectedCorruption,
    "worker": InjectedWorkerError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One armed trigger at one site.

    ``kind`` selects the failure mode: ``"io"`` raises
    :class:`InjectedIOError`, ``"corruption"`` raises
    :class:`InjectedCorruption`, ``"worker"`` raises
    :class:`InjectedWorkerError`, and ``"stall"`` sleeps ``seconds`` (to
    trip shard deadlines) instead of raising.

    ``times`` fires on exact zero-based call ordinals at the site;
    ``rate`` fires probabilistically from the site's seeded stream.  At
    least one must be set.  ``max_fires`` bounds total firings so retry
    loops provably converge under injection.
    """

    site: str
    kind: str = "io"
    times: Tuple[int, ...] = ()
    rate: float = 0.0
    max_fires: int = 1
    seconds: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: "
                + ", ".join(KNOWN_SITES)
            )
        if self.kind not in _KIND_EXCEPTIONS and self.kind != "stall":
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                + ", ".join((*_KIND_EXCEPTIONS, "stall"))
            )
        if not self.times and self.rate <= 0.0:
            raise FaultPlanError(
                f"fault at {self.site!r} arms neither `times` nor `rate`"
            )
        if self.max_fires < 1:
            raise FaultPlanError("max_fires must be at least 1")

    def to_dict(self) -> Dict[str, Any]:
        """The picklable/JSON form :func:`plan_from_spec` accepts back."""
        return {
            "site": self.site,
            "kind": self.kind,
            "times": list(self.times),
            "rate": self.rate,
            "max_fires": self.max_fires,
            "seconds": self.seconds,
            "message": self.message,
        }

    def build_exception(self) -> BaseException:
        """The exception instance this spec injects when it fires."""
        text = self.message or f"injected {self.kind} fault at {self.site}"
        return _KIND_EXCEPTIONS[self.kind](text)


@dataclass
class _SiteState:
    """Mutable per-site firing state inside a live plan."""

    specs: List[FaultSpec]
    rng: random.Random
    calls: int = 0
    fired: Dict[int, int] = field(default_factory=dict)


class FaultPlan:
    """A set of armed fault triggers, deterministic under ``seed``.

    Not picklable (it holds a lock); ship :meth:`to_spec` across process
    boundaries and rebuild with :func:`plan_from_spec`.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._sites: Dict[str, _SiteState] = {}
        for spec in specs:
            state = self._sites.get(spec.site)
            if state is None:
                state = _SiteState(
                    specs=[],
                    rng=random.Random(zlib.crc32(spec.site.encode("utf-8")) ^ self.seed),
                )
                self._sites[spec.site] = state
            state.specs.append(spec)

    # -- introspection -------------------------------------------------------

    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        """Every armed spec, in arming order."""
        return tuple(s for state in self._sites.values() for s in state.specs)

    def fire_counts(self) -> Dict[str, int]:
        """Total fires per site so far (for test assertions)."""
        with self._lock:
            return {
                site: sum(state.fired.values())
                for site, state in self._sites.items()
                if state.fired
            }

    def to_spec(self) -> Dict[str, Any]:
        """A plain-dict form safe to pickle into pool workers or dump as
        JSON for ``COBRA_FAULTS``."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    # -- the hot path --------------------------------------------------------

    def check(self, site: str) -> Optional[FaultSpec]:
        """Advance ``site``'s call counter; the spec that fires, if any.

        Stall specs are returned too — :func:`fault_point` performs the
        sleep so this stays side-effect-free for direct testing.
        """
        state = self._sites.get(site)
        if state is None:
            return None
        with self._lock:
            ordinal = state.calls
            state.calls += 1
            for index, spec in enumerate(state.specs):
                if state.fired.get(index, 0) >= spec.max_fires:
                    continue
                hit = ordinal in spec.times
                if not hit and spec.rate > 0.0:
                    hit = state.rng.random() < spec.rate
                if hit:
                    state.fired[index] = state.fired.get(index, 0) + 1
                    return spec
        return None

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"


#: The installed plan; ``None`` means every fault_point is a noop check.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` disarms everything)."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def clear_plan() -> None:
    """Disarm fault injection for this process."""
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE_PLAN


def active_plan_spec() -> Optional[Dict[str, Any]]:
    """The installed plan as a picklable spec, for shipping to workers."""
    plan = _ACTIVE_PLAN
    return None if plan is None else plan.to_spec()


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    previous = _ACTIVE_PLAN
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def fault_point(site: str, **context: Any) -> None:
    """Declare a named injection site.

    With no plan installed this is one global load and an ``is None``
    test.  With a plan armed at ``site``, raises the injected exception
    (or sleeps, for ``stall`` specs) when a trigger fires; the fire is
    counted under ``resilience.injected_faults`` so chaos runs can assert
    their faults actually happened.  ``context`` is recorded on the
    injected exception as ``fault_context`` for debugging.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    spec = plan.check(site)
    if spec is None:
        return
    from repro.obs.metrics import get_registry

    get_registry().inc(f"resilience.injected_faults.{site}")
    if spec.kind == "stall":
        time.sleep(spec.seconds)
        return
    exc = spec.build_exception()
    exc.fault_context = dict(context)  # type: ignore[attr-defined]
    raise exc


# -- spec parsing ------------------------------------------------------------


def plan_from_spec(spec: Mapping[str, Any]) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from :meth:`FaultPlan.to_spec` output
    (or hand-written JSON of the same shape)."""
    if not isinstance(spec, Mapping):
        raise FaultPlanError("fault-plan spec must be a JSON object")
    raw_faults = spec.get("faults")
    if not isinstance(raw_faults, Sequence) or isinstance(raw_faults, (str, bytes)):
        raise FaultPlanError("fault-plan spec needs a `faults` array")
    specs: List[FaultSpec] = []
    for entry in raw_faults:
        if not isinstance(entry, Mapping):
            raise FaultPlanError("each fault entry must be a JSON object")
        unknown = set(entry) - {
            "site", "kind", "times", "rate", "max_fires", "seconds", "message",
        }
        if unknown:
            raise FaultPlanError(
                "unknown fault entry keys: " + ", ".join(sorted(unknown))
            )
        if "site" not in entry:
            raise FaultPlanError("fault entry is missing `site`")
        specs.append(
            FaultSpec(
                site=str(entry["site"]),
                kind=str(entry.get("kind", "io")),
                times=tuple(int(t) for t in entry.get("times", ())),
                rate=float(entry.get("rate", 0.0)),
                max_fires=int(entry.get("max_fires", 1)),
                seconds=float(entry.get("seconds", 0.0)),
                message=str(entry.get("message", "")),
            )
        )
    return FaultPlan(specs, seed=int(spec.get("seed", 0)))


def plan_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The plan armed by ``COBRA_FAULTS``, if the variable is set.

    The value is inline JSON (starts with ``{``) or a path to a JSON
    file.  Returns ``None`` when unset or blank.
    """
    env = os.environ if environ is None else environ
    raw = env.get(FAULTS_ENV_VAR, "").strip()
    if not raw:
        return None
    if not raw.startswith("{"):
        try:
            with open(raw, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise FaultPlanError(
                f"{FAULTS_ENV_VAR} names an unreadable file: {exc}"
            ) from exc
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"{FAULTS_ENV_VAR} holds invalid JSON: {exc}") from exc
    return plan_from_spec(spec)


def arm_from_env() -> Optional[FaultPlan]:
    """Install the ``COBRA_FAULTS`` plan (noop when unset); the plan."""
    plan = plan_from_env()
    if plan is not None:
        install_plan(plan)
    return plan
