"""Small shared utilities: timing helpers and summary statistics."""

from repro.utils.timing import Timer, time_callable, measure_speedup
from repro.utils.stats import (
    mean,
    median,
    percentile,
    stddev,
    summarize,
    Summary,
)

__all__ = [
    "Timer",
    "time_callable",
    "measure_speedup",
    "mean",
    "median",
    "percentile",
    "stddev",
    "summarize",
    "Summary",
]
