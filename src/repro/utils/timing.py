"""Timing helpers used to measure assignment time and speedup.

The demo paper reports the *assignment speedup*: how much faster it is to
evaluate the compressed provenance under a valuation compared with the full
provenance.  These helpers centralise the measurement so the engine, the
benchmarks and the CLI all compute it the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


class Timer:
    """A context-manager stopwatch based on :func:`time.perf_counter`.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


def time_callable(
    func: Callable[[], T], repeats: int = 3
) -> Tuple[T, float]:
    """Run ``func`` ``repeats`` times and return ``(result, best_seconds)``.

    The best (minimum) wall-clock time over the repeats is returned, which is
    the conventional way to reduce noise for short-running callables.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result: T = None  # type: ignore[assignment]
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best


@dataclass(frozen=True)
class SpeedupMeasurement:
    """Outcome of comparing a baseline callable against an optimised one.

    Attributes
    ----------
    baseline_seconds:
        Best wall-clock time of the baseline callable.
    optimized_seconds:
        Best wall-clock time of the optimised callable.
    speedup_fraction:
        ``1 - optimized/baseline`` — the quantity the paper reports as
        "assignment speedup" (e.g. ``0.47`` for a 47% speedup).
    speedup_ratio:
        ``baseline/optimized`` — the multiplicative speedup.
    """

    baseline_seconds: float
    optimized_seconds: float

    @property
    def speedup_fraction(self) -> float:
        if self.baseline_seconds <= 0.0:
            return 0.0
        return 1.0 - (self.optimized_seconds / self.baseline_seconds)

    @property
    def speedup_ratio(self) -> float:
        if self.optimized_seconds <= 0.0:
            return float("inf")
        return self.baseline_seconds / self.optimized_seconds


def measure_speedup(
    baseline: Callable[[], object],
    optimized: Callable[[], object],
    repeats: int = 3,
) -> SpeedupMeasurement:
    """Measure the wall-clock speedup of ``optimized`` relative to ``baseline``."""
    _, baseline_seconds = time_callable(baseline, repeats=repeats)
    _, optimized_seconds = time_callable(optimized, repeats=repeats)
    return SpeedupMeasurement(
        baseline_seconds=baseline_seconds, optimized_seconds=optimized_seconds
    )
