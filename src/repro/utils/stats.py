"""Summary statistics used by benchmark reporting.

Kept dependency-light on purpose: only the standard library is required so
these helpers can be reused from the CLI without importing numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def _as_sorted_list(values: Iterable[float]) -> List[float]:
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarise an empty sequence")
    return data


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of ``values`` (must be non-empty)."""
    data = list(values)
    if not data:
        raise ValueError("cannot take the mean of an empty sequence")
    return sum(float(v) for v in data) / len(data)


def median(values: Iterable[float]) -> float:
    """Median of ``values`` (must be non-empty)."""
    data = _as_sorted_list(values)
    n = len(data)
    mid = n // 2
    if n % 2 == 1:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation percentile ``q`` in ``[0, 100]`` of ``values``."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be between 0 and 100")
    data = _as_sorted_list(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return data[int(rank)]
    weight = rank - lower
    return data[lower] * (1.0 - weight) + data[upper] * weight


def stddev(values: Iterable[float]) -> float:
    """Population standard deviation of ``values`` (must be non-empty)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot take the stddev of an empty sequence")
    mu = mean(data)
    return math.sqrt(sum((v - mu) ** 2 for v in data) / len(data))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of measurements."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    p95: float
    stddev: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (for JSON output)."""
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "stddev": self.stddev,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` from a non-empty sequence of measurements."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarise an empty sequence")
    return Summary(
        count=len(data),
        minimum=min(data),
        maximum=max(data),
        mean=mean(data),
        median=median(data),
        p95=percentile(data, 95.0),
        stddev=stddev(data),
    )
