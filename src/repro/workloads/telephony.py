"""The telephony running example (Figure 1 and Section 4 of the paper).

Three entry points matter:

* :func:`figure1_catalog` — the exact micro-instance printed in Figure 1
  (7 customers, 2 zip codes, months 1 and 3).  Feeding it through the
  provenance-aware engine reproduces the polynomials P1 and P2 of Example 2
  verbatim (asserted by the integration tests).
* :func:`build_revenue_provenance` — instruments a telephony catalog
  (parameterising every plan price by its plan variable and month variable)
  and evaluates the revenue-per-zip query, returning the provenance set.
* :func:`generate_revenue_provenance` — the scalable analytic generator used
  for the Section 4 instance: it produces a provenance set with exactly
  ``num_zips × |plans| × |months|`` monomials (139,260 with the paper's
  parameters: 1,055 zip codes, 11 plans, 12 months) without materialising
  millions of call rows through the relational engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.variables import VariableRegistry
from repro.db.annotations import CellParameterizationPolicy
from repro.db.catalog import Catalog
from repro.db.executor import execute, to_provenance_set
from repro.db.expressions import col
from repro.db.query import Query
from repro.db.schema import ColumnType, Schema
from repro.db.table import Table
from repro.workloads.abstraction_trees import PLAN_VARIABLES

#: Base price-per-minute of every plan (month-1 values of Figure 1, extended
#: with plausible prices for the plans Figure 1 does not list).
BASE_PLAN_PRICES: Dict[str, float] = {
    "A": 0.40,
    "B": 0.45,
    "F1": 0.35,
    "F2": 0.32,
    "Y1": 0.30,
    "Y2": 0.28,
    "Y3": 0.26,
    "V": 0.25,
    "SB1": 0.10,
    "SB2": 0.10,
    "E": 0.05,
}


@dataclass(frozen=True)
class TelephonyConfig:
    """Parameters of the scalable telephony instance.

    The defaults reproduce the Section 4 instance *structurally*: 1,055 zip
    codes × 11 plans × 12 months = 139,260 provenance monomials.  The
    ``num_customers`` default is kept modest because the provenance size does
    not depend on it (only the coefficients do); pass ``1_000_000`` to match
    the paper's raw data volume.
    """

    num_customers: int = 50_000
    num_zips: int = 1_055
    months: Tuple[int, ...] = tuple(range(1, 13))
    plans: Tuple[str, ...] = tuple(PLAN_VARIABLES.keys())
    min_duration: int = 30
    max_duration: int = 1_200
    seed: int = 7

    def expected_provenance_size(self) -> int:
        """The number of monomials the generator produces (zips × plans × months)."""
        return self.num_zips * len(self.plans) * len(self.months)


# ---------------------------------------------------------------------------
# The exact Figure 1 instance
# ---------------------------------------------------------------------------

_FIGURE1_CUSTOMERS = [
    (1, "A", "10001"),
    (2, "F1", "10001"),
    (3, "SB1", "10002"),
    (4, "Y1", "10001"),
    (5, "V", "10001"),
    (6, "E", "10002"),
    (7, "SB2", "10002"),
]

_FIGURE1_CALLS = [
    (1, 1, 522), (2, 1, 364), (3, 1, 779), (4, 1, 253),
    (5, 1, 168), (6, 1, 1044), (7, 1, 697),
    (1, 3, 480), (2, 3, 327), (3, 3, 805), (4, 3, 290),
    (5, 3, 121), (6, 3, 1130), (7, 3, 671),
]

_FIGURE1_PLANS = [
    ("A", 1, 0.40), ("F1", 1, 0.35), ("Y1", 1, 0.30), ("V", 1, 0.25),
    ("SB1", 1, 0.10), ("SB2", 1, 0.10), ("E", 1, 0.05),
    ("A", 3, 0.50), ("F1", 3, 0.35), ("Y1", 3, 0.25), ("V", 3, 0.20),
    ("SB1", 3, 0.10), ("SB2", 3, 0.15), ("E", 3, 0.05),
]


def _telephony_schemas() -> Tuple[Schema, Schema, Schema]:
    cust = Schema.of(
        ("ID", ColumnType.INTEGER),
        ("Plan", ColumnType.STRING),
        ("Zip", ColumnType.STRING),
    )
    calls = Schema.of(
        ("CID", ColumnType.INTEGER),
        ("Mo", ColumnType.INTEGER),
        ("Dur", ColumnType.FLOAT),
    )
    plans = Schema.of(
        ("Plan", ColumnType.STRING),
        ("Mo", ColumnType.INTEGER),
        ("Price", ColumnType.SYMBOLIC),
    )
    return cust, calls, plans


def figure1_catalog() -> Catalog:
    """The exact example database of Figure 1 (7 customers, months 1 and 3)."""
    cust_schema, calls_schema, plans_schema = _telephony_schemas()
    catalog = Catalog()
    catalog.add(Table("Cust", cust_schema, _FIGURE1_CUSTOMERS))
    catalog.add(Table("Calls", calls_schema, _FIGURE1_CALLS))
    catalog.add(Table("Plans", plans_schema, _FIGURE1_PLANS))
    return catalog


# ---------------------------------------------------------------------------
# Scalable catalog generation (goes through the relational engine)
# ---------------------------------------------------------------------------


def _month_price(plan: str, month: int, rng: np.random.Generator) -> float:
    """A plausible month-specific price: the base price times a ±10% wiggle."""
    base = BASE_PLAN_PRICES.get(plan, 0.2)
    wiggle = 0.9 + 0.2 * rng.random()
    return round(base * wiggle, 4)


def generate_telephony_catalog(config: TelephonyConfig) -> Catalog:
    """Generate Cust/Calls/Plans tables for ``config``.

    Customer → (zip, plan) assignment covers every combination at least once
    when there are enough customers, so the provenance of the revenue query
    has the full ``zips × plans × months`` monomial count.  Intended for
    small/medium instances — for the Section 4 scale use
    :func:`generate_revenue_provenance`, which skips row materialisation.
    """
    rng = np.random.default_rng(config.seed)
    cust_schema, calls_schema, plans_schema = _telephony_schemas()

    num_plans = len(config.plans)
    zips = [f"{10001 + i}" for i in range(config.num_zips)]

    cust_rows: List[Tuple[int, str, str]] = []
    for customer_id in range(1, config.num_customers + 1):
        slot = customer_id - 1
        if slot < config.num_zips * num_plans:
            zip_index = slot // num_plans
            plan_index = slot % num_plans
        else:
            zip_index = int(rng.integers(0, config.num_zips))
            plan_index = int(rng.integers(0, num_plans))
        cust_rows.append(
            (customer_id, config.plans[plan_index], zips[zip_index])
        )

    calls_rows: List[Tuple[int, int, float]] = []
    for customer_id in range(1, config.num_customers + 1):
        for month in config.months:
            duration = float(
                rng.integers(config.min_duration, config.max_duration + 1)
            )
            calls_rows.append((customer_id, month, duration))

    plans_rows: List[Tuple[str, int, float]] = []
    price_rng = np.random.default_rng(config.seed + 1)
    for plan in config.plans:
        for month in config.months:
            plans_rows.append((plan, month, _month_price(plan, month, price_rng)))

    catalog = Catalog()
    catalog.add(Table("Cust", cust_schema, cust_rows))
    catalog.add(Table("Calls", calls_schema, calls_rows))
    catalog.add(Table("Plans", plans_schema, plans_rows))
    return catalog


# ---------------------------------------------------------------------------
# The revenue query and its provenance
# ---------------------------------------------------------------------------


def revenue_query_sql() -> str:
    """The running-example query, verbatim from the paper (Section 2)."""
    return (
        "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue "
        "FROM Calls, Cust, Plans "
        "WHERE Cust.Plan = Plans.Plan "
        "AND Cust.ID = Calls.CID "
        "AND Calls.Mo = Plans.Mo "
        "GROUP BY Cust.Zip"
    )


def revenue_query() -> Query:
    """The running-example query built with the fluent query API."""
    return (
        Query.scan("Calls")
        .join(Query.scan("Cust"), on=[("CID", "ID")])
        .join(Query.scan("Plans"), on=[("Plan", "Plan"), ("Mo", "Mo")])
        .groupby(["Zip"], aggregates=[("revenue", "sum", col("Dur") * col("Price"))])
    )


def build_revenue_provenance(
    catalog: Catalog,
    plan_variables: Mapping[str, str] = PLAN_VARIABLES,
    registry: Optional[VariableRegistry] = None,
) -> ProvenanceSet:
    """Instrument ``catalog`` and evaluate the revenue query with provenance.

    Every plan price is parameterised multiplicatively by its plan variable
    (``p1`` for plan A, ``f1`` for F1, ...) and its month variable (``m1``,
    ``m3``, ...), exactly as in Example 2; the result is one provenance
    polynomial per zip code.
    """
    registry = registry or VariableRegistry()

    def price_namer(row: Mapping[str, object]) -> Tuple[str, str]:
        plan = str(row["Plan"])
        month = int(row["Mo"])  # type: ignore[arg-type]
        plan_variable = plan_variables.get(plan)
        if plan_variable is None:
            plan_variable = "plan_" + plan.lower()
        return (plan_variable, f"m{month}")

    policy = CellParameterizationPolicy(
        column="Price", namer=price_namer, registry=registry
    )
    instrumented_plans = policy.apply(catalog.get("Plans"))

    instrumented = Catalog()
    instrumented.add(catalog.get("Cust"))
    instrumented.add(catalog.get("Calls"))
    instrumented.add(instrumented_plans)

    relation = execute(revenue_query(), instrumented)
    return to_provenance_set(relation, ["Zip"], "revenue")


def example2_provenance() -> ProvenanceSet:
    """The provenance of Example 2 (polynomials P1 and P2), computed end to end."""
    return build_revenue_provenance(figure1_catalog())


def telephony_scenario_sweep(
    count: int,
    months: Sequence[int] = tuple(range(1, 13)),
    plans: Sequence[str] = tuple(PLAN_VARIABLES.keys()),
) -> List["Scenario"]:
    """A deterministic sweep of ``count`` what-if scenarios over the workload.

    The sweep cycles through the three shapes of Example 1 hypotheticals —
    month-wide discounts ("all prices -20% in March"), plan-price changes
    ("business plans +10%") and combined month+plan changes — over a grid of
    scale factors, so a batch of any size exercises scenarios that are both
    group-uniform (answered exactly from the compressed provenance) and finer
    than the abstraction.
    """
    from repro.engine.scenario import Scenario

    if count > 0 and (not months or not plans):
        raise ValueError("a non-empty sweep needs at least one month and one plan")
    factors = (0.75, 0.8, 0.85, 0.9, 0.95, 1.05, 1.1, 1.15, 1.2, 1.25)
    month_names = [f"m{month}" for month in months]
    plan_names = [PLAN_VARIABLES.get(p, "plan_" + p.lower()) for p in plans]
    scenarios: List[Scenario] = []
    for i in range(count):
        factor = factors[i % len(factors)]
        shape = i % 3
        if shape == 0:
            month = month_names[(i // 3) % len(month_names)]
            scenarios.append(
                Scenario(f"#{i} {month} x{factor:g}").scale([month], factor)
            )
        elif shape == 1:
            plan = plan_names[(i // 3) % len(plan_names)]
            scenarios.append(
                Scenario(f"#{i} {plan} x{factor:g}").scale([plan], factor)
            )
        else:
            month = month_names[(i // 3) % len(month_names)]
            plan = plan_names[(i // 7) % len(plan_names)]
            scenarios.append(
                Scenario(f"#{i} {plan},{month} x{factor:g}").scale(
                    [plan, month], factor
                )
            )
    return scenarios


# ---------------------------------------------------------------------------
# The scalable analytic generator (Section 4 instance)
# ---------------------------------------------------------------------------


def generate_revenue_provenance(
    config: TelephonyConfig = TelephonyConfig(),
) -> ProvenanceSet:
    """Directly generate the revenue provenance for a large telephony instance.

    The monomial structure (one monomial per ``(zip, plan, month)`` with the
    plan and month variables) is identical to what
    :func:`build_revenue_provenance` produces on the corresponding catalog;
    only the per-customer call rows are skipped — durations are drawn and
    aggregated with numpy, so million-customer instances are generated in
    seconds.  With the default configuration the result has exactly 139,260
    monomials, matching Section 4 of the paper.
    """
    rng = np.random.default_rng(config.seed)
    num_plans = len(config.plans)
    num_zips = config.num_zips
    num_cells = num_zips * num_plans

    # Customer → (zip, plan): cover every combination first, then uniform.
    customers = config.num_customers
    slots = np.arange(customers, dtype=np.int64)
    zip_index = np.empty(customers, dtype=np.int64)
    plan_index = np.empty(customers, dtype=np.int64)
    covered = min(customers, num_cells)
    zip_index[:covered] = slots[:covered] // num_plans
    plan_index[:covered] = slots[:covered] % num_plans
    if customers > num_cells:
        zip_index[covered:] = rng.integers(0, num_zips, size=customers - covered)
        plan_index[covered:] = rng.integers(0, num_plans, size=customers - covered)
    cell_index = zip_index * num_plans + plan_index

    # Month-specific prices.
    price_rng = np.random.default_rng(config.seed + 1)
    prices = np.empty((num_plans, len(config.months)), dtype=np.float64)
    for plan_position, plan in enumerate(config.plans):
        for month_position, month in enumerate(config.months):
            prices[plan_position, month_position] = _month_price(
                plan, month, price_rng
            )

    # Aggregate call durations per (zip, plan) cell and month.
    totals = np.empty((num_cells, len(config.months)), dtype=np.float64)
    for month_position, _month in enumerate(config.months):
        durations = rng.integers(
            config.min_duration, config.max_duration + 1, size=customers
        ).astype(np.float64)
        totals[:, month_position] = np.bincount(
            cell_index, weights=durations, minlength=num_cells
        )

    plan_variable_names = [
        PLAN_VARIABLES.get(plan, "plan_" + plan.lower()) for plan in config.plans
    ]
    month_variable_names = [f"m{month}" for month in config.months]

    provenance = ProvenanceSet()
    for zip_position in range(num_zips):
        terms: Dict[Monomial, float] = {}
        for plan_position in range(num_plans):
            cell = zip_position * num_plans + plan_position
            for month_position in range(len(config.months)):
                duration_total = totals[cell, month_position]
                if duration_total <= 0.0:
                    continue
                coefficient = duration_total * prices[plan_position, month_position]
                monomial = Monomial(
                    {
                        plan_variable_names[plan_position]: 1,
                        month_variable_names[month_position]: 1,
                    }
                )
                terms[monomial] = terms.get(monomial, 0.0) + coefficient
        provenance[(f"{10001 + zip_position}",)] = Polynomial(terms)
    return provenance
