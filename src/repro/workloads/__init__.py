"""Workloads: the paper's demonstration datasets and synthetic generators.

* :mod:`repro.workloads.telephony` — the telephony running example
  (Figure 1): the exact micro-instance of the paper plus a scalable
  generator reproducing the Section 4 instance (1,055 zip codes, 11 plans,
  12 months — 139,260 monomials of provenance);
* :mod:`repro.workloads.abstraction_trees` — the predefined abstraction
  trees used in the demo (the plans tree of Figure 2, the month/quarter
  tree, TPC-H region/nation and segment trees);
* :mod:`repro.workloads.tpch` / :mod:`repro.workloads.tpch_queries` —
  a TPC-H-style synthetic database and provenance-parameterised versions of
  a subset of its queries;
* :mod:`repro.workloads.routing` — min-cost call routing on the telephony
  network: the tropical backend's workload (route monomials over shared
  trunk variables, coefficients as fixed access costs);
* :mod:`repro.workloads.random_polynomials` — random provenance and random
  abstraction trees for stress and property-based testing.
"""

from repro.workloads.telephony import (
    TelephonyConfig,
    figure1_catalog,
    generate_telephony_catalog,
    revenue_query_sql,
    revenue_query,
    build_revenue_provenance,
    generate_revenue_provenance,
    example2_provenance,
)
from repro.workloads.abstraction_trees import (
    plans_tree,
    months_tree,
    region_nation_tree,
    market_segment_tree,
)
from repro.workloads.tpch import TpchConfig, generate_tpch_catalog
from repro.workloads.tpch_queries import (
    TpchProvenance,
    q1_pricing_summary,
    q3_segment_revenue,
    q5_local_supplier_volume,
    q6_forecast_revenue,
    q10_returned_items,
    all_tpch_queries,
    customer_nation_tree,
    tpch_deletion_provenance,
    tpch_deletion_scenarios,
)
from repro.workloads.routing import (
    RoutingConfig,
    generate_routing_provenance,
    routing_base_costs,
    routing_scenario_sweep,
    trunk_group_tree,
)
from repro.workloads.random_polynomials import (
    random_provenance,
    random_tree,
    random_single_tree_instance,
)

__all__ = [
    "TelephonyConfig",
    "figure1_catalog",
    "generate_telephony_catalog",
    "revenue_query_sql",
    "revenue_query",
    "build_revenue_provenance",
    "generate_revenue_provenance",
    "example2_provenance",
    "plans_tree",
    "months_tree",
    "region_nation_tree",
    "market_segment_tree",
    "TpchConfig",
    "generate_tpch_catalog",
    "TpchProvenance",
    "q1_pricing_summary",
    "q3_segment_revenue",
    "q5_local_supplier_volume",
    "q6_forecast_revenue",
    "q10_returned_items",
    "all_tpch_queries",
    "customer_nation_tree",
    "tpch_deletion_provenance",
    "tpch_deletion_scenarios",
    "RoutingConfig",
    "generate_routing_provenance",
    "routing_base_costs",
    "routing_scenario_sweep",
    "trunk_group_tree",
    "random_provenance",
    "random_tree",
    "random_single_tree_instance",
]
