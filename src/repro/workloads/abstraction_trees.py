"""The predefined abstraction trees used by the demonstration.

The demo "uses predefined trees for each one of the datasets"; these are
them:

* :func:`plans_tree` — the plans tree of Figure 2 (Standard / Special /
  Business, with the family, youth and small-business sub-groups);
* :func:`months_tree` — the quarter tree of Section 4 (``q1`` groups
  ``m1..m3`` and so on);
* :func:`region_nation_tree` — a TPC-H tree grouping nation variables under
  their region and all regions under the world;
* :func:`market_segment_tree` — a TPC-H tree grouping market-segment
  variables under consumer/corporate umbrellas.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.core.abstraction_tree import AbstractionTree

#: The plan → provenance-variable naming used throughout the running example
#: (Example 2 of the paper).
PLAN_VARIABLES: Dict[str, str] = {
    "A": "p1",
    "B": "p2",
    "F1": "f1",
    "F2": "f2",
    "Y1": "y1",
    "Y2": "y2",
    "Y3": "y3",
    "V": "v",
    "SB1": "b1",
    "SB2": "b2",
    "E": "e",
}


def plans_tree() -> AbstractionTree:
    """The abstraction tree of Figure 2 over the plan variables.

    ::

        Plans
        ├── Standard: p1, p2
        ├── Special
        │   ├── F: f1, f2
        │   ├── Y: y1, y2, y3
        │   └── v
        └── Business
            ├── SB: b1, b2
            └── e
    """
    return AbstractionTree(
        "Plans",
        {
            "Plans": ["Standard", "Special", "Business"],
            "Standard": ["p1", "p2"],
            "Special": ["F", "Y", "v"],
            "F": ["f1", "f2"],
            "Y": ["y1", "y2", "y3"],
            "Business": ["SB", "e"],
            "SB": ["b1", "b2"],
        },
    )


def months_tree(num_months: int = 12, root: str = "Year") -> AbstractionTree:
    """The quarter tree over month variables described in Section 4.

    Month variables ``m1 .. m<num_months>`` are grouped under quarter
    meta-variables ``q1 .. q<ceil(n/3)>``, which are children of ``root``.
    """
    if num_months < 1:
        raise ValueError("num_months must be positive")
    groups: Dict[str, Sequence[str]] = {}
    for month in range(1, num_months + 1):
        quarter = f"q{(month - 1) // 3 + 1}"
        groups.setdefault(quarter, []).append(f"m{month}")
    return AbstractionTree.from_groups(root, groups)


def region_nation_tree(
    nations_by_region: Mapping[str, Sequence[str]],
    root: str = "World",
    variable_prefix: str = "n_",
) -> AbstractionTree:
    """A TPC-H tree: nation variables grouped by region, regions under ``root``.

    ``nations_by_region`` maps a region name to its nation names; the leaf
    variables are ``<variable_prefix><nation>`` (lower-cased, spaces replaced
    by underscores) so they match the instrumentation of
    :mod:`repro.workloads.tpch_queries`.  Region names containing spaces
    (e.g. ``MIDDLE EAST``) become valid meta-variable names by replacing the
    spaces with underscores.
    """
    region_node = {region: region.replace(" ", "_") for region in nations_by_region}
    edges: Dict[str, Sequence[str]] = {root: [region_node[r] for r in nations_by_region]}
    for region, nations in nations_by_region.items():
        edges[region_node[region]] = [
            nation_variable(nation, variable_prefix) for nation in nations
        ]
    return AbstractionTree(root, edges)


def nation_variable(nation: str, prefix: str = "n_") -> str:
    """The provenance-variable name used for a TPC-H nation."""
    return prefix + nation.lower().replace(" ", "_")


def market_segment_tree(
    segments: Sequence[str] = (
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "HOUSEHOLD",
        "MACHINERY",
    ),
    root: str = "Segments",
) -> AbstractionTree:
    """A TPC-H tree grouping market-segment variables by customer type.

    Consumer-facing segments (automobile, furniture, household) and
    business-facing segments (building, machinery) form the two groups.
    """
    consumer = [s for s in segments if s in ("AUTOMOBILE", "FURNITURE", "HOUSEHOLD")]
    business = [s for s in segments if s not in consumer]
    edges: Dict[str, Sequence[str]] = {root: []}
    children = []
    if consumer:
        children.append("Consumer")
        edges["Consumer"] = [segment_variable(s) for s in consumer]
    if business:
        children.append("BusinessSegments")
        edges["BusinessSegments"] = [segment_variable(s) for s in business]
    edges[root] = children
    return AbstractionTree(root, edges)


def segment_variable(segment: str, prefix: str = "seg_") -> str:
    """The provenance-variable name used for a TPC-H market segment."""
    return prefix + segment.lower()
