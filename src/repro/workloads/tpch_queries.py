"""Provenance-parameterised versions of a subset of the TPC-H queries.

The demo "presents a subset of [TPC-H's] queries"; we reproduce five of the
business questions (Q1, Q3, Q5, Q6, Q10), each instrumented with provenance
variables suited to hypothetical reasoning and paired with the abstraction
tree(s) a meta-analyst would naturally use:

========  =======================================  ==========================
query     parameterisation                          recommended tree(s)
========  =======================================  ==========================
Q1        revenue scaled per ship month             months → quarters
Q3        customer segments + ship months           segment tree + month tree
Q5        supplier nations                          nations → regions → world
Q6        ship months (single forecast polynomial)  months → quarters
Q10       ship months, per customer nation          months → quarters
========  =======================================  ==========================

Every function returns a :class:`TpchProvenance` bundling the provenance
set, the recommended tree or forest and a human-readable description, ready
to be fed into a :class:`~repro.engine.session.CobraSession`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.variables import VariableRegistry
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.db.annotations import CellParameterizationPolicy, TupleAnnotationPolicy
from repro.db.catalog import Catalog
from repro.db.executor import execute, to_provenance_set
from repro.db.expressions import col, const
from repro.db.query import Query
from repro.workloads.abstraction_trees import (
    market_segment_tree,
    months_tree,
    nation_variable,
    region_nation_tree,
    segment_variable,
)
from repro.workloads.tpch import MARKET_SEGMENTS, NATIONS_BY_REGION

TreeOrForest = Union[AbstractionTree, AbstractionForest]


@dataclass(frozen=True)
class TpchProvenance:
    """A reproduced TPC-H query: its provenance and the recommended abstraction."""

    name: str
    description: str
    provenance: ProvenanceSet
    trees: TreeOrForest
    group_columns: Tuple[str, ...]


def _catalog_with(catalog: Catalog, replacement) -> Catalog:
    """A shallow copy of ``catalog`` with one table replaced."""
    result = Catalog()
    for table in catalog:
        if table.name == replacement.name:
            result.add(replacement)
        else:
            result.add(table)
    return result


def _month_parameterised_lineitem(catalog: Catalog) -> Catalog:
    """LINEITEM with L_EXTENDEDPRICE parameterised by the ship-month variable."""
    policy = CellParameterizationPolicy(
        column="L_EXTENDEDPRICE",
        namer=lambda row: f"m{int(row['L_SHIPMONTH'])}",
        registry=VariableRegistry(),
    )
    return _catalog_with(catalog, policy.apply(catalog.get("LINEITEM")))


# ---------------------------------------------------------------------------
# Q1 — pricing summary report
# ---------------------------------------------------------------------------


def q1_pricing_summary(catalog: Catalog) -> TpchProvenance:
    """Q1: revenue per (return flag, line status), parameterised by ship month.

    The hypothetical an analyst can ask: "what if prices shipped in month X
    had been k% higher?" — one variable per calendar month, naturally grouped
    into quarters by the month tree.
    """
    instrumented = _month_parameterised_lineitem(catalog)
    query = (
        Query.scan("LINEITEM")
        .filter(col("L_SHIPDATE") <= const("1998-09-02"))
        .groupby(
            ["L_RETURNFLAG", "L_LINESTATUS"],
            aggregates=[
                (
                    "revenue",
                    "sum",
                    col("L_EXTENDEDPRICE") * (const(1.0) - col("L_DISCOUNT")),
                )
            ],
        )
    )
    relation = execute(query, instrumented)
    provenance = to_provenance_set(
        relation, ["L_RETURNFLAG", "L_LINESTATUS"], "revenue"
    )
    return TpchProvenance(
        name="Q1",
        description="pricing summary: revenue per (returnflag, linestatus), "
        "ship-month parameterised",
        provenance=provenance,
        trees=months_tree(12),
        group_columns=("L_RETURNFLAG", "L_LINESTATUS"),
    )


# ---------------------------------------------------------------------------
# Q3 — shipping priority / segment revenue
# ---------------------------------------------------------------------------


def q3_segment_revenue(catalog: Catalog) -> TpchProvenance:
    """Q3 variant: revenue per order priority, parameterised by market segment and month.

    Customer tuples are annotated with their market-segment variable and
    lineitem prices by their ship-month variable, so each result group's
    polynomial has one monomial per (segment, month) pair — a two-tree
    (forest) abstraction problem.
    """
    instrumented = _month_parameterised_lineitem(catalog)
    segment_policy = TupleAnnotationPolicy(
        namer=lambda row: segment_variable(str(row["C_MKTSEGMENT"]))
    )
    providers = {
        "CUSTOMER": segment_policy.annotation_provider(catalog.get("CUSTOMER"))
    }
    query = (
        Query.scan("LINEITEM")
        .join(Query.scan("ORDERS"), on=[("L_ORDERKEY", "O_ORDERKEY")])
        .join(Query.scan("CUSTOMER"), on=[("O_CUSTKEY", "C_CUSTKEY")])
        .filter(col("O_ORDERDATE") < const("1998-01-01"))
        .groupby(
            ["O_ORDERPRIORITY"],
            aggregates=[
                (
                    "revenue",
                    "sum",
                    col("L_EXTENDEDPRICE") * (const(1.0) - col("L_DISCOUNT")),
                )
            ],
        )
    )
    relation = execute(query, instrumented, annotations=providers)
    provenance = to_provenance_set(relation, ["O_ORDERPRIORITY"], "revenue")
    forest = AbstractionForest([market_segment_tree(MARKET_SEGMENTS), months_tree(12)])
    return TpchProvenance(
        name="Q3",
        description="segment revenue per order priority, parameterised by "
        "market segment and ship month",
        provenance=provenance,
        trees=forest,
        group_columns=("O_ORDERPRIORITY",),
    )


# ---------------------------------------------------------------------------
# Q5 — local supplier volume
# ---------------------------------------------------------------------------


def q5_local_supplier_volume(catalog: Catalog) -> TpchProvenance:
    """Q5 variant: revenue per order year, parameterised by the supplier's nation.

    Supplier tuples are annotated with their nation variable (via the NATION
    join), so each year's polynomial has one monomial per nation; the
    region/nation tree abstracts 25 nations into 5 regions or the whole
    world.
    """
    nation_names = {row["N_NATIONKEY"]: row["N_NAME"] for row in catalog.get("NATION")}
    supplier_policy = TupleAnnotationPolicy(
        namer=lambda row: nation_variable(str(nation_names[row["S_NATIONKEY"]]))
    )
    providers = {
        "SUPPLIER": supplier_policy.annotation_provider(catalog.get("SUPPLIER"))
    }
    query = (
        Query.scan("LINEITEM")
        .join(Query.scan("ORDERS"), on=[("L_ORDERKEY", "O_ORDERKEY")])
        .join(Query.scan("SUPPLIER"), on=[("L_SUPPKEY", "S_SUPPKEY")])
        .groupby(
            ["O_ORDERYEAR"],
            aggregates=[
                (
                    "revenue",
                    "sum",
                    col("L_EXTENDEDPRICE") * (const(1.0) - col("L_DISCOUNT")),
                )
            ],
        )
    )
    relation = execute(query, catalog, annotations=providers)
    provenance = to_provenance_set(relation, ["O_ORDERYEAR"], "revenue")
    return TpchProvenance(
        name="Q5",
        description="supplier volume per order year, parameterised by "
        "supplier nation",
        provenance=provenance,
        trees=region_nation_tree(NATIONS_BY_REGION),
        group_columns=("O_ORDERYEAR",),
    )


# ---------------------------------------------------------------------------
# Q6 — forecasting revenue change
# ---------------------------------------------------------------------------


def q6_forecast_revenue(catalog: Catalog) -> TpchProvenance:
    """Q6: the forecast-revenue-change query — a single polynomial over months.

    ``SUM(L_EXTENDEDPRICE * L_DISCOUNT)`` over discounted, small-quantity
    1994 shipments, with prices parameterised by ship month.  This is the
    classic single-aggregate what-if: "how much revenue would a price change
    in month X have added?".
    """
    instrumented = _month_parameterised_lineitem(catalog)
    query = (
        Query.scan("LINEITEM")
        .filter(col("L_SHIPDATE") >= const("1994-01-01"))
        .filter(col("L_SHIPDATE") < const("1995-01-01"))
        .filter(col("L_DISCOUNT") >= const(0.02))
        .filter(col("L_QUANTITY") < const(25.0))
        .project([("total", const("all")), "L_EXTENDEDPRICE", "L_DISCOUNT"])
        .groupby(
            ["total"],
            aggregates=[
                ("revenue", "sum", col("L_EXTENDEDPRICE") * col("L_DISCOUNT"))
            ],
        )
    )
    relation = execute(query, instrumented)
    provenance = to_provenance_set(relation, ["total"], "revenue")
    return TpchProvenance(
        name="Q6",
        description="forecast revenue change (single aggregate), "
        "ship-month parameterised",
        provenance=provenance,
        trees=months_tree(12),
        group_columns=("total",),
    )


# ---------------------------------------------------------------------------
# Q10 — returned item reporting
# ---------------------------------------------------------------------------


def q10_returned_items(catalog: Catalog) -> TpchProvenance:
    """Q10 variant: lost revenue from returned items per customer nation.

    Ship months parameterise the prices; grouping by the customer's nation
    gives one polynomial per nation with one monomial per month, abstracted
    by the quarter tree.
    """
    instrumented = _month_parameterised_lineitem(catalog)
    query = (
        Query.scan("LINEITEM")
        .filter(col("L_RETURNFLAG") == const("R"))
        .join(Query.scan("ORDERS"), on=[("L_ORDERKEY", "O_ORDERKEY")])
        .join(Query.scan("CUSTOMER"), on=[("O_CUSTKEY", "C_CUSTKEY")])
        .join(Query.scan("NATION"), on=[("C_NATIONKEY", "N_NATIONKEY")])
        .groupby(
            ["N_NAME"],
            aggregates=[
                (
                    "revenue",
                    "sum",
                    col("L_EXTENDEDPRICE") * (const(1.0) - col("L_DISCOUNT")),
                )
            ],
        )
    )
    relation = execute(query, instrumented)
    provenance = to_provenance_set(relation, ["N_NAME"], "revenue")
    return TpchProvenance(
        name="Q10",
        description="returned-item revenue per customer nation, "
        "ship-month parameterised",
        provenance=provenance,
        trees=months_tree(12),
        group_columns=("N_NAME",),
    )


def all_tpch_queries(catalog: Catalog) -> List[TpchProvenance]:
    """Build the provenance of all five reproduced queries."""
    return [
        q1_pricing_summary(catalog),
        q3_segment_revenue(catalog),
        q5_local_supplier_volume(catalog),
        q6_forecast_revenue(catalog),
        q10_returned_items(catalog),
    ]


# ---------------------------------------------------------------------------
# Tuple-deletion / access-control what-ifs (the Boolean backend's workload)
# ---------------------------------------------------------------------------


def customer_variable(custkey: object) -> str:
    """The tuple variable annotating customer ``custkey``."""
    return f"cust_{custkey}"


def customers_by_nation(catalog: Catalog) -> Dict[str, List[str]]:
    """Nation name → the customer tuple variables of that nation's customers."""
    nation_names = {
        row["N_NATIONKEY"]: str(row["N_NAME"]) for row in catalog.get("NATION")
    }
    grouped: Dict[str, List[str]] = {}
    for row in catalog.get("CUSTOMER"):
        nation = nation_names[row["C_NATIONKEY"]]
        grouped.setdefault(nation, []).append(customer_variable(row["C_CUSTKEY"]))
    return grouped


def customer_nation_tree(catalog: Catalog) -> AbstractionTree:
    """Customer tuple variables grouped by nation under one root.

    The Boolean what-if tree: cutting at a nation node lets the analyst
    revoke or delete a whole nation's customers through one meta-variable.
    """
    grouped = customers_by_nation(catalog)
    children: Dict[str, List[str]] = {"customers": []}
    for nation in sorted(grouped):
        node = nation_variable(nation)
        children["customers"].append(node)
        children[node] = sorted(grouped[nation])
    return AbstractionTree("customers", children)


def tpch_deletion_provenance(catalog: Catalog) -> TpchProvenance:
    """Order revenue per market segment with per-customer tuple annotations.

    Every CUSTOMER tuple is annotated with its own Boolean-style variable
    (``cust_<key>``), so each result group's polynomial records which
    customers its revenue derives from.  Evaluated in the Boolean semiring
    this answers access-control/deletion what-ifs — *does segment S retain
    any revenue if these customers are removed?* — and in the real semiring
    the same provenance quantifies the lost revenue (variables at 0/1).
    """
    policy = TupleAnnotationPolicy(
        namer=lambda row: customer_variable(row["C_CUSTKEY"])
    )
    providers = {
        "CUSTOMER": policy.annotation_provider(catalog.get("CUSTOMER"))
    }
    query = (
        Query.scan("LINEITEM")
        .join(Query.scan("ORDERS"), on=[("L_ORDERKEY", "O_ORDERKEY")])
        .join(Query.scan("CUSTOMER"), on=[("O_CUSTKEY", "C_CUSTKEY")])
        .groupby(
            ["C_MKTSEGMENT"],
            aggregates=[
                (
                    "revenue",
                    "sum",
                    col("L_EXTENDEDPRICE") * (const(1.0) - col("L_DISCOUNT")),
                )
            ],
        )
    )
    relation = execute(query, catalog, annotations=providers)
    provenance = to_provenance_set(relation, ["C_MKTSEGMENT"], "revenue")
    return TpchProvenance(
        name="Q3-del",
        description="segment revenue with per-customer tuple annotations "
        "(deletion/access-control what-ifs, Boolean backend)",
        provenance=provenance,
        trees=customer_nation_tree(catalog),
        group_columns=("C_MKTSEGMENT",),
    )


def tpch_deletion_scenarios(
    catalog: Catalog, count: int
) -> List["Scenario"]:
    """A deterministic sweep of deletion/access-control what-ifs.

    Cycles through single-customer deletions, whole-nation revocations and
    whole-region blackouts (revoking every nation of a TPC-H region, the
    shape most likely to extinguish a result group) — ``set`` operations
    with amount 0 (delete) or 1 (keep), the Boolean backend's native
    scenario shape.
    """
    from repro.engine.scenario import Scenario

    grouped = customers_by_nation(catalog)
    nations = sorted(grouped)
    regions = sorted(NATIONS_BY_REGION)
    all_customers = sorted(name for members in grouped.values() for name in members)
    scenarios: List[Scenario] = []
    for i in range(count):
        shape = i % 3
        if shape == 0:
            customer = all_customers[(i // 3) % len(all_customers)]
            scenarios.append(
                Scenario(f"#{i} delete {customer}").set_value([customer], 0)
            )
        elif shape == 1:
            nation = nations[(i // 3) % len(nations)]
            scenarios.append(
                Scenario(f"#{i} revoke {nation}").set_value(grouped[nation], 0)
            )
        else:
            region = regions[(i // 3) % len(regions)]
            members = [
                name
                for nation in NATIONS_BY_REGION[region]
                for name in grouped.get(nation, ())
            ]
            scenarios.append(
                Scenario(f"#{i} blackout {region}").set_value(members, 0)
            )
    return scenarios
