"""Min-cost call-routing what-ifs on the telephony network (tropical semiring).

The running example's revenue analysis values provenance in the counting
semiring; this workload exercises the *tropical* (min, +) backend on the
same telephony setting: every zip code is connected to the exchange through
a handful of candidate routes, each route passing through two or three
shared trunks.  A zip's provenance polynomial has one monomial per candidate
route — the product of the route's trunk variables, with the route's fixed
access cost as its coefficient — so evaluating it tropically under a
per-trunk cost valuation yields the cheapest way to route the zip's traffic:

    cost(zip) = min over routes ( access cost + Σ trunk costs ).

What-if scenarios are cost perturbations: "trunk t3 is congested, +50% on
its cost" (``scale``), "trunk t5 under maintenance, pin its cost to 9.0"
(``set``).  Because abstraction only renames variables, the same provenance
can be compressed with a trunk-group tree and re-evaluated tropically — the
commutation property the paper proves for arbitrary semirings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.abstraction_tree import AbstractionTree
from repro.engine.scenario import Scenario
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation


@dataclass(frozen=True)
class RoutingConfig:
    """Parameters of the synthetic routing instance.

    ``num_zips × routes_per_zip`` monomials over ``num_trunks`` trunk
    variables; deterministic for a fixed seed.
    """

    num_zips: int = 40
    num_trunks: int = 12
    routes_per_zip: int = 4
    trunks_per_route: int = 3
    min_access_cost: float = 1.0
    max_access_cost: float = 6.0
    min_trunk_cost: float = 0.5
    max_trunk_cost: float = 4.0
    seed: int = 11

    def expected_provenance_size(self) -> int:
        """The number of monomials the generator produces."""
        return self.num_zips * self.routes_per_zip


def trunk_name(index: int) -> str:
    """The variable name of the ``index``-th trunk."""
    return f"t{index + 1}"


def generate_routing_provenance(config: RoutingConfig = RoutingConfig()) -> ProvenanceSet:
    """One polynomial per zip: a monomial per candidate route.

    Each route's monomial multiplies its (distinct) trunk variables and
    carries the route's fixed access cost as coefficient, so tropical
    evaluation under a trunk-cost valuation is exactly the min-cost routing
    problem described in the module docstring.
    """
    rng = np.random.default_rng(config.seed)
    provenance = ProvenanceSet()
    for zip_position in range(config.num_zips):
        terms: Dict[Monomial, float] = {}
        for _route in range(config.routes_per_zip):
            trunks = rng.choice(
                config.num_trunks, size=config.trunks_per_route, replace=False
            )
            access = round(
                float(
                    rng.uniform(config.min_access_cost, config.max_access_cost)
                ),
                2,
            )
            monomial = Monomial({trunk_name(int(t)): 1 for t in trunks})
            # Two routes through the same trunks keep the cheaper access cost
            # (they are the same derivation tropically).
            if monomial not in terms or access < terms[monomial]:
                terms[monomial] = access
        provenance[(f"{10001 + zip_position}",)] = Polynomial(terms)
    return provenance


def routing_base_costs(config: RoutingConfig = RoutingConfig()) -> Valuation:
    """The per-trunk base costs, as a tropical-semiring valuation."""
    rng = np.random.default_rng(config.seed + 1)
    return Valuation(
        {
            trunk_name(i): round(
                float(rng.uniform(config.min_trunk_cost, config.max_trunk_cost)), 2
            )
            for i in range(config.num_trunks)
        },
        semiring="tropical",
    )


def trunk_group_tree(config: RoutingConfig = RoutingConfig()) -> AbstractionTree:
    """An abstraction tree grouping trunks into regional bundles of four."""
    trunks = [trunk_name(i) for i in range(config.num_trunks)]
    children: Dict[str, List[str]] = {"trunks": []}
    for start in range(0, len(trunks), 4):
        bundle = f"bundle{start // 4 + 1}"
        children["trunks"].append(bundle)
        children[bundle] = trunks[start : start + 4]
    return AbstractionTree("trunks", children)


def routing_scenario_sweep(
    count: int, config: RoutingConfig = RoutingConfig()
) -> List[Scenario]:
    """A deterministic sweep of trunk-cost what-ifs.

    Cycles through congestion surcharges (scale a trunk's cost up),
    maintenance discounts (scale down) and pinned costs (set), over the
    configured trunks.
    """
    factors = (1.5, 0.75, 1.25, 0.5, 2.0)
    pinned = (9.0, 0.25, 5.0)
    scenarios: List[Scenario] = []
    for i in range(count):
        trunk = trunk_name(i % config.num_trunks)
        shape = i % 3
        if shape == 0:
            factor = factors[(i // 3) % len(factors)]
            scenarios.append(
                Scenario(f"#{i} {trunk} x{factor:g}").scale([trunk], factor)
            )
        elif shape == 1:
            factor = factors[(i // 3) % len(factors)]
            other = trunk_name((i + 5) % config.num_trunks)
            scenarios.append(
                Scenario(f"#{i} {trunk},{other} x{factor:g}").scale(
                    [trunk, other], factor
                )
            )
        else:
            cost = pinned[(i // 3) % len(pinned)]
            scenarios.append(
                Scenario(f"#{i} {trunk}={cost:g}").set_value([trunk], cost)
            )
    return scenarios
