"""Random provenance and abstraction-tree generators.

These exist for stress tests, property-based tests and the optimiser
ablation benchmark: they produce instances with controllable shape (number
of result groups, monomials per group, tree fan-out and depth) where the
exact algorithms can be cross-checked against each other.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.core.abstraction_tree import AbstractionTree


def random_tree(
    num_leaves: int,
    max_children: int = 3,
    seed: int = 0,
    leaf_prefix: str = "x",
    inner_prefix: str = "g",
    root: str = "Root",
) -> AbstractionTree:
    """A random tree with ``num_leaves`` leaves named ``<leaf_prefix><i>``.

    The tree is built top-down by recursively partitioning the leaf range
    into 2..``max_children`` contiguous groups, so the result is always a
    well-formed abstraction tree of moderate depth.
    """
    if num_leaves < 1:
        raise ValueError("num_leaves must be positive")
    rng = random.Random(seed)
    leaves = [f"{leaf_prefix}{i}" for i in range(1, num_leaves + 1)]
    edges: Dict[str, List[str]] = {}
    counter = {"inner": 0}

    def build(name: str, members: Sequence[str]) -> None:
        if len(members) == 1:
            # A single member: attach the leaf directly under the parent by
            # making `name` that leaf — handled by the caller.
            raise AssertionError("build() is never called with one member")
        children: List[str] = []
        if len(members) <= max_children and rng.random() < 0.5:
            # Make all members direct leaf children.
            edges[name] = list(members)
            return
        num_groups = rng.randint(2, min(max_children, len(members)))
        boundaries = sorted(rng.sample(range(1, len(members)), num_groups - 1))
        start = 0
        for boundary in list(boundaries) + [len(members)]:
            group = members[start:boundary]
            start = boundary
            if len(group) == 1:
                children.append(group[0])
            else:
                counter["inner"] += 1
                inner = f"{inner_prefix}{counter['inner']}"
                children.append(inner)
                build(inner, group)
        edges[name] = children

    if len(leaves) == 1:
        edges[root] = leaves
    else:
        build(root, leaves)
    return AbstractionTree(root, edges)


def random_provenance(
    variables: Sequence[str],
    num_groups: int = 5,
    monomials_per_group: int = 20,
    extra_variables: Sequence[str] = (),
    max_degree: int = 2,
    seed: int = 0,
) -> ProvenanceSet:
    """Random provenance whose monomials draw variables from ``variables``.

    Each monomial contains at most one variable from ``variables`` (so the
    single-tree DP applies when those are a tree's leaves) and up to
    ``max_degree - 1`` variables from ``extra_variables``.
    """
    rng = random.Random(seed)
    provenance = ProvenanceSet()
    for group in range(num_groups):
        terms: Dict[Monomial, float] = {}
        for _ in range(monomials_per_group):
            factors: Dict[str, int] = {}
            if variables and rng.random() < 0.9:
                factors[rng.choice(list(variables))] = 1
            for _extra in range(rng.randint(0, max(0, max_degree - 1))):
                if extra_variables:
                    name = rng.choice(list(extra_variables))
                    factors[name] = factors.get(name, 0) + 1
            coefficient = round(rng.uniform(0.5, 100.0), 2)
            monomial = Monomial(factors)
            terms[monomial] = terms.get(monomial, 0.0) + coefficient
        provenance[(f"g{group}",)] = Polynomial(terms)
    return provenance


def random_single_tree_instance(
    num_leaves: int = 8,
    num_groups: int = 4,
    monomials_per_group: int = 15,
    num_extra_variables: int = 4,
    seed: int = 0,
) -> Tuple[ProvenanceSet, AbstractionTree]:
    """A matched (provenance, tree) pair satisfying the single-tree DP precondition."""
    tree = random_tree(num_leaves, seed=seed)
    extra = [f"e{i}" for i in range(1, num_extra_variables + 1)]
    provenance = random_provenance(
        tree.leaves(),
        num_groups=num_groups,
        monomials_per_group=monomials_per_group,
        extra_variables=extra,
        seed=seed + 1,
    )
    return provenance, tree
