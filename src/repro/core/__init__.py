"""COBRA's core: compression of provenance via abstraction trees.

This subpackage implements the paper's contribution:

* :mod:`repro.core.abstraction_tree` — abstraction trees (ontology-like
  hierarchies over provenance variables) and forests of them;
* :mod:`repro.core.cut` — cuts of a tree (the representation of an
  abstraction) and their enumeration;
* :mod:`repro.core.compression` — applying an abstraction to provenance,
  i.e. replacing grouped variables by meta-variables and merging monomials;
* :mod:`repro.core.optimizer` — the exact polynomial-time dynamic program
  for the single-tree optimisation problem (maximise the number of
  variables subject to a bound on the number of monomials);
* :mod:`repro.core.brute_force` — exhaustive cut enumeration, used to verify
  optimality on small instances;
* :mod:`repro.core.greedy` — a greedy coarsening heuristic that also handles
  the general (multi-variable-per-monomial) case;
* :mod:`repro.core.kernel` — the incremental compression kernel backing the
  greedy: CSR monomial-incidence index, delta-updated merge-gain counters,
  lazy-heap candidate selection and cached bound sweeps (``Compressor``);
* :mod:`repro.core.multi_tree` — optimisation over forests of abstraction
  trees (exact for small forests, greedy budget allocation otherwise);
* :mod:`repro.core.defaults` — default valuations for meta-variables
  (average of the abstracted variables' values, as in the demo's UI);
* :mod:`repro.core.metrics` — provenance size, expressiveness and distortion
  measures used in the reports and benchmarks.
"""

from repro.core.abstraction_tree import AbstractionTree, AbstractionForest, TreeNode
from repro.core.cut import Cut, enumerate_cuts, leaf_cut, root_cut
from repro.core.compression import (
    Abstraction,
    CompressionResult,
    Compressor,
    apply_abstraction,
)
from repro.core.kernel import (
    GreedyTrajectory,
    IncrementalGreedyKernel,
    MonomialIncidenceIndex,
)
from repro.core.optimizer import (
    OptimizationResult,
    compute_size_profile,
    optimize_single_tree,
)
from repro.core.brute_force import optimize_brute_force
from repro.core.greedy import optimize_greedy
from repro.core.multi_tree import optimize_forest
from repro.core.defaults import default_meta_valuation
from repro.core.metrics import (
    provenance_size,
    num_variables,
    compression_ratio,
    compute_error_metrics,
    variable_retention,
    result_distortion,
)

__all__ = [
    "AbstractionTree",
    "AbstractionForest",
    "TreeNode",
    "Cut",
    "enumerate_cuts",
    "leaf_cut",
    "root_cut",
    "Abstraction",
    "CompressionResult",
    "Compressor",
    "GreedyTrajectory",
    "IncrementalGreedyKernel",
    "MonomialIncidenceIndex",
    "apply_abstraction",
    "OptimizationResult",
    "compute_size_profile",
    "optimize_single_tree",
    "optimize_brute_force",
    "optimize_greedy",
    "optimize_forest",
    "default_meta_valuation",
    "provenance_size",
    "num_variables",
    "compression_ratio",
    "variable_retention",
    "result_distortion",
    "compute_error_metrics",
]
