"""Measures of provenance size, expressiveness and result distortion.

These are the quantities COBRA's UI (and our benchmarks) report: how large
the provenance is, how many degrees of freedom an abstraction retains, and
how far the query results computed from the compressed provenance drift from
those computed from the full provenance.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.provenance.polynomial import Polynomial, ProvenanceSet

ProvenanceLike = Union[Polynomial, ProvenanceSet]


def provenance_size(provenance: ProvenanceLike) -> int:
    """The total number of monomials — the paper's provenance-size measure."""
    if isinstance(provenance, Polynomial):
        return provenance.num_monomials()
    return provenance.size()


def num_variables(provenance: ProvenanceLike) -> int:
    """The number of distinct variables — the paper's expressiveness measure."""
    if isinstance(provenance, Polynomial):
        return len(provenance.variables())
    return provenance.num_variables()


def compression_ratio(original: ProvenanceLike, compressed: ProvenanceLike) -> float:
    """``size(compressed) / size(original)`` (1.0 when nothing was gained)."""
    original_size = provenance_size(original)
    if original_size == 0:
        return 1.0
    return provenance_size(compressed) / original_size


def variable_retention(original: ProvenanceLike, compressed: ProvenanceLike) -> float:
    """``variables(compressed) / variables(original)``."""
    original_vars = num_variables(original)
    if original_vars == 0:
        return 1.0
    return num_variables(compressed) / original_vars


def result_distortion(
    full: ProvenanceSet,
    compressed: ProvenanceSet,
    full_valuation: Mapping[str, float],
    compressed_valuation: Mapping[str, float],
) -> Dict[str, float]:
    """Compare per-group results of the full and the compressed provenance.

    Both provenance sets are evaluated under their respective valuations
    (the compressed one typically under the meta-variable defaults of
    :func:`repro.core.defaults.default_meta_valuation`) and the per-group
    differences are summarised.

    Returns a dictionary with ``max_abs_error``, ``mean_abs_error``,
    ``max_rel_error`` and ``mean_rel_error`` (relative errors are measured
    against the full result, skipping groups whose full result is 0).
    """
    full_results = full.evaluate(full_valuation)
    compressed_results = compressed.evaluate(compressed_valuation)

    abs_errors = []
    rel_errors = []
    for key, full_value in full_results.items():
        compressed_value = compressed_results.get(key, 0.0)
        error = abs(full_value - compressed_value)
        abs_errors.append(error)
        if abs(full_value) > 1e-12:
            rel_errors.append(error / abs(full_value))

    if not abs_errors:
        return {
            "max_abs_error": 0.0,
            "mean_abs_error": 0.0,
            "max_rel_error": 0.0,
            "mean_rel_error": 0.0,
        }
    return {
        "max_abs_error": max(abs_errors),
        "mean_abs_error": sum(abs_errors) / len(abs_errors),
        "max_rel_error": max(rel_errors) if rel_errors else 0.0,
        "mean_rel_error": (sum(rel_errors) / len(rel_errors)) if rel_errors else 0.0,
    }
