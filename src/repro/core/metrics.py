"""Measures of provenance size, expressiveness and result distortion.

These are the quantities COBRA's UI (and our benchmarks) report: how large
the provenance is, how many degrees of freedom an abstraction retains, and
how far the query results computed from the compressed provenance drift from
those computed from the full provenance.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Union

from repro.provenance.polynomial import Polynomial, ProvenanceSet

ProvenanceLike = Union[Polynomial, ProvenanceSet]

#: Relative errors are measured against ``max(|full|, EPSILON)`` so that a
#: compression corrupting a zero-valued result still reports a (large)
#: relative error instead of silently dropping the group.
ZERO_BASELINE_EPSILON = 1e-9


def provenance_size(provenance: ProvenanceLike) -> int:
    """The total number of monomials — the paper's provenance-size measure."""
    if isinstance(provenance, Polynomial):
        return provenance.num_monomials()
    return provenance.size()


def num_variables(provenance: ProvenanceLike) -> int:
    """The number of distinct variables — the paper's expressiveness measure."""
    if isinstance(provenance, Polynomial):
        return len(provenance.variables())
    return provenance.num_variables()


def compression_ratio(original: ProvenanceLike, compressed: ProvenanceLike) -> float:
    """``size(compressed) / size(original)`` (1.0 when nothing was gained)."""
    original_size = provenance_size(original)
    if original_size == 0:
        return 1.0
    return provenance_size(compressed) / original_size


def variable_retention(original: ProvenanceLike, compressed: ProvenanceLike) -> float:
    """``variables(compressed) / variables(original)``."""
    original_vars = num_variables(original)
    if original_vars == 0:
        return 1.0
    return num_variables(compressed) / original_vars


def compute_error_metrics(
    full_results: Mapping,
    compressed_results: Mapping,
    semiring: Optional[object] = None,
    epsilon: float = ZERO_BASELINE_EPSILON,
) -> Dict[str, float]:
    """Summarise per-group abstraction error between two result mappings.

    The error measure is defined by the semiring backend: numeric deltas for
    numeric backends (real, tropical, Boolean), symmetric-difference
    cardinality for the set-valued ones (Why, Lineage).  Relative errors are
    measured against an epsilon-clamped magnitude of the full result, so a
    compression that corrupts a zero-valued result reports a non-zero
    ``max_rel_error`` instead of being silently skipped; the number of such
    (near-)zero baselines is reported as ``zero_baseline_count``.

    Groups missing from ``compressed_results`` compare against the
    semiring's zero, matching the interactive report's convention.
    """
    from repro.provenance.backends import resolve_backend

    backend = resolve_backend(semiring)
    zero = backend.semiring.zero

    abs_errors = []
    rel_errors = []
    zero_baselines = 0
    for key, full_value in full_results.items():
        compressed_value = compressed_results.get(key, zero)
        error = backend.error(full_value, compressed_value)
        abs_errors.append(error)
        scale = backend.magnitude(full_value)
        if scale <= epsilon:
            zero_baselines += 1
        if error == 0.0:
            rel_errors.append(0.0)
        elif not math.isfinite(scale):
            # e.g. a tropical group that is unreachable (inf) in the full
            # provenance but reachable after compression: a severe
            # corruption, reported as inf rather than inf/inf = NaN.
            rel_errors.append(float("inf"))
        else:
            rel_errors.append(error / max(scale, epsilon))

    if not abs_errors:
        return {
            "max_abs_error": 0.0,
            "mean_abs_error": 0.0,
            "max_rel_error": 0.0,
            "mean_rel_error": 0.0,
            "zero_baseline_count": 0,
        }
    return {
        "max_abs_error": max(abs_errors),
        "mean_abs_error": sum(abs_errors) / len(abs_errors),
        "max_rel_error": max(rel_errors),
        "mean_rel_error": sum(rel_errors) / len(rel_errors),
        "zero_baseline_count": zero_baselines,
    }


def result_distortion(
    full: ProvenanceSet,
    compressed: ProvenanceSet,
    full_valuation: Mapping[str, float],
    compressed_valuation: Mapping[str, float],
    semiring: Optional[object] = None,
) -> Dict[str, float]:
    """Compare per-group results of the full and the compressed provenance.

    Both provenance sets are evaluated under their respective valuations
    (the compressed one typically under the meta-variable defaults of
    :func:`repro.core.defaults.default_meta_valuation`) in the backend named
    by ``semiring`` (the float pipeline by default) and the per-group
    differences are summarised by :func:`compute_error_metrics`.

    Returns a dictionary with ``max_abs_error``, ``mean_abs_error``,
    ``max_rel_error``, ``mean_rel_error`` and ``zero_baseline_count``
    (relative errors are measured against an epsilon-clamped magnitude of
    the full result, so corrupted zero-valued groups are *not* skipped).
    """
    from repro.provenance.backends import resolve_backend

    backend = resolve_backend(semiring)
    if backend.name == "real":
        full_results = full.evaluate(full_valuation)
        compressed_results = compressed.evaluate(compressed_valuation)
    else:
        full_results = backend.compile(full).evaluate(full_valuation)
        compressed_results = backend.compile(compressed).evaluate(
            compressed_valuation
        )
    return compute_error_metrics(full_results, compressed_results, semiring=backend)
