"""Default valuations for meta-variables.

When COBRA presents an abstraction to the analyst (Figure 5 of the paper),
every meta-variable is shown together with the variables it abstracts and a
*default value* — "average over the abstracted variables' values".  This
module derives that default valuation, optionally weighting the average by
how much provenance mass each original variable carries.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Union

from repro.exceptions import AbstractionError
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.valuation import Valuation
from repro.core.compression import Abstraction

Reducer = Union[str, Callable[[Iterable[float]], float]]


def _coefficient_mass(provenance: ProvenanceSet) -> Dict[str, float]:
    """Total absolute coefficient mass carried by each variable."""
    mass: Dict[str, float] = {}
    for _key, polynomial in provenance.items():
        for monomial, coefficient in polynomial.terms():
            for name, _exponent in monomial:
                mass[name] = mass.get(name, 0.0) + abs(coefficient)
    return mass


def default_meta_valuation(
    abstraction: Abstraction,
    original_valuation: Mapping[str, float],
    reducer: Reducer = "mean",
    provenance: Optional[ProvenanceSet] = None,
    on_missing: str = "error",
    fallback: float = 1.0,
) -> Valuation:
    """Derive the default valuation of the abstracted provenance's variables.

    Parameters
    ----------
    abstraction:
        The abstraction whose meta-variables need default values.
    original_valuation:
        The analyst's valuation of the *original* variables.
    reducer:
        How to combine the values of the variables grouped under one
        meta-variable: ``"mean"`` (the paper's default), ``"weighted"``
        (weighted by each variable's absolute coefficient mass in
        ``provenance``), or any callable taking the values and returning a
        float.
    provenance:
        Required when ``reducer="weighted"``; ignored otherwise.
    on_missing:
        What to do when a grouped variable has no value in
        ``original_valuation``: ``"error"`` (default) raises, ``"skip"``
        excludes it from the average — the right choice when the tree
        mentions variables that never occur in the provenance.
    fallback:
        The value used for a meta-variable whose members are all missing
        (only with ``on_missing="skip"``).

    Returns
    -------
    Valuation
        Covering every meta-variable plus every original variable that the
        abstraction leaves untouched (so it can be applied directly to the
        compressed provenance).
    """
    if on_missing not in ("error", "skip"):
        raise AbstractionError(f"unknown on_missing policy {on_missing!r}")
    grouped = abstraction.grouped_variables()

    weights: Dict[str, float] = {}
    if reducer == "weighted":
        if provenance is None:
            raise AbstractionError(
                "reducer='weighted' requires the provenance argument"
            )
        weights = _coefficient_mass(provenance)

    values: Dict[str, float] = {}
    for meta, variables in grouped.items():
        member_values = []
        member_weights = []
        for variable in variables:
            if variable not in original_valuation:
                if on_missing == "skip":
                    continue
                raise AbstractionError(
                    f"original valuation is missing variable {variable!r} "
                    f"grouped under {meta!r}"
                )
            member_values.append(float(original_valuation[variable]))
            member_weights.append(weights.get(variable, 0.0))
        if not member_values:
            values[meta] = float(fallback)
            continue

        if callable(reducer):
            values[meta] = float(reducer(member_values))
        elif reducer == "mean":
            values[meta] = sum(member_values) / len(member_values)
        elif reducer == "weighted":
            total_weight = sum(member_weights)
            if total_weight <= 0.0:
                values[meta] = sum(member_values) / len(member_values)
            else:
                values[meta] = (
                    sum(v * w for v, w in zip(member_values, member_weights))
                    / total_weight
                )
        else:
            raise AbstractionError(f"unknown reducer {reducer!r}")

    # Variables untouched by the abstraction keep their original values.
    mapped = set(abstraction.mapping)
    for name, value in original_valuation.items():
        if name not in mapped and name not in values:
            values[name] = float(value)
    return Valuation(values)
