"""Default valuations for meta-variables.

When COBRA presents an abstraction to the analyst (Figure 5 of the paper),
every meta-variable is shown together with the variables it abstracts and a
*default value* — "average over the abstracted variables' values".  This
module derives that default valuation, optionally weighting the average by
how much provenance mass each original variable carries.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Union

from repro.exceptions import AbstractionError
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.valuation import Valuation
from repro.core.compression import Abstraction

Reducer = Union[str, Callable[[Iterable[float]], float]]


def _coefficient_mass(provenance: ProvenanceSet) -> Dict[str, float]:
    """Total absolute coefficient mass carried by each variable."""
    mass: Dict[str, float] = {}
    for _key, polynomial in provenance.items():
        for monomial, coefficient in polynomial.terms():
            for name, _exponent in monomial:
                mass[name] = mass.get(name, 0.0) + abs(coefficient)
    return mass


def default_meta_valuation(
    abstraction: Abstraction,
    original_valuation: Mapping[str, float],
    reducer: Reducer = "mean",
    provenance: Optional[ProvenanceSet] = None,
    on_missing: str = "error",
    fallback: Optional[float] = None,
    semiring: Optional[object] = None,
) -> Valuation:
    """Derive the default valuation of the abstracted provenance's variables.

    Parameters
    ----------
    abstraction:
        The abstraction whose meta-variables need default values.
    original_valuation:
        The analyst's valuation of the *original* variables.
    reducer:
        How to combine the values of the variables grouped under one
        meta-variable: ``"mean"`` (the paper's default), ``"weighted"``
        (weighted by each variable's absolute coefficient mass in
        ``provenance``), or any callable taking the values and returning a
        float.
    provenance:
        Required when ``reducer="weighted"``; ignored otherwise.
    on_missing:
        What to do when a grouped variable has no value in
        ``original_valuation``: ``"error"`` (default) raises, ``"skip"``
        excludes it from the average — the right choice when the tree
        mentions variables that never occur in the provenance.
    fallback:
        The value used for a meta-variable whose members are all missing
        (only with ``on_missing="skip"``).  Defaults to 1.0 for the float
        pipeline and to each variable's backend identity otherwise.
    semiring:
        A semiring backend (name, semiring instance or backend).  With a
        non-real backend, member values are combined by the backend's
        ``reduce_members`` (the semiring sum for set-valued backends, where
        "mean" has no meaning) and the returned valuation is typed by that
        semiring; ``reducer`` only applies to the float pipeline.

    Returns
    -------
    Valuation
        Covering every meta-variable plus every original variable that the
        abstraction leaves untouched (so it can be applied directly to the
        compressed provenance).
    """
    if on_missing not in ("error", "skip"):
        raise AbstractionError(f"unknown on_missing policy {on_missing!r}")
    backend = None
    if semiring is None and isinstance(original_valuation, Valuation):
        semiring = (
            None
            if original_valuation.semiring_name == "real"
            else original_valuation.backend
        )
    if semiring is not None:
        from repro.provenance.backends import resolve_backend

        backend = resolve_backend(semiring)
        if backend.name == "real":
            backend = None
    if backend is not None:
        return _backend_meta_valuation(
            abstraction, original_valuation, backend, on_missing, fallback
        )
    if fallback is None:
        fallback = 1.0
    grouped = abstraction.grouped_variables()

    weights: Dict[str, float] = {}
    if reducer == "weighted":
        if provenance is None:
            raise AbstractionError(
                "reducer='weighted' requires the provenance argument"
            )
        weights = _coefficient_mass(provenance)

    values: Dict[str, float] = {}
    for meta, variables in grouped.items():
        member_values = []
        member_weights = []
        for variable in variables:
            if variable not in original_valuation:
                if on_missing == "skip":
                    continue
                raise AbstractionError(
                    f"original valuation is missing variable {variable!r} "
                    f"grouped under {meta!r}"
                )
            member_values.append(float(original_valuation[variable]))
            member_weights.append(weights.get(variable, 0.0))
        if not member_values:
            values[meta] = float(fallback)
            continue

        if callable(reducer):
            values[meta] = float(reducer(member_values))
        elif reducer == "mean":
            values[meta] = sum(member_values) / len(member_values)
        elif reducer == "weighted":
            total_weight = sum(member_weights)
            if total_weight <= 0.0:
                values[meta] = sum(member_values) / len(member_values)
            else:
                values[meta] = (
                    sum(v * w for v, w in zip(member_values, member_weights))
                    / total_weight
                )
        else:
            raise AbstractionError(f"unknown reducer {reducer!r}")

    # Variables untouched by the abstraction keep their original values.
    mapped = set(abstraction.mapping)
    for name, value in original_valuation.items():
        if name not in mapped and name not in values:
            values[name] = float(value)
    return Valuation(values)


def _backend_meta_valuation(
    abstraction: Abstraction,
    original_valuation: Mapping[str, object],
    backend,
    on_missing: str,
    fallback: Optional[object],
) -> Valuation:
    """The non-real-backend branch: member values combined per the backend."""
    values: Dict[str, object] = {}
    for meta, variables in abstraction.grouped_variables().items():
        member_values = []
        for variable in variables:
            if variable not in original_valuation:
                if on_missing == "skip":
                    continue
                raise AbstractionError(
                    f"original valuation is missing variable {variable!r} "
                    f"grouped under {meta!r}"
                )
            member_values.append(original_valuation[variable])
        if member_values:
            values[meta] = backend.reduce_members(member_values)
        elif fallback is not None:
            values[meta] = fallback
        else:
            values[meta] = backend.default_value(meta)

    mapped = set(abstraction.mapping)
    for name, value in original_valuation.items():
        if name not in mapped and name not in values:
            values[name] = value
    return Valuation(values, semiring=backend)
