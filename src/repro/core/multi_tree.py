"""Optimisation over forests of abstraction trees.

The demo paper restricts its guarantee to a single tree; the companion
SIGMOD paper shows the general problem (several trees whose variables can
co-occur inside a monomial) is intractable in general.  This module follows
that structure:

* for small forests, :func:`optimize_forest` enumerates every combination of
  per-tree cuts and measures each candidate exactly (guaranteed optimal);
* for larger instances it falls back to the greedy coarsening heuristic of
  :mod:`repro.core.greedy`;
* when the forest has a single tree and the provenance satisfies the
  single-tree precondition, the exact polynomial-time DP is used instead.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import InfeasibleBoundError, UnsupportedPolynomialError
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree, as_forest
from repro.core.compression import (
    Abstraction,
    ProvenanceLike,
    _as_provenance_set,
    apply_abstraction,
)
from repro.core.cut import Cut, count_cuts, enumerate_cuts
from repro.core.greedy import optimize_greedy
from repro.core.optimizer import OptimizationResult, optimize_single_tree

TreeOrForest = Union[AbstractionTree, AbstractionForest]


def optimize_forest(
    provenance: ProvenanceLike,
    trees: TreeOrForest,
    bound: int,
    method: str = "auto",
    allow_infeasible: bool = False,
    max_combinations: int = 20_000,
    keep_trace: bool = False,
) -> OptimizationResult:
    """Choose one cut per tree of ``trees`` so the provenance fits ``bound``.

    Parameters
    ----------
    method:
        ``"auto"`` (default) picks the exact DP for a single compatible tree,
        exhaustive enumeration when the number of cut combinations is at most
        ``max_combinations``, and the greedy heuristic otherwise.  ``"exact"``
        forces enumeration (raising ``ValueError`` if too large), ``"greedy"``
        forces the heuristic, ``"dp"`` forces the single-tree DP, and
        ``"incremental"`` forces the greedy through the incremental kernel
        (:mod:`repro.core.kernel`) — identical cuts to ``"greedy"``, much
        faster on large instances.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    forest = as_forest(trees)
    provenance_set = _as_provenance_set(provenance)

    if method not in ("auto", "exact", "greedy", "dp", "incremental"):
        raise ValueError(f"unknown method {method!r}")

    if method == "incremental":
        return optimize_greedy(
            provenance_set,
            forest,
            bound,
            allow_infeasible=allow_infeasible,
            keep_trace=keep_trace,
            strategy="incremental",
        )

    if method == "dp" or (method == "auto" and len(forest) == 1):
        try:
            return optimize_single_tree(
                provenance_set,
                forest.trees()[0],
                bound,
                allow_infeasible=allow_infeasible,
                keep_trace=keep_trace,
            )
        except UnsupportedPolynomialError:
            if method == "dp":
                raise
            # fall through to the forest strategies

    combinations = 1
    for tree in forest.trees():
        combinations *= count_cuts(tree)

    if method == "exact" or (method == "auto" and combinations <= max_combinations):
        if combinations > max_combinations and method == "exact":
            raise ValueError(
                f"forest has {combinations} cut combinations, more than "
                f"max_combinations={max_combinations}"
            )
        return _optimize_exhaustive(
            provenance_set, forest, bound, allow_infeasible
        )

    return optimize_greedy(
        provenance_set,
        forest,
        bound,
        allow_infeasible=allow_infeasible,
        keep_trace=keep_trace,
    )


def _optimize_exhaustive(
    provenance_set,
    forest: AbstractionForest,
    bound: int,
    allow_infeasible: bool,
) -> OptimizationResult:
    """Enumerate all per-tree cut combinations and keep the best feasible one."""
    per_tree_cuts: List[List[Cut]] = [
        list(enumerate_cuts(tree)) for tree in forest.trees()
    ]

    best_feasible: Optional[Tuple[int, int, Tuple[Cut, ...], object]] = None
    best_any: Optional[Tuple[int, int, Tuple[Cut, ...], object]] = None

    for combo in product(*per_tree_cuts):
        abstraction = Abstraction.from_cuts(list(combo))
        compression = apply_abstraction(provenance_set, abstraction)
        size = compression.compressed_size
        num_vars = sum(cut.num_variables() for cut in combo)

        if best_any is None or (-size, num_vars) > (-best_any[1], best_any[0]):
            best_any = (num_vars, size, combo, compression)
        if size <= bound:
            if best_feasible is None or (num_vars, -size) > (
                best_feasible[0],
                -best_feasible[1],
            ):
                best_feasible = (num_vars, size, combo, compression)

    if best_feasible is not None:
        num_vars, size, combo, compression = best_feasible
        feasible = True
    else:
        assert best_any is not None
        if not allow_infeasible:
            raise InfeasibleBoundError(bound, best_any[1])
        num_vars, size, combo, compression = best_any
        feasible = False

    return OptimizationResult(
        cut=combo[0] if len(combo) == 1 else None,
        cuts=tuple(combo),
        compression=compression,
        bound=bound,
        feasible=feasible,
        predicted_size=size,
        algorithm="exhaustive-forest",
        trace=None,
    )
