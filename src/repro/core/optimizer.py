"""The exact single-tree optimiser (bottom-up dynamic programming).

This is the algorithm the demo runs "under the hood" (Sections 2 and 4 of
the paper): given provenance polynomials, one abstraction tree and a bound
on the number of monomials, find the cut that respects the bound while
maximising the number of distinct variables.  In the single-tree setting —
each monomial contains at most one variable of the tree — the problem is
solvable in polynomial time by a bottom-up dynamic program over the tree.

Formulation
-----------
Write every monomial of the provenance as ``c · x^e · r`` where ``x`` is a
tree leaf (if any) and ``r`` is the *residue*: the product of the remaining
(non-tree) variables together with the identity of the polynomial the
monomial belongs to (monomials of different result groups never merge).
Under a cut node ``v``, all monomials whose leaf lies below ``v`` and that
share ``(r, e)`` collapse into a single monomial; hence choosing ``v``
contributes ``load(v) = |{(r, e) below v}|`` monomials, and the total
compressed size is ``Σ_{v∈cut} load(v)`` plus the number of monomials with
no tree variable.  Maximising the cut's cardinality subject to the bound is
a tree-knapsack problem solved exactly by the DP below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import InfeasibleBoundError, UnsupportedPolynomialError
from repro.provenance.polynomial import ProvenanceSet
from repro.core.abstraction_tree import AbstractionTree
from repro.core.compression import (
    Abstraction,
    CompressionResult,
    ProvenanceLike,
    _as_provenance_set,
    apply_abstraction,
)
from repro.core.cut import Cut


@dataclass(frozen=True)
class OptimizationResult:
    """The outcome of a bound-constrained abstraction search.

    Attributes
    ----------
    cut:
        The chosen cut (``None`` only for forest optimisers, which report
        one cut per tree through ``cuts``).
    cuts:
        All chosen cuts (one per tree involved).
    compression:
        The :class:`~repro.core.compression.CompressionResult` of actually
        applying the chosen abstraction.
    bound:
        The requested bound on the number of monomials.
    feasible:
        Whether the bound was met.  When ``allow_infeasible`` was passed and
        no cut meets the bound, the coarsest/cheapest abstraction is returned
        with ``feasible=False``.
    predicted_size:
        The size the optimiser predicted before applying the abstraction
        (equal to the achieved size for the exact algorithms).
    algorithm:
        Name of the algorithm that produced the result.
    trace:
        Optional "under the hood" information (per-node loads and DP tables)
        kept when ``keep_trace=True``.
    strategy:
        The engine used by algorithms with several interchangeable
        implementations (the greedy's ``"legacy"`` rescans vs the
        ``"incremental"`` kernel); ``None`` for single-engine algorithms.
    """

    cut: Optional[Cut]
    cuts: Tuple[Cut, ...]
    compression: CompressionResult
    bound: int
    feasible: bool
    predicted_size: int
    algorithm: str
    trace: Optional[Dict] = None
    strategy: Optional[str] = None

    @property
    def abstraction(self) -> Abstraction:
        """The abstraction that was applied."""
        return self.compression.abstraction

    @property
    def compressed(self) -> ProvenanceSet:
        """The compressed provenance."""
        return self.compression.compressed

    @property
    def achieved_size(self) -> int:
        """The actual number of monomials after compression."""
        return self.compression.compressed_size

    @property
    def num_variables(self) -> int:
        """Number of distinct variables in the compressed provenance."""
        return self.compression.compressed_variables

    def summary(self) -> Dict[str, object]:
        """A flat dictionary of the headline numbers (for reports/benchmarks)."""
        data = dict(self.compression.summary())
        data.update(
            {
                "bound": self.bound,
                "feasible": self.feasible,
                "predicted_size": self.predicted_size,
                "algorithm": self.algorithm,
                "strategy": self.strategy,
                "cut": sorted(self.cut.nodes) if self.cut is not None else None,
            }
        )
        return data


@dataclass
class _TreeLoadModel:
    """Per-node 'load' statistics of a provenance set w.r.t. one tree.

    ``load(v)`` is the number of monomials that remain if all leaves under
    ``v`` are merged into a single meta-variable; ``base_monomials`` counts
    the monomials containing no tree variable (they are unaffected by any
    cut of this tree).
    """

    tree: AbstractionTree
    loads: Dict[str, int]
    base_monomials: int
    leaf_occurrences: Dict[str, int]

    def cut_size(self, cut: Cut) -> int:
        """The predicted compressed size under ``cut``."""
        return self.base_monomials + sum(self.loads[node] for node in cut.nodes)


def build_load_model(
    provenance: ProvenanceLike, tree: AbstractionTree
) -> _TreeLoadModel:
    """Compute per-node loads for ``provenance`` with respect to ``tree``.

    Raises
    ------
    UnsupportedPolynomialError
        If some monomial contains two or more distinct leaves of the tree —
        the single-tree DP's precondition (use the greedy optimiser then).
    """
    provenance_set = _as_provenance_set(provenance)
    tree_leaves = set(tree.leaves())

    residues_per_leaf: Dict[str, Set[Tuple]] = {leaf: set() for leaf in tree_leaves}
    occurrences: Dict[str, int] = {leaf: 0 for leaf in tree_leaves}
    base_monomials = 0

    for group_key, polynomial in provenance_set.items():
        for monomial, _coefficient in polynomial.terms():
            in_tree = [name for name, _ in monomial if name in tree_leaves]
            if not in_tree:
                base_monomials += 1
                continue
            if len(in_tree) > 1:
                raise UnsupportedPolynomialError(
                    f"monomial {monomial.to_text()!r} contains {len(in_tree)} "
                    f"variables of tree {tree.root!r}; the single-tree "
                    "optimizer requires at most one (use optimize_greedy)"
                )
            leaf = in_tree[0]
            exponent = monomial.exponent(leaf)
            residue = monomial.without([leaf])
            residues_per_leaf[leaf].add((group_key, residue, exponent))
            occurrences[leaf] += 1

    # Bottom-up union of residue sets gives each node's load.
    loads: Dict[str, int] = {}
    residues_per_node: Dict[str, Set[Tuple]] = {}

    def visit(name: str) -> Set[Tuple]:
        node = tree.node(name)
        if node.is_leaf:
            residues = residues_per_leaf.get(name, set())
        else:
            residues = set()
            for child in node.children:
                residues |= visit(child)
        residues_per_node[name] = residues
        loads[name] = len(residues)
        return residues

    visit(tree.root)
    return _TreeLoadModel(
        tree=tree,
        loads=loads,
        base_monomials=base_monomials,
        leaf_occurrences=occurrences,
    )


def compute_size_profile(
    provenance: ProvenanceLike, tree: AbstractionTree
) -> Dict[int, int]:
    """The Pareto frontier of the size/expressiveness trade-off.

    For every achievable cut cardinality ``k`` (number of meta-variables the
    abstraction would define), return the minimal compressed provenance size
    any ``k``-node cut of ``tree`` can reach.  This is the curve the demo's
    meta-analyst explores when choosing a bound: reading the table answers
    both "how small can I get with k variables?" and "how many variables can
    I keep under bound B?" without committing to either.

    Requires the single-tree precondition (at most one tree variable per
    monomial), like :func:`optimize_single_tree`.
    """
    provenance_set = _as_provenance_set(provenance)
    upper_bound = provenance_set.size()
    result = optimize_single_tree(
        provenance_set, tree, bound=upper_bound, keep_trace=True
    )
    assert result.trace is not None
    root_table = result.trace["dp_table"][tree.root]
    base = result.trace["base_monomials"]
    return {
        cardinality: cost + base
        for cardinality, cost in sorted(root_table.items())
    }


def optimize_single_tree(
    provenance: ProvenanceLike,
    tree: AbstractionTree,
    bound: int,
    allow_infeasible: bool = False,
    keep_trace: bool = False,
) -> OptimizationResult:
    """Find the bound-respecting cut of ``tree`` with the most variables.

    Parameters
    ----------
    provenance:
        A polynomial, a sequence of polynomials or a :class:`ProvenanceSet`.
    tree:
        The abstraction tree.  Variables of the provenance that are not
        leaves of the tree are left untouched (and keep their freedom).
    bound:
        The maximum allowed number of monomials after compression.
    allow_infeasible:
        If the bound cannot be met even by the coarsest cut, return the
        smallest achievable abstraction flagged ``feasible=False`` instead of
        raising :class:`InfeasibleBoundError`.
    keep_trace:
        Keep the per-node loads and DP tables in ``result.trace`` (the demo's
        "under the hood" view).

    Returns
    -------
    OptimizationResult
        With ``algorithm="dynamic-programming"``.  Among cuts meeting the
        bound the one with the most nodes is chosen; ties are broken towards
        the smaller compressed size.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    provenance_set = _as_provenance_set(provenance)
    model = build_load_model(provenance_set, tree)

    # dp[node] maps cut-cardinality k -> minimal total load of a cut of the
    # subtree rooted at node using exactly k nodes; choice[] remembers how.
    dp: Dict[str, Dict[int, int]] = {}
    choice: Dict[str, Dict[int, Optional[Tuple[Tuple[str, int], ...]]]] = {}

    def visit(name: str) -> None:
        node = tree.node(name)
        if node.is_leaf:
            dp[name] = {1: model.loads[name]}
            choice[name] = {1: None}
            return
        for child in node.children:
            visit(child)
        # Knapsack-merge the children's tables.
        combined: Dict[int, int] = {0: 0}
        combined_choice: Dict[int, Tuple[Tuple[str, int], ...]] = {0: ()}
        for child in node.children:
            child_table = dp[child]
            new_combined: Dict[int, int] = {}
            new_choice: Dict[int, Tuple[Tuple[str, int], ...]] = {}
            for k_prefix, cost_prefix in combined.items():
                for k_child, cost_child in child_table.items():
                    k_total = k_prefix + k_child
                    cost_total = cost_prefix + cost_child
                    if k_total not in new_combined or cost_total < new_combined[k_total]:
                        new_combined[k_total] = cost_total
                        new_choice[k_total] = combined_choice[k_prefix] + (
                            (child, k_child),
                        )
            combined = new_combined
            combined_choice = new_choice

        table: Dict[int, int] = {}
        node_choice: Dict[int, Optional[Tuple[Tuple[str, int], ...]]] = {}
        for k, cost in combined.items():
            table[k] = cost
            node_choice[k] = combined_choice[k]
        # The alternative of cutting at this node itself (k = 1).
        own_load = model.loads[name]
        if 1 not in table or own_load < table[1]:
            table[1] = own_load
            node_choice[1] = None
        dp[name] = table
        choice[name] = node_choice

    visit(tree.root)

    root_table = dp[tree.root]
    feasible_ks = [
        k for k, cost in root_table.items()
        if cost + model.base_monomials <= bound
    ]

    feasible = bool(feasible_ks)
    if feasible:
        best_k = max(
            feasible_ks,
            key=lambda k: (k, -(root_table[k])),
        )
    else:
        best_achievable = min(root_table.values()) + model.base_monomials
        if not allow_infeasible:
            raise InfeasibleBoundError(bound, best_achievable)
        best_k = min(root_table, key=lambda k: (root_table[k], k))

    # Reconstruct the chosen cut.
    cut_nodes: List[str] = []

    def reconstruct(name: str, k: int) -> None:
        decision = choice[name][k]
        if decision is None:
            cut_nodes.append(name)
            return
        for child, k_child in decision:
            if k_child > 0:
                reconstruct(child, k_child)

    reconstruct(tree.root, best_k)
    cut = Cut(tree, cut_nodes)
    predicted_size = root_table[best_k] + model.base_monomials

    compression = apply_abstraction(provenance_set, cut)
    trace = None
    if keep_trace:
        trace = {
            "loads": dict(model.loads),
            "base_monomials": model.base_monomials,
            "leaf_occurrences": dict(model.leaf_occurrences),
            "dp_table": {name: dict(table) for name, table in dp.items()},
        }
    return OptimizationResult(
        cut=cut,
        cuts=(cut,),
        compression=compression,
        bound=bound,
        feasible=feasible,
        predicted_size=predicted_size,
        algorithm="dynamic-programming",
        trace=trace,
    )
