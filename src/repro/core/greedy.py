"""A greedy coarsening heuristic for abstraction selection.

The greedy optimiser starts from the finest abstraction (every leaf kept as
its own variable) and repeatedly *coarsens* the current cut at the inner
node offering the best trade-off — the most monomials saved per variable
given up — until the size bound is met or every tree has collapsed to its
root.

Unlike the exact dynamic program it makes no assumption about how many tree
variables a monomial contains, and it handles forests of several trees, so
it serves both as the general-case algorithm and as the ablation baseline
against the exact DP (benchmark E8).

Two interchangeable engines implement the search:

* ``strategy="legacy"`` — the original full-rescan loop: every candidate's
  gain is recomputed by scanning every monomial at every step;
* ``strategy="incremental"`` — the :mod:`repro.core.kernel` pipeline:
  delta-updated gain counters popped from a lazy max-heap, emitting the
  identical cut sequence at a fraction of the cost.

``strategy="auto"`` (the default) uses the incremental kernel whenever its
precondition holds (no inner-node name collides with a provenance variable)
and falls back to the legacy scan otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.exceptions import InfeasibleBoundError, UnsupportedPolynomialError
from repro.provenance.polynomial import Monomial, ProvenanceSet
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree, as_forest
from repro.core.compression import (
    Abstraction,
    ProvenanceLike,
    _as_provenance_set,
    apply_abstraction,
)
from repro.core.cut import Cut, leaf_cut
from repro.core.optimizer import OptimizationResult

TreeOrForest = Union[AbstractionTree, AbstractionForest]

_STRATEGIES = ("auto", "legacy", "incremental")


def _renamed_size(provenance: ProvenanceSet, rename: Dict[str, str]) -> int:
    """The number of monomials of ``provenance`` after applying ``rename``.

    Only monomials touching a renamed variable are re-keyed; untouched
    monomials keep their key, and the per-polynomial count is the number of
    distinct keys.  (Coefficient cancellation is ignored, so this is an upper
    bound that coincides with the true size in all non-degenerate cases.)
    """
    affected = set(rename)
    total = 0
    for _key, polynomial in provenance.items():
        keys: Set[Monomial] = set()
        for monomial, _coefficient in polynomial.terms():
            if any(name in affected for name, _ in monomial):
                keys.add(monomial.rename(rename))
            else:
                keys.add(monomial)
        total += len(keys)
    return total


def optimize_greedy(
    provenance: ProvenanceLike,
    trees: TreeOrForest,
    bound: int,
    allow_infeasible: bool = False,
    keep_trace: bool = False,
    strategy: str = "auto",
) -> OptimizationResult:
    """Greedily coarsen cuts of ``trees`` until the provenance fits ``bound``.

    At every step the candidate coarsenings are all inner nodes that would
    actually change some tree's current cut; the candidate with the highest
    ``monomials saved / variables lost`` ratio is applied (ties prefer fewer
    variables lost, then deeper nodes).  The search stops as soon as the
    current size is within the bound.

    ``strategy`` selects the engine (``"auto"``, ``"legacy"`` or
    ``"incremental"``); both engines produce identical cut sequences, and
    the returned :class:`~repro.core.optimizer.OptimizationResult` always
    has ``algorithm="greedy"`` with the engine recorded in ``strategy``.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
        )
    forest = as_forest(trees)
    provenance_set = _as_provenance_set(provenance)

    if strategy != "legacy":
        from repro.core.kernel.greedy import kernel_supports

        if kernel_supports(provenance_set, forest):
            return _optimize_greedy_incremental(
                provenance_set, forest, bound, allow_infeasible, keep_trace
            )
        if strategy == "incremental":
            raise UnsupportedPolynomialError(
                "the incremental kernel requires inner-node names disjoint "
                "from the provenance variables (use strategy='legacy')"
            )
    return _optimize_greedy_scan(
        provenance_set, forest, bound, allow_infeasible, keep_trace
    )


def _optimize_greedy_incremental(
    provenance_set: ProvenanceSet,
    forest: AbstractionForest,
    bound: int,
    allow_infeasible: bool,
    keep_trace: bool,
) -> OptimizationResult:
    """The kernel-backed engine: delta-updated gains, lazy-heap selection."""
    from repro.core.kernel.greedy import IncrementalGreedyKernel

    kernel = IncrementalGreedyKernel(provenance_set, forest)
    feasible = kernel.run(bound)
    if not feasible and not allow_infeasible:
        raise InfeasibleBoundError(bound, kernel.current_size)

    cuts = kernel.cuts()
    abstraction = Abstraction.from_cuts(cuts)
    compression = apply_abstraction(provenance_set, abstraction)
    trace = None
    if keep_trace:
        trace = {
            "steps": [
                {
                    "coarsened_at": step["coarsened_at"],
                    "tree": step["tree"],
                    "size_before": step["size_before"],
                    "size_after": step["size_after"],
                }
                for step in kernel.steps
            ]
        }
    return OptimizationResult(
        cut=cuts[0] if len(cuts) == 1 else None,
        cuts=cuts,
        compression=compression,
        bound=bound,
        feasible=feasible,
        predicted_size=kernel.current_size,
        algorithm="greedy",
        trace=trace,
        strategy="incremental",
    )


def _optimize_greedy_scan(
    provenance_set: ProvenanceSet,
    forest: AbstractionForest,
    bound: int,
    allow_infeasible: bool,
    keep_trace: bool,
) -> OptimizationResult:
    """The original engine: full candidate rescans at every step."""
    cuts: List[Cut] = [leaf_cut(tree) for tree in forest.trees()]
    current = provenance_set
    current_size = provenance_set.size()
    steps: List[Dict[str, object]] = []

    while current_size > bound:
        best: Optional[Tuple[float, int, int, int, str, Cut, Dict[str, str], int]] = None
        for index, tree in enumerate(forest.trees()):
            cut = cuts[index]
            for candidate in tree.inner_nodes():
                if candidate in cut.nodes:
                    continue
                replaced = {
                    name
                    for name in cut.nodes
                    if name == candidate or candidate in tree.ancestors(name)
                }
                if not replaced:
                    continue
                rename = {name: candidate for name in replaced}
                new_size = _renamed_size(current, rename)
                saved = current_size - new_size
                lost = len(replaced) - 1
                ratio = saved / max(lost, 1)
                depth = tree.depth(candidate)
                key = (ratio, -lost, depth)
                if best is None or key > (best[0], best[1], best[2]):
                    new_cut = cut.coarsen(candidate)
                    best = (
                        ratio,
                        -lost,
                        depth,
                        index,
                        candidate,
                        new_cut,
                        rename,
                        new_size,
                    )
        if best is None:
            break  # every tree is already at its root cut
        _, _, _, index, candidate, new_cut, rename, new_size = best
        cuts[index] = new_cut
        current = current.rename(rename)
        steps.append(
            {
                "coarsened_at": candidate,
                "tree": forest.trees()[index].root,
                "size_before": current_size,
                "size_after": new_size,
            }
        )
        current_size = new_size

    feasible = current_size <= bound
    if not feasible and not allow_infeasible:
        raise InfeasibleBoundError(bound, current_size)

    abstraction = Abstraction.from_cuts(cuts)
    compression = apply_abstraction(provenance_set, abstraction)
    single_cut = cuts[0] if len(cuts) == 1 else None
    trace = {"steps": steps} if keep_trace else None
    return OptimizationResult(
        cut=single_cut,
        cuts=tuple(cuts),
        compression=compression,
        bound=bound,
        feasible=feasible,
        predicted_size=current_size,
        algorithm="greedy",
        trace=trace,
        strategy="legacy",
    )
