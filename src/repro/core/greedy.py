"""A greedy coarsening heuristic for abstraction selection.

The greedy optimiser starts from the finest abstraction (every leaf kept as
its own variable) and repeatedly *coarsens* the current cut at the inner
node offering the best trade-off — the most monomials saved per variable
given up — until the size bound is met or every tree has collapsed to its
root.

Unlike the exact dynamic program it makes no assumption about how many tree
variables a monomial contains, and it handles forests of several trees, so
it serves both as the general-case algorithm and as the ablation baseline
against the exact DP (benchmark E8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.exceptions import InfeasibleBoundError
from repro.provenance.polynomial import Monomial, ProvenanceSet
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.core.compression import (
    Abstraction,
    ProvenanceLike,
    _as_provenance_set,
    apply_abstraction,
)
from repro.core.cut import Cut, leaf_cut
from repro.core.optimizer import OptimizationResult

TreeOrForest = Union[AbstractionTree, AbstractionForest]


def _as_forest(trees: TreeOrForest) -> AbstractionForest:
    if isinstance(trees, AbstractionForest):
        return trees
    return AbstractionForest([trees])


def _renamed_size(provenance: ProvenanceSet, rename: Dict[str, str]) -> int:
    """The number of monomials of ``provenance`` after applying ``rename``.

    Only monomials touching a renamed variable are re-keyed; untouched
    monomials keep their key, and the per-polynomial count is the number of
    distinct keys.  (Coefficient cancellation is ignored, so this is an upper
    bound that coincides with the true size in all non-degenerate cases.)
    """
    affected = set(rename)
    total = 0
    for _key, polynomial in provenance.items():
        keys: Set[Monomial] = set()
        for monomial, _coefficient in polynomial.terms():
            if any(name in affected for name, _ in monomial):
                keys.add(monomial.rename(rename))
            else:
                keys.add(monomial)
        total += len(keys)
    return total


def optimize_greedy(
    provenance: ProvenanceLike,
    trees: TreeOrForest,
    bound: int,
    allow_infeasible: bool = False,
    keep_trace: bool = False,
) -> OptimizationResult:
    """Greedily coarsen cuts of ``trees`` until the provenance fits ``bound``.

    At every step the candidate coarsenings are all inner nodes that would
    actually change some tree's current cut; the candidate with the highest
    ``monomials saved / variables lost`` ratio is applied (ties prefer fewer
    variables lost, then deeper nodes).  The search stops as soon as the
    current size is within the bound.

    Returns an :class:`~repro.core.optimizer.OptimizationResult` with
    ``algorithm="greedy"``.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    forest = _as_forest(trees)
    provenance_set = _as_provenance_set(provenance)

    cuts: List[Cut] = [leaf_cut(tree) for tree in forest.trees()]
    current = provenance_set
    current_size = provenance_set.size()
    steps: List[Dict[str, object]] = []

    while current_size > bound:
        best: Optional[Tuple[float, int, int, int, str, Cut, Dict[str, str], int]] = None
        for index, tree in enumerate(forest.trees()):
            cut = cuts[index]
            for candidate in tree.inner_nodes():
                if candidate in cut.nodes:
                    continue
                replaced = {
                    name
                    for name in cut.nodes
                    if name == candidate or candidate in tree.ancestors(name)
                }
                if not replaced:
                    continue
                rename = {name: candidate for name in replaced}
                new_size = _renamed_size(current, rename)
                saved = current_size - new_size
                lost = len(replaced) - 1
                ratio = saved / max(lost, 1)
                depth = tree.depth(candidate)
                key = (ratio, -lost, depth)
                if best is None or key > (best[0], best[1], best[2]):
                    new_cut = cut.coarsen(candidate)
                    best = (
                        ratio,
                        -lost,
                        depth,
                        index,
                        candidate,
                        new_cut,
                        rename,
                        new_size,
                    )
        if best is None:
            break  # every tree is already at its root cut
        _, _, _, index, candidate, new_cut, rename, new_size = best
        cuts[index] = new_cut
        current = current.rename(rename)
        steps.append(
            {
                "coarsened_at": candidate,
                "tree": forest.trees()[index].root,
                "size_before": current_size,
                "size_after": new_size,
            }
        )
        current_size = new_size

    feasible = current_size <= bound
    if not feasible and not allow_infeasible:
        raise InfeasibleBoundError(bound, current_size)

    abstraction = Abstraction.from_cuts(cuts)
    compression = apply_abstraction(provenance_set, abstraction)
    single_cut = cuts[0] if len(cuts) == 1 else None
    trace = {"steps": steps} if keep_trace else None
    return OptimizationResult(
        cut=single_cut,
        cuts=tuple(cuts),
        compression=compression,
        bound=bound,
        feasible=feasible,
        predicted_size=current_size,
        algorithm="greedy",
        trace=trace,
    )
