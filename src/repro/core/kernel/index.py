"""A CSR-style monomial-incidence index over a provenance set and forest.

The incremental greedy kernel needs, for every node of every abstraction
tree, the set of monomial rows its subtree touches — i.e. the rows whose
monomial contains at least one variable that is a descendant-or-self of the
node.  Building this naively per node is quadratic; this module takes the
shared variable-level incidence of the provenance
(:func:`repro.provenance.incidence.provenance_incidence` — the same builder
the sparse delta evaluators use) and aggregates the leaf incidence lists
bottom-up into one flat CSR layout:

* ``row_ids`` — a single ``int64`` array concatenating, node by node, the
  ascending row ids touching each node's subtree;
* ``node_ptr`` — node name → ``(start, end)`` slice into ``row_ids``.

Indexes are immutable and therefore safely shareable; :func:`incidence_index`
memoises them in a :class:`~repro.provenance.valuation.FingerprintCache`
keyed by ``(provenance.fingerprint(), forest signature)`` — the same
fingerprint-cached machinery the batch evaluator uses for compiled
provenance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.abstraction_tree import AbstractionForest
from repro.obs.tracer import trace
from repro.provenance.incidence import provenance_incidence
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.valuation import FingerprintCache

_EMPTY_ROWS = np.zeros(0, dtype=np.int64)


class MonomialIncidenceIndex:
    """Static incidence structure of a provenance set w.r.t. a forest.

    Attributes
    ----------
    rows:
        The flattened monomials, ``(group_index, factors, coefficient)`` per
        row, in deterministic order.
    variable_rows:
        variable name → ascending ``int64`` row-id array (the shared
        leaf-level incidence of :mod:`repro.provenance.incidence`).
    """

    __slots__ = ("rows", "variable_rows", "_row_ids", "_node_ptr")

    def __init__(self, provenance: ProvenanceSet, forest: AbstractionForest) -> None:
        incidence = provenance_incidence(provenance)
        self.rows = incidence.rows
        self.variable_rows = incidence.variable_rows

        # Bottom-up union of leaf incidence lists, laid out as one flat CSR
        # array (node → contiguous slice of ascending row ids).
        chunks: List[np.ndarray] = []
        self._node_ptr: Dict[str, Tuple[int, int]] = {}
        offset = 0

        def visit(tree, name: str) -> np.ndarray:
            nonlocal offset
            node = tree.node(name)
            if node.is_leaf:
                merged = incidence.rows_for(name)
            else:
                child_arrays = [visit(tree, child) for child in node.children]
                merged = (
                    np.unique(np.concatenate(child_arrays))
                    if child_arrays
                    else _EMPTY_ROWS
                )
            chunks.append(merged)
            self._node_ptr[name] = (offset, offset + len(merged))
            offset += len(merged)
            return merged

        for tree in forest.trees():
            visit(tree, tree.root)
        self._row_ids: np.ndarray = (
            np.concatenate(chunks) if chunks else _EMPTY_ROWS
        )

    def rows_under(self, node: str) -> np.ndarray:
        """Ascending ids of the rows touching the subtree rooted at ``node``."""
        start, end = self._node_ptr[node]
        return self._row_ids[start:end]

    def occurrences(self, node: str) -> int:
        """How many monomial rows the subtree rooted at ``node`` touches."""
        start, end = self._node_ptr[node]
        return end - start

    def num_rows(self) -> int:
        """Total number of monomial rows (the provenance size)."""
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"MonomialIncidenceIndex(rows={len(self.rows)}, "
            f"nodes={len(self._node_ptr)})"
        )


def forest_signature(forest: AbstractionForest) -> str:
    """A structural signature of a forest (stable across equal structures)."""
    return repr(forest.to_dict())


_INDEX_CACHE = FingerprintCache(capacity=8, metrics="kernel.incidence_cache")


def incidence_index(
    provenance: ProvenanceSet, forest: AbstractionForest
) -> MonomialIncidenceIndex:
    """The (cached) incidence index of ``provenance`` w.r.t. ``forest``."""
    key = (provenance.fingerprint(), forest_signature(forest))

    def build() -> MonomialIncidenceIndex:
        with trace("incidence.index", monomials=provenance.size()):
            return MonomialIncidenceIndex(provenance, forest)

    return _INDEX_CACHE.get_or_build(key, build)


def clear_incidence_cache() -> None:
    """Drop every cached incidence index (they can hold large row arrays).

    The cache is process-global — shared by every kernel construction — so
    this is a module-level release valve for long-running services that
    have moved on to other provenance sets, deliberately *not* tied to any
    one ``Compressor`` instance's ``clear_cache``.
    """
    _INDEX_CACHE.clear()
