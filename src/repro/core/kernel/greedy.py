"""The incremental greedy kernel: delta-updated merge-gain counters.

The legacy greedy (:func:`repro.core.greedy.optimize_greedy`) evaluates a
candidate coarsening at inner node ``v`` by renaming, for *every* monomial,
all current cut nodes below ``v`` to ``v`` and counting how many distinct
keys remain (``_renamed_size``).  This kernel maintains, per candidate, a
counter over those renamed keys ("signatures") so the gain

    ``gain(v) = touched(v) − |distinct signatures under v|``

is always available in O(1), and is *delta-updated* when a coarsening is
applied: only the monomials containing a renamed variable are removed,
merged and re-inserted, each touching only the counters of the inner-node
ancestors of its variables — O(affected monomials × depth) per step instead
of O(candidates × |provenance|).

Candidate selection pops from a lazy max-heap ordered by the exact key the
legacy greedy maximises — ``(ratio, -lost, depth)`` with ties broken towards
the earliest candidate in (tree order, preorder) — so the kernel emits the
**identical cut sequence** at every step, including the legacy quirks it
deliberately mirrors:

* ``ratio`` is the same float division ``saved / max(lost, 1)``;
* ``saved`` is measured against the legacy's *predicted* running size, which
  ignores coefficient cancellation, while the maintained monomial rows mirror
  the *actual* renamed provenance (cancelled rows dropped at the same
  ``_ZERO_EPSILON`` threshold ``Polynomial`` uses) — the two can drift apart
  for one step when coefficients cancel, and the kernel tracks both;
* ``lost`` counts *all* replaced cut nodes, including tree leaves that never
  occur in the provenance.

Precondition: no inner-node name of the forest may already occur as a
provenance variable (otherwise a renamed monomial could silently merge with
a pre-existing one, which the per-candidate counters do not model).  The
kernel raises :class:`~repro.exceptions.UnsupportedPolynomialError` in that
case; ``optimize_greedy(strategy="auto")`` falls back to the legacy scan.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.exceptions import UnsupportedPolynomialError
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace
from repro.provenance.polynomial import _ZERO_EPSILON, ProvenanceSet
from repro.core.abstraction_tree import (
    AbstractionForest,
    AbstractionTree,
    as_forest,
)
from repro.core.cut import Cut
from repro.core.kernel.index import MonomialIncidenceIndex, incidence_index

Factors = Tuple[Tuple[str, int], ...]


class _Candidate:
    """Mutable per-candidate state: gain counters and selection metadata."""

    __slots__ = (
        "name",
        "tree_index",
        "tree_root",
        "order",
        "depth",
        "active",
        "r_size",
        "touched",
        "sig_counts",
        "stamp",
        "descendants",
        "inner_descendants",
    )

    def __init__(
        self,
        name: str,
        tree_index: int,
        tree_root: str,
        order: int,
        depth: int,
        r_size: int,
        descendants: FrozenSet[str],
        inner_descendants: Tuple[str, ...],
    ) -> None:
        self.name = name
        self.tree_index = tree_index
        self.tree_root = tree_root
        self.order = order
        self.depth = depth
        self.active = True
        self.r_size = r_size          # |replaced cut nodes| (all, occurring or not)
        self.touched = 0              # live rows containing a variable below name
        self.sig_counts: Dict[Tuple, int] = {}
        self.stamp = 0                # bumped on every change; stale heap entries skip
        self.descendants = descendants
        self.inner_descendants = inner_descendants

    def gain(self) -> int:
        """Monomials saved by coarsening here (ignoring size-prediction drift)."""
        return self.touched - len(self.sig_counts)


def kernel_supports(
    provenance: ProvenanceSet, forest: AbstractionForest
) -> bool:
    """Whether the incremental kernel's precondition holds for this input."""
    inner: Set[str] = set()
    for tree in forest.trees():
        inner.update(tree.inner_nodes())
    return not (inner & set(provenance.variables()))


class IncrementalGreedyKernel:
    """Incremental state of a greedy coarsening run over one provenance set.

    The kernel is driven step by step — :meth:`best` peeks the top candidate,
    :meth:`apply` commits a coarsening — or in one go via :meth:`run`.
    :meth:`gain_table` exposes the delta-maintained ``(saved, lost, ratio)``
    of every active candidate, which the property tests compare against a
    naive full recompute after every step.
    """

    def __init__(
        self,
        provenance: ProvenanceSet,
        trees: Union[AbstractionTree, AbstractionForest],
        index: Optional[MonomialIncidenceIndex] = None,
    ) -> None:
        forest = as_forest(trees)
        if not kernel_supports(provenance, forest):
            raise UnsupportedPolynomialError(
                "an inner node of the abstraction forest already occurs as a "
                "provenance variable; the incremental kernel cannot model the "
                "resulting monomial merges (use the legacy greedy)"
            )
        self._forest = forest
        self._trees = forest.trees()
        if index is None:
            index = incidence_index(provenance, forest)
        self._index = index

        # Mutable row store, seeded from the index. Freed slots are never
        # reused; merged rows get fresh ids, preserving deterministic order.
        self._row_poly: List[int] = [row[0] for row in index.rows]
        self._row_factors: List[Factors] = [row[1] for row in index.rows]
        self._row_coeff: List[float] = [row[2] for row in index.rows]
        self._var_rows: Dict[str, Set[int]] = {
            name: set(ids) for name, ids in index.variable_rows.items()
        }

        # Node metadata shared by signature computation and row updates.
        self._ancestors: Dict[str, Tuple[str, ...]] = {}
        self._candidates: Dict[str, _Candidate] = {}
        order = 0
        for tree_index, tree in enumerate(self._trees):
            subtree_nodes: Dict[str, Set[str]] = {}
            for name in reversed(tree.nodes()):  # children before parents
                node = tree.node(name)
                members: Set[str] = set()
                for child in node.children:
                    members.add(child)
                    members |= subtree_nodes[child]
                subtree_nodes[name] = members
            for name in tree.nodes():
                self._ancestors[name] = tree.ancestors(name)
            for name in tree.inner_nodes():
                self._candidates[name] = _Candidate(
                    name=name,
                    tree_index=tree_index,
                    tree_root=tree.root,
                    order=order,
                    depth=tree.depth(name),
                    r_size=len(tree.leaves_under(name)),
                    descendants=frozenset(subtree_nodes[name]),
                    inner_descendants=tuple(
                        n for n in subtree_nodes[name] if not tree.is_leaf(n)
                    ),
                )
                order += 1

        # One cut-node set per tree (all members, occurring or not).
        self._cut_nodes: List[Set[str]] = [
            set(tree.leaves()) for tree in self._trees
        ]

        # Sizes: ``live_size`` mirrors the actual renamed provenance
        # (cancellation applied); ``current_size`` mirrors the legacy
        # greedy's predicted running size.
        self.live_size = len(index.rows)
        self.current_size = len(index.rows)
        self._prev_drift = 0
        self._steps: List[Dict[str, object]] = []
        # Plain-int instrumentation counters (flushed to the metrics
        # registry per run(); attribute adds keep the inner loops hot).
        self.heap_pops = 0
        self.gain_updates = 0

        # Initial gain counters straight off the CSR incidence index.
        for candidate in self._candidates.values():
            row_ids = index.rows_under(candidate.name)
            candidate.touched = len(row_ids)
            counts = candidate.sig_counts
            for rid in row_ids:
                key = self._signature(candidate, int(rid))
                counts[key] = counts.get(key, 0) + 1

        self._heap: List[Tuple] = []
        self._refresh(self._candidates.keys())

    # -- signatures and heap ----------------------------------------------

    @staticmethod
    def _renamed_factors(
        factors: Factors, below: FrozenSet[str], target: str
    ) -> Factors:
        """``factors`` with every variable in ``below`` merged into ``target``.

        The single canonical-renaming primitive: signatures predict it,
        :meth:`apply` commits it — both must agree monomial-for-monomial.
        """
        merged_exponent = 0
        rest: List[Tuple[str, int]] = []
        for name, exponent in factors:
            if name in below:
                merged_exponent += exponent
            else:
                rest.append((name, exponent))
        if merged_exponent:
            rest.append((target, merged_exponent))
            rest.sort()
        return tuple(rest)

    def _signature(self, candidate: _Candidate, rid: int) -> Tuple:
        """The renamed key a row takes if ``candidate`` is coarsened now."""
        return (
            self._row_poly[rid],
            self._renamed_factors(
                self._row_factors[rid], candidate.descendants, candidate.name
            ),
        )

    def _refresh(self, names) -> None:
        """Re-push heap entries for candidates whose selection key changed."""
        drift = self.current_size - self.live_size
        for name in names:
            candidate = self._candidates[name]
            if not candidate.active:
                continue
            self.gain_updates += 1
            candidate.stamp += 1
            saved = candidate.gain() + drift
            lost = candidate.r_size - 1
            ratio = saved / max(lost, 1)  # the legacy's exact float key
            heapq.heappush(
                self._heap,
                (
                    -ratio,
                    lost,
                    -candidate.depth,
                    candidate.order,
                    name,
                    candidate.stamp,
                ),
            )

    def best(self) -> Optional[str]:
        """The candidate the legacy greedy would pick now (``None`` if done)."""
        heap = self._heap
        while heap:
            _, _, _, _, name, stamp = heap[0]
            candidate = self._candidates[name]
            if not candidate.active or stamp != candidate.stamp:
                heapq.heappop(heap)  # stale lazy-heap entry
                self.heap_pops += 1
                continue
            return name
        return None

    # -- row bookkeeping ----------------------------------------------------

    def _row_candidates(self, rid: int) -> Set[str]:
        names: Set[str] = set()
        for name, _exponent in self._row_factors[rid]:
            ancestors = self._ancestors.get(name)
            if ancestors:
                names.update(ancestors)
        return names

    def _remove_row(self, rid: int, dirty: Set[str]) -> None:
        for name, _exponent in self._row_factors[rid]:
            rows = self._var_rows.get(name)
            if rows is not None:
                rows.discard(rid)
                if not rows:
                    del self._var_rows[name]
        for cname in self._row_candidates(rid):
            candidate = self._candidates[cname]
            if not candidate.active:
                continue
            key = self._signature(candidate, rid)
            counts = candidate.sig_counts
            remaining = counts[key] - 1
            if remaining:
                counts[key] = remaining
            else:
                del counts[key]
            candidate.touched -= 1
            dirty.add(cname)
        self.live_size -= 1

    def _add_row(
        self, poly: int, factors: Factors, coefficient: float, dirty: Set[str]
    ) -> None:
        rid = len(self._row_factors)
        self._row_poly.append(poly)
        self._row_factors.append(factors)
        self._row_coeff.append(coefficient)
        candidates: Set[str] = set()
        for name, _exponent in factors:
            self._var_rows.setdefault(name, set()).add(rid)
            ancestors = self._ancestors.get(name)
            if ancestors:
                candidates.update(ancestors)
        for cname in candidates:
            candidate = self._candidates[cname]
            if not candidate.active:
                continue
            key = self._signature(candidate, rid)
            counts = candidate.sig_counts
            counts[key] = counts.get(key, 0) + 1
            candidate.touched += 1
            dirty.add(cname)
        self.live_size += 1

    # -- the coarsening step --------------------------------------------------

    def apply(self, name: str) -> Dict[str, object]:
        """Coarsen at inner node ``name``, delta-updating all gain counters."""
        candidate = self._candidates.get(name)
        if candidate is None or not candidate.active:
            raise ValueError(f"{name!r} is not an active coarsening candidate")
        below = candidate.descendants

        # Affected rows: those containing an occurring variable below name
        # (intersect iterating the smaller of the two sets).
        affected: Set[int] = set()
        for var in below & self._var_rows.keys():
            affected |= self._var_rows[var]

        size_before = self.current_size
        live_before = self.live_size
        dirty: Set[str] = set()

        # Remove affected rows and group them by their renamed key, summing
        # coefficients exactly as ``ProvenanceSet.rename`` would.
        merged: Dict[Tuple[int, Factors], float] = {}
        for rid in sorted(affected):
            poly = self._row_poly[rid]
            coefficient = self._row_coeff[rid]
            self._remove_row(rid, dirty)
            key = (
                poly,
                self._renamed_factors(self._row_factors[rid], below, name),
            )
            merged[key] = merged.get(key, 0.0) + coefficient

        # The legacy's predicted size ignores coefficient cancellation...
        new_size = live_before - (len(affected) - len(merged))
        # ...while the maintained rows mirror the real rename (cancelled
        # rows dropped at the Polynomial normalisation threshold).
        for (poly, factors), coefficient in merged.items():
            if abs(coefficient) <= _ZERO_EPSILON:
                continue
            self._add_row(poly, factors, coefficient, dirty)

        # Cut bookkeeping: replace everything below name by name.
        cut = self._cut_nodes[candidate.tree_index]
        replaced_all = {node for node in cut if node in below}
        cut -= replaced_all
        cut.add(name)

        # name joins the cut; inner nodes strictly below lose their replaced
        # set — neither is ever a candidate again.
        candidate.active = False
        candidate.sig_counts = {}
        for inner in candidate.inner_descendants:
            other = self._candidates[inner]
            if other.active:
                other.active = False
                other.sig_counts = {}
        # Ancestors now replace one node (name) where they used to replace
        # all of name's members.
        shrink = candidate.r_size - 1
        for ancestor in self._ancestors[name]:
            above = self._candidates[ancestor]
            above.r_size -= shrink
            dirty.add(ancestor)

        self.current_size = new_size
        drift = self.current_size - self.live_size
        if drift != self._prev_drift:
            # A cancellation happened (or resolved): the uniform ``saved``
            # offset changed, so every active candidate's ratio is stale.
            self._prev_drift = drift
            dirty.update(
                cname
                for cname, state in self._candidates.items()
                if state.active
            )
        self._refresh(dirty)

        step = {
            "coarsened_at": name,
            "tree": candidate.tree_root,
            "tree_index": candidate.tree_index,
            "replaced": frozenset(replaced_all),
            "size_before": size_before,
            "size_after": new_size,
        }
        self._steps.append(step)
        return step

    def run(self, bound: int) -> bool:
        """Coarsen greedily until ``current_size <= bound`` (or no candidates).

        Returns whether the bound was met.  Each run is one traced
        ``kernel.run`` span; heap pops, gain updates and steps performed are
        flushed to the metrics registry (``kernel.*`` counters).
        """
        pops_before = self.heap_pops
        updates_before = self.gain_updates
        steps_before = len(self._steps)
        with trace(
            "kernel.run", bound=bound, size_before=self.current_size
        ) as span:
            while self.current_size > bound:
                name = self.best()
                if name is None:
                    break
                self.apply(name)
            met = self.current_size <= bound
            span.update(
                {
                    "size_after": self.current_size,
                    "steps": len(self._steps) - steps_before,
                    "met": met,
                }
            )
        registry = get_registry()
        registry.inc("kernel.steps", len(self._steps) - steps_before)
        registry.inc("kernel.heap_pops", self.heap_pops - pops_before)
        registry.inc("kernel.gain_updates", self.gain_updates - updates_before)
        return met

    # -- inspection -----------------------------------------------------------

    @property
    def steps(self) -> List[Dict[str, object]]:
        """The coarsening steps applied so far (richer than the legacy trace)."""
        return list(self._steps)

    def cuts(self) -> Tuple[Cut, ...]:
        """The current cut of every tree (trusted: valid by construction)."""
        return tuple(
            Cut.trusted(tree, frozenset(nodes))
            for tree, nodes in zip(self._trees, self._cut_nodes)
        )

    def gain_table(self) -> Dict[str, Dict[str, float]]:
        """``candidate → {saved, lost, ratio}`` for every active candidate.

        ``saved`` is exactly the legacy's ``current_size − _renamed_size``
        (including prediction drift after coefficient cancellations).
        """
        drift = self.current_size - self.live_size
        table: Dict[str, Dict[str, float]] = {}
        for name, candidate in self._candidates.items():
            if not candidate.active:
                continue
            saved = candidate.gain() + drift
            lost = candidate.r_size - 1
            table[name] = {
                "saved": saved,
                "lost": lost,
                "ratio": saved / max(lost, 1),
            }
        return table

    def __repr__(self) -> str:
        active = sum(1 for c in self._candidates.values() if c.active)
        return (
            f"IncrementalGreedyKernel(size={self.current_size}, "
            f"steps={len(self._steps)}, active_candidates={active})"
        )
