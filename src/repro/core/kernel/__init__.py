"""The incremental compression kernel.

The legacy greedy optimiser (:mod:`repro.core.greedy`) recomputes the merge
gain of **every** candidate inner node by scanning **every** monomial at
**every** coarsening step — O(steps × candidates × |provenance|).  This
package replaces those rescans with an incremental pipeline:

* :mod:`repro.core.kernel.index` — a CSR-style monomial-incidence index
  (tree node → the rows of monomials its subtree touches), built in one
  linear pass and cached by provenance fingerprint;
* :mod:`repro.core.kernel.greedy` — :class:`IncrementalGreedyKernel`:
  per-candidate merge-gain counters delta-updated in O(affected monomials)
  per coarsening, with candidate selection through a lazy max-heap;
* :mod:`repro.core.kernel.trajectory` — :class:`GreedyTrajectory`: the
  bound-independent coarsening trajectory, lazily extended and shared across
  bound sweeps ("compress once, then sweep").

The kernel is a pure optimisation: it emits the **identical cut sequence**
(and therefore identical compressed provenance) as the legacy greedy at
every step; ``tests/unit/test_kernel.py`` and
``tests/property/test_kernel_gain_parity.py`` enforce this.
"""

from repro.core.kernel.index import MonomialIncidenceIndex
from repro.core.kernel.greedy import IncrementalGreedyKernel
from repro.core.kernel.trajectory import GreedyTrajectory

__all__ = [
    "MonomialIncidenceIndex",
    "IncrementalGreedyKernel",
    "GreedyTrajectory",
]
