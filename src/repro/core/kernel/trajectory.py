"""Bound-independent coarsening trajectories ("compress once, then sweep").

The greedy coarsening order does not depend on the size bound — the bound
only decides *where the sequence stops*.  A :class:`GreedyTrajectory`
therefore runs the incremental kernel once, lazily extending the step
sequence as lower bounds are requested, and answers any bound query from the
recorded prefix: the cut for bound ``b`` is the state after the first step
whose size is within ``b`` — exactly where the legacy greedy would have
stopped.  A bound sweep (the ``cobra telephony`` experiment, the batch
service's compress-then-evaluate path) pays for the kernel once instead of
once per bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import InfeasibleBoundError
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace
from repro.provenance.polynomial import ProvenanceSet
from repro.core.abstraction_tree import (
    AbstractionForest,
    AbstractionTree,
    as_forest,
)
from repro.core.cut import Cut
from repro.core.kernel.greedy import IncrementalGreedyKernel


class GreedyTrajectory:
    """The lazily-extended coarsening trajectory of one (provenance, forest)."""

    def __init__(
        self,
        provenance: ProvenanceSet,
        trees: Union[AbstractionTree, AbstractionForest],
    ) -> None:
        forest = as_forest(trees)
        self.provenance = provenance
        self.forest = forest
        # Dropped once the trajectory is exhausted (see extend_to).
        self._kernel: Optional[IncrementalGreedyKernel] = IncrementalGreedyKernel(
            provenance, forest
        )
        self._steps: List[Dict[str, object]] = []
        self._sizes: List[int] = [self._kernel.current_size]  # after k steps
        self._exhausted = False

    @property
    def initial_size(self) -> int:
        """The provenance size before any coarsening."""
        return self._sizes[0]

    @property
    def num_steps(self) -> int:
        """How many coarsening steps have been materialised so far."""
        return len(self._steps)

    def extend_to(self, bound: int) -> None:
        """Materialise steps until the running size fits ``bound`` (or done).

        Each extension that actually coarsens is one traced
        ``kernel.coarsen`` span; the kernel's heap-pop/gain-update work is
        flushed to the ``kernel.*`` registry counters.
        """
        kernel = self._kernel
        if kernel is not None and self._sizes[-1] > bound and not self._exhausted:
            pops_before = kernel.heap_pops
            updates_before = kernel.gain_updates
            steps_before = len(self._steps)
            with trace(
                "kernel.coarsen", bound=bound, size_before=self._sizes[-1]
            ) as span:
                while self._sizes[-1] > bound and not self._exhausted:
                    name = kernel.best()
                    if name is None:
                        self._exhausted = True
                        break
                    step = kernel.apply(name)
                    self._steps.append(step)
                    self._sizes.append(kernel.current_size)
                span.update(
                    {
                        "steps": len(self._steps) - steps_before,
                        "size_after": self._sizes[-1],
                    }
                )
            registry = get_registry()
            registry.inc("kernel.steps", len(self._steps) - steps_before)
            registry.inc("kernel.heap_pops", kernel.heap_pops - pops_before)
            registry.inc(
                "kernel.gain_updates", kernel.gain_updates - updates_before
            )
        if self._exhausted and self._kernel is not None:
            # Fully coarsened: every further bound query is answered from
            # the recorded steps/sizes, so release the kernel's row store
            # (it grows with every step and is never consulted again).
            self._kernel = None

    def prefix_for(self, bound: int) -> Optional[int]:
        """The first step count whose size fits ``bound`` (``None`` if never).

        Sizes are non-increasing along the trajectory, so this is exactly
        the step at which the legacy greedy's ``while`` loop exits.
        """
        self.extend_to(bound)
        for count, size in enumerate(self._sizes):
            if size <= bound:
                return count
        return None

    def size_after(self, count: int) -> int:
        """The predicted provenance size after ``count`` steps."""
        return self._sizes[count]

    def cuts_after(self, count: int) -> Tuple[Cut, ...]:
        """The per-tree cuts after the first ``count`` steps (trusted)."""
        nodes = [set(tree.leaves()) for tree in self.forest.trees()]
        for step in self._steps[:count]:
            tree_index = step["tree_index"]
            nodes[tree_index] -= step["replaced"]
            nodes[tree_index].add(step["coarsened_at"])
        return tuple(
            Cut.trusted(tree, frozenset(members))
            for tree, members in zip(self.forest.trees(), nodes)
        )

    def trace_steps(self, count: int) -> List[Dict[str, object]]:
        """The first ``count`` steps in the legacy greedy's trace format."""
        return [
            {
                "coarsened_at": step["coarsened_at"],
                "tree": step["tree"],
                "size_before": step["size_before"],
                "size_after": step["size_after"],
            }
            for step in self._steps[:count]
        ]

    def resolve(self, bound: int, allow_infeasible: bool) -> Tuple[int, bool]:
        """The ``(step count, feasible)`` answer for ``bound``.

        Raises :class:`InfeasibleBoundError` when the bound is unreachable
        and ``allow_infeasible`` is false; otherwise an unreachable bound
        resolves to the fully-coarsened end of the trajectory, mirroring the
        legacy greedy's behaviour.
        """
        prefix = self.prefix_for(bound)
        if prefix is not None:
            return prefix, True
        if not allow_infeasible:
            raise InfeasibleBoundError(bound, self._sizes[-1])
        return len(self._steps), False

    def __repr__(self) -> str:
        return (
            f"GreedyTrajectory(size={self._sizes[0]} -> {self._sizes[-1]}, "
            f"steps={len(self._steps)}, exhausted={self._exhausted})"
        )
