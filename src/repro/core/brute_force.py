"""Exhaustive cut enumeration — the optimality oracle for small trees.

The brute-force optimiser enumerates *every* cut of the tree, applies each
abstraction for real and keeps the best bound-respecting one.  It is
exponential in the tree size and exists for two reasons:

* it is the ground truth the property-based tests compare the dynamic
  program against;
* it doubles as a baseline in the ablation benchmark (E8) showing why the
  DP matters even for moderately sized trees.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import InfeasibleBoundError
from repro.core.abstraction_tree import AbstractionTree
from repro.core.compression import ProvenanceLike, _as_provenance_set, apply_abstraction
from repro.core.cut import Cut, enumerate_cuts
from repro.core.optimizer import OptimizationResult


def optimize_brute_force(
    provenance: ProvenanceLike,
    tree: AbstractionTree,
    bound: int,
    allow_infeasible: bool = False,
    max_cuts: int = 200_000,
) -> OptimizationResult:
    """Exhaustively search all cuts of ``tree`` for the best feasible abstraction.

    The objective is identical to :func:`repro.core.optimizer.optimize_single_tree`:
    among cuts whose compressed size is at most ``bound``, maximise the number
    of cut nodes; ties are broken towards the smaller compressed size.  Unlike
    the DP, no assumption is made on how many tree variables a monomial
    contains — sizes are measured by actually applying each abstraction.

    Parameters
    ----------
    max_cuts:
        Safety valve: raise ``ValueError`` if the tree has more cuts than
        this, instead of silently running for hours.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")
    provenance_set = _as_provenance_set(provenance)

    best_feasible: Optional[tuple] = None   # (num_vars, -size, cut, compression)
    best_any: Optional[tuple] = None        # (-size, num_vars, cut, compression)

    examined = 0
    for cut in enumerate_cuts(tree):
        examined += 1
        if examined > max_cuts:
            raise ValueError(
                f"tree has more than {max_cuts} cuts; brute force is not "
                "applicable (use optimize_single_tree or optimize_greedy)"
            )
        compression = apply_abstraction(provenance_set, cut)
        size = compression.compressed_size
        num_vars = cut.num_variables()

        any_key = (-size, num_vars)
        if best_any is None or any_key > (best_any[0], best_any[1]):
            best_any = (-size, num_vars, cut, compression)

        if size <= bound:
            feasible_key = (num_vars, -size)
            if best_feasible is None or feasible_key > (
                best_feasible[0],
                best_feasible[1],
            ):
                best_feasible = (num_vars, -size, cut, compression)

    if best_feasible is not None:
        _, _, cut, compression = best_feasible
        feasible = True
    else:
        assert best_any is not None  # the tree always has at least one cut
        smallest_size = -best_any[0]
        if not allow_infeasible:
            raise InfeasibleBoundError(bound, smallest_size)
        _, _, cut, compression = best_any
        feasible = False

    return OptimizationResult(
        cut=cut,
        cuts=(cut,),
        compression=compression,
        bound=bound,
        feasible=feasible,
        predicted_size=compression.compressed_size,
        algorithm="brute-force",
        trace=None,
    )
