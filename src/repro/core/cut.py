"""Cuts of an abstraction tree — the representation of an abstraction.

A *cut* is a set of tree nodes such that every leaf has exactly one ancestor
(or itself) in the set; equivalently, an antichain separating the root from
all leaves.  Choosing a cut means: for every node in the cut, all of its
descendant leaves are replaced by a single meta-variable named after the
node (Example 3/4 of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.exceptions import InvalidCutError
from repro.core.abstraction_tree import AbstractionTree


class Cut:
    """A validated cut of an abstraction tree.

    Instances are immutable, hashable and iterable (over the node names in
    preorder of the tree).  The central operation is :meth:`mapping`, which
    yields the leaf → meta-variable renaming applied by the abstraction.
    """

    __slots__ = ("_tree", "_nodes")

    def __init__(self, tree: AbstractionTree, nodes: Iterable[str]) -> None:
        node_set = frozenset(nodes)
        if not node_set:
            raise InvalidCutError("a cut must contain at least one node")
        for name in node_set:
            if name not in tree:
                raise InvalidCutError(f"cut node {name!r} is not in the tree")

        # Each leaf must be covered by exactly one cut node (itself or an
        # ancestor).  This simultaneously checks coverage and the antichain
        # property.
        for leaf in tree.leaves():
            covering = [
                name
                for name in (leaf,) + tree.ancestors(leaf)
                if name in node_set
            ]
            if len(covering) == 0:
                raise InvalidCutError(f"leaf {leaf!r} is not covered by the cut")
            if len(covering) > 1:
                raise InvalidCutError(
                    f"leaf {leaf!r} is covered by multiple cut nodes: {covering}"
                )

        # No extraneous nodes: every cut node must cover at least one leaf
        # (always true in a tree where every node has a leaf descendant) and
        # must not be a strict ancestor/descendant of another cut node — this
        # follows from the unique-covering check above, but nodes covering
        # zero leaves cannot exist in a well-formed tree, so nothing more to do.
        self._tree = tree
        self._nodes = node_set

    # -- constructors -----------------------------------------------------

    @classmethod
    def of(cls, tree: AbstractionTree, *nodes: str) -> "Cut":
        """Convenience constructor: ``Cut.of(tree, "Business", "Special", "Standard")``."""
        return cls(tree, nodes)

    @classmethod
    def trusted(cls, tree: AbstractionTree, nodes: Iterable[str]) -> "Cut":
        """Build a cut *without* revalidating the leaf-coverage/antichain property.

        The ``__init__`` validation walks every leaf's ancestor chain — an
        O(leaves × depth) cost that is pure overhead for cuts derived from an
        already-valid cut by a structure-preserving operation (``coarsen``,
        ``leaf_cut``, ``root_cut``, the incremental kernel's internal steps).
        Those call sites use this fast path; user-supplied node sets must keep
        going through the validating constructor.
        """
        cut = cls.__new__(cls)
        cut._tree = tree
        cut._nodes = frozenset(nodes)
        return cut

    # -- access ------------------------------------------------------------

    @property
    def tree(self) -> AbstractionTree:
        """The tree this cut belongs to."""
        return self._tree

    @property
    def nodes(self) -> FrozenSet[str]:
        """The cut's node names."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[str]:
        order = {name: index for index, name in enumerate(self._tree.nodes())}
        return iter(sorted(self._nodes, key=order.get))

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cut):
            return NotImplemented
        return self._nodes == other._nodes and self._tree is other._tree

    def __hash__(self) -> int:
        return hash(self._nodes)

    # -- semantics -----------------------------------------------------------

    def num_variables(self) -> int:
        """The number of distinct variables the abstraction defines (|cut|)."""
        return len(self._nodes)

    def mapping(self) -> Dict[str, str]:
        """The leaf → meta-variable renaming induced by the cut.

        Leaves that are themselves cut nodes map to themselves (no change);
        other leaves map to their unique covering cut node's name.
        """
        result: Dict[str, str] = {}
        for node in self._nodes:
            for leaf in self._tree.leaves_under(node):
                result[leaf] = node
        return result

    def grouped_leaves(self) -> Dict[str, Tuple[str, ...]]:
        """For every cut node, the tuple of leaves it abstracts."""
        return {node: self._tree.leaves_under(node) for node in self._nodes}

    def is_leaf_cut(self) -> bool:
        """Whether this is the finest cut (every leaf is its own node)."""
        return self._nodes == frozenset(self._tree.leaves())

    def is_root_cut(self) -> bool:
        """Whether this is the coarsest cut (only the root)."""
        return self._nodes == frozenset({self._tree.root})

    def coarsen(self, node: str) -> "Cut":
        """Return the cut obtained by replacing all cut nodes below ``node`` by ``node``.

        ``node`` must be an ancestor of at least one current cut node (or a
        current cut node itself, in which case the cut is returned unchanged).
        """
        if node not in self._tree:
            raise InvalidCutError(f"node {node!r} is not in the tree")
        below = {
            name
            for name in self._nodes
            if name == node or node in self._tree.ancestors(name)
        }
        if not below:
            raise InvalidCutError(
                f"coarsening at {node!r} would not replace any cut node"
            )
        # Replacing all cut nodes at/below ``node`` by ``node`` preserves the
        # unique-covering property, so the result is valid by construction.
        return Cut.trusted(self._tree, (self._nodes - below) | {node})

    def __repr__(self) -> str:
        return f"Cut({sorted(self._nodes)})"


def leaf_cut(tree: AbstractionTree) -> Cut:
    """The finest cut: every leaf is kept as its own variable (no compression)."""
    return Cut.trusted(tree, tree.leaves())


def root_cut(tree: AbstractionTree) -> Cut:
    """The coarsest cut: all leaves collapse into a single meta-variable."""
    return Cut.trusted(tree, [tree.root])


def enumerate_cuts(tree: AbstractionTree) -> Iterator[Cut]:
    """Yield every cut of ``tree`` (exponentially many — small trees only).

    Cuts are produced by a recursive choice at every node: either take the
    node itself, or recurse into all of its children.
    """

    def choices(name: str) -> List[FrozenSet[str]]:
        node = tree.node(name)
        if node.is_leaf:
            return [frozenset({name})]
        result: List[FrozenSet[str]] = [frozenset({name})]
        child_choices = [choices(child) for child in node.children]
        combos: List[FrozenSet[str]] = [frozenset()]
        for options in child_choices:
            combos = [existing | option for existing in combos for option in options]
        result.extend(combos)
        return result

    for nodes in choices(tree.root):
        yield Cut(tree, nodes)


def count_cuts(tree: AbstractionTree) -> int:
    """The number of distinct cuts of ``tree`` (without materialising them)."""

    def count(name: str) -> int:
        node = tree.node(name)
        if node.is_leaf:
            return 1
        product = 1
        for child in node.children:
            product *= count(child)
        return 1 + product

    return count(tree.root)
