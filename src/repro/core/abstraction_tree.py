"""Abstraction trees: ontology-like hierarchies over provenance variables.

An abstraction tree (Section 2 of the paper, Figure 2) is a rooted tree
whose leaves are provenance variables and whose inner nodes are candidate
*meta-variables*.  A cut of the tree — an antichain separating the root from
every leaf — defines an abstraction: each leaf is replaced by the unique cut
node above (or equal to) it.

Trees are built once and never mutated afterwards; the constructor validates
structural well-formedness (unique names, single root, every non-leaf has at
least one child, leaves are exactly the nodes without children).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InvalidTreeError
from repro.provenance.variables import validate_variable_name


@dataclass(frozen=True)
class TreeNode:
    """A node of an abstraction tree.

    Attributes
    ----------
    name:
        The node's name.  For leaves this is the provenance variable name;
        for inner nodes it is the name the meta-variable will take if the
        node is chosen in a cut (e.g. ``"Business"``).
    children:
        The names of the node's children (empty for leaves).
    parent:
        The name of the parent node (``None`` for the root).
    """

    name: str
    children: Tuple[str, ...]
    parent: Optional[str]

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """Whether this node has no parent."""
        return self.parent is None


class AbstractionTree:
    """An immutable abstraction tree.

    The most convenient constructor is :meth:`from_nested`, which mirrors the
    way Figure 2 of the paper is usually written down::

        plans_tree = AbstractionTree.from_nested("Plans", {
            "Standard": ["p1", "p2"],
            "Special": {"F": ["f1", "f2"], "Y": ["y1", "y2", "y3"], "v": []},
            "Business": {"SB": ["b1", "b2"], "e": []},
        })

    A child given as an empty list/dict (like ``"v"`` above) is a leaf that
    is also written as an inner-node-like name — i.e. simply a leaf.
    """

    def __init__(self, root: str, edges: Mapping[str, Sequence[str]]) -> None:
        validate_variable_name(root)
        nodes: Dict[str, TreeNode] = {}
        parent_of: Dict[str, str] = {}
        children_of: Dict[str, Tuple[str, ...]] = {}

        all_names = {root}
        for parent, children in edges.items():
            validate_variable_name(parent)
            all_names.add(parent)
            seen_children = []
            for child in children:
                validate_variable_name(child)
                if child in parent_of:
                    raise InvalidTreeError(
                        f"node {child!r} has two parents: "
                        f"{parent_of[child]!r} and {parent!r}"
                    )
                if child == root:
                    raise InvalidTreeError(f"the root {root!r} cannot have a parent")
                parent_of[child] = parent
                seen_children.append(child)
                all_names.add(child)
            if len(seen_children) != len(set(seen_children)):
                raise InvalidTreeError(
                    f"node {parent!r} lists a duplicate child: {children}"
                )
            children_of[parent] = tuple(seen_children)

        # Every non-root node must be reachable from the root.
        for name in all_names:
            if name == root:
                continue
            if name not in parent_of:
                raise InvalidTreeError(
                    f"node {name!r} is not connected to the root {root!r}"
                )

        # Detect cycles / verify reachability by walking up from every node.
        for name in all_names:
            seen = set()
            current: Optional[str] = name
            while current is not None:
                if current in seen:
                    raise InvalidTreeError(f"cycle detected at node {current!r}")
                seen.add(current)
                current = parent_of.get(current)
            if root not in seen:
                raise InvalidTreeError(
                    f"node {name!r} does not reach the root {root!r}"
                )

        for name in all_names:
            nodes[name] = TreeNode(
                name=name,
                children=children_of.get(name, ()),
                parent=parent_of.get(name),
            )

        self._root = root
        self._nodes = nodes
        self._leaves: Tuple[str, ...] = tuple(
            name for name in self._preorder() if nodes[name].is_leaf
        )
        if not self._leaves:
            raise InvalidTreeError("an abstraction tree must have at least one leaf")
        self._leaves_under_cache: Dict[str, Tuple[str, ...]] = {}

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_nested(cls, root: str, structure) -> "AbstractionTree":
        """Build a tree from a nested dict/list structure rooted at ``root``.

        ``structure`` may be a mapping (child name → its own structure), an
        iterable of leaf names, or an empty container (making ``root`` a
        leaf).
        """
        edges: Dict[str, List[str]] = {}

        def visit(name: str, node_structure) -> None:
            if isinstance(node_structure, Mapping):
                children = list(node_structure.keys())
                if children:
                    edges[name] = children
                for child, sub in node_structure.items():
                    visit(child, sub)
            elif isinstance(node_structure, (list, tuple, set)):
                children = list(node_structure)
                if children:
                    edges[name] = [
                        child if isinstance(child, str) else list(child.keys())[0]
                        for child in children
                    ]
                    for child in children:
                        if isinstance(child, str):
                            continue
                        if isinstance(child, Mapping):
                            for sub_name, sub in child.items():
                                visit(sub_name, sub)
                        else:
                            raise InvalidTreeError(
                                f"unsupported child specification: {child!r}"
                            )
            elif node_structure is None:
                return
            else:
                raise InvalidTreeError(
                    f"unsupported structure for node {name!r}: {node_structure!r}"
                )

        visit(root, structure)
        return cls(root, edges)

    @classmethod
    def from_groups(
        cls, root: str, groups: Mapping[str, Sequence[str]]
    ) -> "AbstractionTree":
        """Build a two-level tree: root → group meta-variables → leaves.

        This matches the "quarter variables grouping month variables" example
        of Section 4: ``AbstractionTree.from_groups("Months", {"q1": ["m1",
        "m2", "m3"], ...})``.
        """
        edges: Dict[str, Sequence[str]] = {root: list(groups.keys())}
        for group, leaves in groups.items():
            if leaves:
                edges[group] = list(leaves)
        return cls(root, edges)

    @classmethod
    def flat(cls, root: str, leaves: Sequence[str]) -> "AbstractionTree":
        """Build a one-level tree: every leaf is a direct child of the root."""
        return cls(root, {root: list(leaves)})

    # -- navigation ------------------------------------------------------------

    @property
    def root(self) -> str:
        """The name of the root node."""
        return self._root

    def node(self, name: str) -> TreeNode:
        """The node named ``name`` (raises :class:`InvalidTreeError` if absent)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise InvalidTreeError(f"no node named {name!r} in the tree") from None

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Tuple[str, ...]:
        """All node names in preorder (root first)."""
        return tuple(self._preorder())

    def leaves(self) -> Tuple[str, ...]:
        """All leaf names (the provenance variables the tree covers), in preorder."""
        return self._leaves

    def inner_nodes(self) -> Tuple[str, ...]:
        """All non-leaf node names, in preorder."""
        return tuple(n for n in self._preorder() if not self._nodes[n].is_leaf)

    def children(self, name: str) -> Tuple[str, ...]:
        """The children of ``name``."""
        return self.node(name).children

    def parent(self, name: str) -> Optional[str]:
        """The parent of ``name`` (``None`` for the root)."""
        return self.node(name).parent

    def is_leaf(self, name: str) -> bool:
        """Whether ``name`` is a leaf."""
        return self.node(name).is_leaf

    def leaves_under(self, name: str) -> Tuple[str, ...]:
        """All leaves in the subtree rooted at ``name`` (cached)."""
        cached = self._leaves_under_cache.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        if node.is_leaf:
            result: Tuple[str, ...] = (name,)
        else:
            collected: List[str] = []
            for child in node.children:
                collected.extend(self.leaves_under(child))
            result = tuple(collected)
        self._leaves_under_cache[name] = result
        return result

    def ancestors(self, name: str) -> Tuple[str, ...]:
        """The ancestors of ``name`` from its parent up to the root."""
        result: List[str] = []
        current = self.node(name).parent
        while current is not None:
            result.append(current)
            current = self._nodes[current].parent
        return tuple(result)

    def depth(self, name: str) -> int:
        """The depth of ``name`` (0 for the root)."""
        return len(self.ancestors(name))

    def height(self) -> int:
        """The height of the tree (max leaf depth)."""
        return max(self.depth(leaf) for leaf in self._leaves)

    def subtree_size(self, name: str) -> int:
        """The number of nodes in the subtree rooted at ``name``."""
        node = self.node(name)
        return 1 + sum(self.subtree_size(child) for child in node.children)

    def _preorder(self) -> Iterator[str]:
        stack = [self._root]
        while stack:
            name = stack.pop()
            yield name
            # reversed so children come out in declaration order
            stack.extend(reversed(self._nodes[name].children))

    # -- (de)serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation: ``{"root": ..., "edges": {...}}``.

        The inverse of :meth:`from_dict`; this is the on-disk format the CLI
        (``cobra compress --tree tree.json``) reads.
        """
        edges = {
            name: list(self._nodes[name].children)
            for name in self._preorder()
            if self._nodes[name].children
        }
        return {"root": self._root, "edges": edges}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AbstractionTree":
        """Rebuild a tree from the dictionary produced by :meth:`to_dict`."""
        if "root" not in data:
            raise InvalidTreeError("tree dictionary must contain a 'root' key")
        edges = data.get("edges", {})
        if not isinstance(edges, Mapping):
            raise InvalidTreeError("'edges' must be a mapping of node -> children")
        return cls(str(data["root"]), {str(k): list(v) for k, v in edges.items()})

    # -- rendering -----------------------------------------------------------

    def to_ascii(self) -> str:
        """An ASCII rendering of the tree (used by the CLI's "under the hood" view)."""
        lines: List[str] = []

        def visit(name: str, prefix: str, is_last: bool) -> None:
            connector = "" if not prefix and is_last else ("└── " if is_last else "├── ")
            if name == self._root:
                lines.append(name)
            else:
                lines.append(prefix + connector + name)
            children = self._nodes[name].children
            for i, child in enumerate(children):
                extension = "" if name == self._root else ("    " if is_last else "│   ")
                visit(child, prefix + extension, i == len(children) - 1)

        visit(self._root, "", True)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AbstractionTree(root={self._root!r}, nodes={len(self._nodes)}, "
            f"leaves={len(self._leaves)})"
        )


class AbstractionForest:
    """A collection of disjoint abstraction trees over disjoint variable sets.

    The demo considers a single tree, but the underlying framework (and the
    Section 4 discussion of month/quarter variables *in addition to* the plan
    tree) naturally involves several trees; :mod:`repro.core.multi_tree`
    optimises over forests.
    """

    def __init__(self, trees: Iterable[AbstractionTree]) -> None:
        self._trees: List[AbstractionTree] = list(trees)
        if not self._trees:
            raise InvalidTreeError("a forest must contain at least one tree")
        seen_nodes: Dict[str, int] = {}
        for index, tree in enumerate(self._trees):
            for name in tree.nodes():
                if name in seen_nodes:
                    raise InvalidTreeError(
                        f"node name {name!r} appears in two trees of the forest"
                    )
                seen_nodes[name] = index
        self._owner = seen_nodes

    def trees(self) -> Tuple[AbstractionTree, ...]:
        """The member trees, in construction order."""
        return tuple(self._trees)

    def __len__(self) -> int:
        return len(self._trees)

    def __iter__(self) -> Iterator[AbstractionTree]:
        return iter(self._trees)

    def tree_of(self, name: str) -> Optional[AbstractionTree]:
        """The tree containing node ``name`` (``None`` if no tree has it)."""
        index = self._owner.get(name)
        if index is None:
            return None
        return self._trees[index]

    def leaves(self) -> Tuple[str, ...]:
        """All leaves of all trees."""
        result: List[str] = []
        for tree in self._trees:
            result.extend(tree.leaves())
        return tuple(result)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation (a list of tree dictionaries)."""
        return {"trees": [tree.to_dict() for tree in self._trees]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AbstractionForest":
        """Rebuild a forest from the dictionary produced by :meth:`to_dict`."""
        trees = data.get("trees")
        if not isinstance(trees, (list, tuple)):
            raise InvalidTreeError("forest dictionary must contain a 'trees' list")
        return cls([AbstractionTree.from_dict(tree) for tree in trees])

    def __repr__(self) -> str:
        return f"AbstractionForest(trees={len(self._trees)})"


def as_forest(trees: "AbstractionTree | AbstractionForest") -> AbstractionForest:
    """Coerce a single tree to a one-tree forest (forests pass through)."""
    if isinstance(trees, AbstractionForest):
        return trees
    return AbstractionForest([trees])
