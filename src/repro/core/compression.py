"""Applying an abstraction to provenance: the compression step itself.

An :class:`Abstraction` is a variable → meta-variable mapping, usually
induced by one cut per tree of a forest.  Applying it to a polynomial (or a
whole :class:`~repro.provenance.polynomial.ProvenanceSet`) renames variables
and merges monomials that become identical, summing their coefficients —
the mechanism by which provenance shrinks (Example 4 of the paper).

:class:`Compressor` is the service façade over the abstraction-selection
algorithms: it routes a ``(provenance, trees, bound)`` request to the chosen
strategy and, for the incremental kernel, caches the bound-independent
coarsening trajectory by provenance fingerprint so bound sweeps pay for the
search once ("compress once, then sweep").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import AbstractionError
from repro.obs.tracer import trace as obs_trace
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree, as_forest
from repro.core.cut import Cut


@dataclass(frozen=True)
class Abstraction:
    """A variable → meta-variable mapping, with the cuts that induced it.

    Attributes
    ----------
    mapping:
        The renaming applied to provenance variables.  Variables not in the
        mapping are left untouched.
    cuts:
        The cuts (one per abstraction tree) this abstraction was derived
        from; empty for hand-built abstractions.
    """

    mapping: Mapping[str, str]
    cuts: Tuple[Cut, ...] = ()

    @classmethod
    def identity(cls) -> "Abstraction":
        """The abstraction that changes nothing."""
        return cls({})

    @classmethod
    def from_cut(cls, cut: Cut) -> "Abstraction":
        """The abstraction induced by a single cut."""
        return cls(cut.mapping(), (cut,))

    @classmethod
    def from_cuts(cls, cuts: Sequence[Cut]) -> "Abstraction":
        """The abstraction induced by one cut per tree of a forest."""
        mapping: Dict[str, str] = {}
        for cut in cuts:
            for leaf, meta in cut.mapping().items():
                if leaf in mapping and mapping[leaf] != meta:
                    raise AbstractionError(
                        f"variable {leaf!r} is mapped to both "
                        f"{mapping[leaf]!r} and {meta!r}"
                    )
                mapping[leaf] = meta
        return cls(mapping, tuple(cuts))

    @classmethod
    def from_groups(cls, groups: Mapping[str, Iterable[str]]) -> "Abstraction":
        """A hand-built abstraction: meta-variable name → variables it replaces."""
        mapping: Dict[str, str] = {}
        for meta, variables in groups.items():
            for variable in variables:
                if variable in mapping:
                    raise AbstractionError(
                        f"variable {variable!r} appears in two groups"
                    )
                mapping[variable] = meta
        return cls(mapping)

    # -- (de)serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation (meta-variable → grouped variables).

        The cut objects are not serialised — only the induced grouping, which
        is all an analyst-side tool needs to interpret compressed provenance.
        """
        return {"groups": {meta: list(members)
                           for meta, members in self.grouped_variables().items()}}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Abstraction":
        """Rebuild an abstraction from the dictionary produced by :meth:`to_dict`."""
        groups = data.get("groups")
        if not isinstance(groups, Mapping):
            raise AbstractionError("abstraction dictionary must contain 'groups'")
        return cls.from_groups({str(meta): list(members)
                                for meta, members in groups.items()})

    # -- inspection ------------------------------------------------------------

    def meta_variables(self) -> Tuple[str, ...]:
        """The distinct meta-variable names introduced by this abstraction."""
        return tuple(sorted(set(self.mapping.values())))

    def grouped_variables(self) -> Dict[str, Tuple[str, ...]]:
        """meta-variable → the original variables it replaces (sorted)."""
        groups: Dict[str, List[str]] = {}
        for variable, meta in self.mapping.items():
            groups.setdefault(meta, []).append(variable)
        return {meta: tuple(sorted(vs)) for meta, vs in groups.items()}

    def is_identity(self) -> bool:
        """Whether the abstraction leaves every variable unchanged."""
        return all(variable == meta for variable, meta in self.mapping.items())

    def degrees_of_freedom(self, variables: Iterable[str]) -> int:
        """Number of distinct variable names after abstraction, over ``variables``.

        This is the expressiveness measure of the paper restricted to the
        variables actually appearing in the provenance.
        """
        return len({self.mapping.get(v, v) for v in variables})


@dataclass(frozen=True)
class CompressionResult:
    """The outcome of applying an abstraction to a provenance set.

    Attributes
    ----------
    compressed:
        The abstracted provenance.
    abstraction:
        The abstraction that was applied.
    original_size / compressed_size:
        Total number of monomials before and after.
    original_variables / compressed_variables:
        Number of distinct variables before and after.
    """

    compressed: ProvenanceSet
    abstraction: Abstraction
    original_size: int
    compressed_size: int
    original_variables: int
    compressed_variables: int

    @property
    def size_reduction(self) -> int:
        """How many monomials were removed by the compression."""
        return self.original_size - self.compressed_size

    @property
    def compression_ratio(self) -> float:
        """``compressed_size / original_size`` (1.0 when nothing was gained)."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def variable_retention(self) -> float:
        """``compressed_variables / original_variables`` (1.0 = full freedom kept)."""
        if self.original_variables == 0:
            return 1.0
        return self.compressed_variables / self.original_variables

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline numbers (for reports/benchmarks)."""
        return {
            "original_size": self.original_size,
            "compressed_size": self.compressed_size,
            "size_reduction": self.size_reduction,
            "compression_ratio": self.compression_ratio,
            "original_variables": self.original_variables,
            "compressed_variables": self.compressed_variables,
            "variable_retention": self.variable_retention,
        }


ProvenanceLike = Union[Polynomial, ProvenanceSet, Sequence[Polynomial]]


def _as_provenance_set(provenance: ProvenanceLike) -> ProvenanceSet:
    if isinstance(provenance, ProvenanceSet):
        return provenance
    if isinstance(provenance, Polynomial):
        result = ProvenanceSet()
        result[(0,)] = provenance
        return result
    result = ProvenanceSet()
    for index, polynomial in enumerate(provenance):
        if not isinstance(polynomial, Polynomial):
            raise AbstractionError(
                f"expected Polynomial items, got {type(polynomial).__name__}"
            )
        result[(index,)] = polynomial
    return result


def apply_abstraction(
    provenance: ProvenanceLike,
    abstraction: "Abstraction | Cut | Mapping[str, str]",
) -> CompressionResult:
    """Apply ``abstraction`` to ``provenance`` and return a :class:`CompressionResult`.

    ``provenance`` may be a single polynomial, a sequence of polynomials or a
    keyed :class:`ProvenanceSet`; ``abstraction`` may be an
    :class:`Abstraction`, a :class:`~repro.core.cut.Cut` or a bare renaming
    mapping.
    """
    if isinstance(abstraction, Cut):
        abstraction = Abstraction.from_cut(abstraction)
    elif isinstance(abstraction, Mapping) and not isinstance(abstraction, Abstraction):
        abstraction = Abstraction(dict(abstraction))

    provenance_set = _as_provenance_set(provenance)
    compressed = provenance_set.rename(dict(abstraction.mapping))
    return CompressionResult(
        compressed=compressed,
        abstraction=abstraction,
        original_size=provenance_set.size(),
        compressed_size=compressed.size(),
        original_variables=provenance_set.num_variables(),
        compressed_variables=compressed.num_variables(),
    )


class Compressor:
    """Strategy-routing compression service with a trajectory cache.

    ``strategy`` values:

    * ``"incremental"`` (default) — the :mod:`repro.core.kernel` greedy: the
      bound-independent coarsening trajectory is computed once per distinct
      ``(provenance, forest)`` pair (keyed by content fingerprint + forest
      structure), lazily extended, and every bound is answered from its
      prefix.  Identical cuts to the legacy greedy, at a fraction of the
      cost — and a *sweep* of bounds costs barely more than one.  Inputs
      the kernel cannot model (an inner-node name colliding with a
      provenance variable) fall back to the legacy greedy transparently.
    * ``"legacy"`` — the original full-rescan greedy.
    * ``"auto"`` / ``"dp"`` / ``"exact"`` / ``"greedy"`` — delegated to
      :func:`repro.core.multi_tree.optimize_forest` unchanged.

    The cache makes a single ``Compressor`` shareable between a
    :class:`~repro.engine.session.CobraSession` and the batch service.
    """

    _FOREST_STRATEGIES = ("auto", "dp", "exact", "greedy")

    def __init__(self, cache_size: int = 8) -> None:
        from repro.provenance.valuation import FingerprintCache

        self._trajectories = FingerprintCache(
            cache_size, metrics="compress.trajectory_cache"
        )

    def compress(
        self,
        provenance: ProvenanceLike,
        trees: "AbstractionTree | AbstractionForest",
        bound: int,
        strategy: str = "incremental",
        allow_infeasible: bool = False,
        keep_trace: bool = False,
    ) -> "OptimizationResult":
        """Select and apply the best abstraction of ``trees`` under ``bound``."""
        if bound < 0:
            raise ValueError("bound must be non-negative")
        with obs_trace("compress.run", strategy=strategy, bound=bound):
            return self._compress(
                provenance, trees, bound, strategy, allow_infeasible, keep_trace
            )

    def _compress(
        self,
        provenance: ProvenanceLike,
        trees: "AbstractionTree | AbstractionForest",
        bound: int,
        strategy: str,
        allow_infeasible: bool,
        keep_trace: bool,
    ) -> "OptimizationResult":
        if strategy == "legacy":
            from repro.core.greedy import optimize_greedy

            return optimize_greedy(
                provenance,
                trees,
                bound,
                allow_infeasible=allow_infeasible,
                keep_trace=keep_trace,
                strategy="legacy",
            )
        if strategy in self._FOREST_STRATEGIES:
            from repro.core.multi_tree import optimize_forest

            return optimize_forest(
                provenance,
                trees,
                bound,
                method=strategy,
                allow_infeasible=allow_infeasible,
                keep_trace=keep_trace,
            )
        if strategy != "incremental":
            raise ValueError(
                f"unknown strategy {strategy!r}; expected 'incremental', "
                f"'legacy' or one of {self._FOREST_STRATEGIES}"
            )

        provenance_set = _as_provenance_set(provenance)
        forest = as_forest(trees)

        from repro.core.kernel.greedy import kernel_supports

        if not kernel_supports(provenance_set, forest):
            # Inner-node name collides with a provenance variable: the
            # kernel cannot model the resulting merges, so the service
            # falls back to the (identical-output) legacy greedy rather
            # than failing the request.
            from repro.core.greedy import optimize_greedy

            return optimize_greedy(
                provenance_set,
                forest,
                bound,
                allow_infeasible=allow_infeasible,
                keep_trace=keep_trace,
                strategy="legacy",
            )
        trajectory = self._trajectory(provenance_set, forest)
        prefix, feasible = trajectory.resolve(bound, allow_infeasible)
        cuts = trajectory.cuts_after(prefix)
        abstraction = Abstraction.from_cuts(cuts)
        compression = apply_abstraction(provenance_set, abstraction)
        trace = {"steps": trajectory.trace_steps(prefix)} if keep_trace else None

        from repro.core.optimizer import OptimizationResult

        return OptimizationResult(
            cut=cuts[0] if len(cuts) == 1 else None,
            cuts=cuts,
            compression=compression,
            bound=bound,
            feasible=feasible,
            predicted_size=trajectory.size_after(prefix),
            algorithm="greedy",
            trace=trace,
            strategy="incremental",
        )

    def sweep(
        self,
        provenance: ProvenanceLike,
        trees: "AbstractionTree | AbstractionForest",
        bounds: Iterable[int],
        strategy: str = "incremental",
        allow_infeasible: bool = False,
    ) -> Dict[int, "OptimizationResult"]:
        """Compress under every bound in ``bounds`` (one trajectory, N prefixes)."""
        return {
            int(bound): self.compress(
                provenance,
                trees,
                int(bound),
                strategy=strategy,
                allow_infeasible=allow_infeasible,
            )
            for bound in bounds
        }

    def _trajectory(self, provenance_set: ProvenanceSet, forest: AbstractionForest):
        from repro.core.kernel.index import forest_signature
        from repro.core.kernel.trajectory import GreedyTrajectory

        # Cut equality requires tree *identity*, so the key pins the exact
        # tree objects alongside the structural fingerprints.
        key = (
            provenance_set.fingerprint(),
            forest_signature(forest),
            tuple(id(tree) for tree in forest.trees()),
        )
        def build():
            with obs_trace(
                "compress.trajectory", monomials=provenance_set.size()
            ):
                return GreedyTrajectory(provenance_set, forest)

        return self._trajectories.get_or_build(key, build)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the trajectory cache."""
        return self._trajectories.info()

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Deprecated alias for :meth:`cache_info` (kept as a thin view).

        The canonical surface is the process-wide metrics registry
        (``repro.obs.get_registry().snapshot()``, counters
        ``compress.trajectory_cache.hits`` / ``.misses``).
        """
        return self.cache_info()

    def clear_cache(self) -> None:
        """Drop this instance's cached trajectories (counters are kept).

        The kernel's incidence-index cache is process-global (shared by all
        compressors and the greedy's ``"auto"`` path); release it explicitly
        via :func:`repro.core.kernel.index.clear_incidence_cache`.
        """
        self._trajectories.clear()
