"""Applying an abstraction to provenance: the compression step itself.

An :class:`Abstraction` is a variable → meta-variable mapping, usually
induced by one cut per tree of a forest.  Applying it to a polynomial (or a
whole :class:`~repro.provenance.polynomial.ProvenanceSet`) renames variables
and merges monomials that become identical, summing their coefficients —
the mechanism by which provenance shrinks (Example 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import AbstractionError
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.core.cut import Cut


@dataclass(frozen=True)
class Abstraction:
    """A variable → meta-variable mapping, with the cuts that induced it.

    Attributes
    ----------
    mapping:
        The renaming applied to provenance variables.  Variables not in the
        mapping are left untouched.
    cuts:
        The cuts (one per abstraction tree) this abstraction was derived
        from; empty for hand-built abstractions.
    """

    mapping: Mapping[str, str]
    cuts: Tuple[Cut, ...] = ()

    @classmethod
    def identity(cls) -> "Abstraction":
        """The abstraction that changes nothing."""
        return cls({})

    @classmethod
    def from_cut(cls, cut: Cut) -> "Abstraction":
        """The abstraction induced by a single cut."""
        return cls(cut.mapping(), (cut,))

    @classmethod
    def from_cuts(cls, cuts: Sequence[Cut]) -> "Abstraction":
        """The abstraction induced by one cut per tree of a forest."""
        mapping: Dict[str, str] = {}
        for cut in cuts:
            for leaf, meta in cut.mapping().items():
                if leaf in mapping and mapping[leaf] != meta:
                    raise AbstractionError(
                        f"variable {leaf!r} is mapped to both "
                        f"{mapping[leaf]!r} and {meta!r}"
                    )
                mapping[leaf] = meta
        return cls(mapping, tuple(cuts))

    @classmethod
    def from_groups(cls, groups: Mapping[str, Iterable[str]]) -> "Abstraction":
        """A hand-built abstraction: meta-variable name → variables it replaces."""
        mapping: Dict[str, str] = {}
        for meta, variables in groups.items():
            for variable in variables:
                if variable in mapping:
                    raise AbstractionError(
                        f"variable {variable!r} appears in two groups"
                    )
                mapping[variable] = meta
        return cls(mapping)

    # -- (de)serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable representation (meta-variable → grouped variables).

        The cut objects are not serialised — only the induced grouping, which
        is all an analyst-side tool needs to interpret compressed provenance.
        """
        return {"groups": {meta: list(members)
                           for meta, members in self.grouped_variables().items()}}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Abstraction":
        """Rebuild an abstraction from the dictionary produced by :meth:`to_dict`."""
        groups = data.get("groups")
        if not isinstance(groups, Mapping):
            raise AbstractionError("abstraction dictionary must contain 'groups'")
        return cls.from_groups({str(meta): list(members)
                                for meta, members in groups.items()})

    # -- inspection ------------------------------------------------------------

    def meta_variables(self) -> Tuple[str, ...]:
        """The distinct meta-variable names introduced by this abstraction."""
        return tuple(sorted(set(self.mapping.values())))

    def grouped_variables(self) -> Dict[str, Tuple[str, ...]]:
        """meta-variable → the original variables it replaces (sorted)."""
        groups: Dict[str, List[str]] = {}
        for variable, meta in self.mapping.items():
            groups.setdefault(meta, []).append(variable)
        return {meta: tuple(sorted(vs)) for meta, vs in groups.items()}

    def is_identity(self) -> bool:
        """Whether the abstraction leaves every variable unchanged."""
        return all(variable == meta for variable, meta in self.mapping.items())

    def degrees_of_freedom(self, variables: Iterable[str]) -> int:
        """Number of distinct variable names after abstraction, over ``variables``.

        This is the expressiveness measure of the paper restricted to the
        variables actually appearing in the provenance.
        """
        return len({self.mapping.get(v, v) for v in variables})


@dataclass(frozen=True)
class CompressionResult:
    """The outcome of applying an abstraction to a provenance set.

    Attributes
    ----------
    compressed:
        The abstracted provenance.
    abstraction:
        The abstraction that was applied.
    original_size / compressed_size:
        Total number of monomials before and after.
    original_variables / compressed_variables:
        Number of distinct variables before and after.
    """

    compressed: ProvenanceSet
    abstraction: Abstraction
    original_size: int
    compressed_size: int
    original_variables: int
    compressed_variables: int

    @property
    def size_reduction(self) -> int:
        """How many monomials were removed by the compression."""
        return self.original_size - self.compressed_size

    @property
    def compression_ratio(self) -> float:
        """``compressed_size / original_size`` (1.0 when nothing was gained)."""
        if self.original_size == 0:
            return 1.0
        return self.compressed_size / self.original_size

    @property
    def variable_retention(self) -> float:
        """``compressed_variables / original_variables`` (1.0 = full freedom kept)."""
        if self.original_variables == 0:
            return 1.0
        return self.compressed_variables / self.original_variables

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline numbers (for reports/benchmarks)."""
        return {
            "original_size": self.original_size,
            "compressed_size": self.compressed_size,
            "size_reduction": self.size_reduction,
            "compression_ratio": self.compression_ratio,
            "original_variables": self.original_variables,
            "compressed_variables": self.compressed_variables,
            "variable_retention": self.variable_retention,
        }


ProvenanceLike = Union[Polynomial, ProvenanceSet, Sequence[Polynomial]]


def _as_provenance_set(provenance: ProvenanceLike) -> ProvenanceSet:
    if isinstance(provenance, ProvenanceSet):
        return provenance
    if isinstance(provenance, Polynomial):
        result = ProvenanceSet()
        result[(0,)] = provenance
        return result
    result = ProvenanceSet()
    for index, polynomial in enumerate(provenance):
        if not isinstance(polynomial, Polynomial):
            raise AbstractionError(
                f"expected Polynomial items, got {type(polynomial).__name__}"
            )
        result[(index,)] = polynomial
    return result


def apply_abstraction(
    provenance: ProvenanceLike,
    abstraction: "Abstraction | Cut | Mapping[str, str]",
) -> CompressionResult:
    """Apply ``abstraction`` to ``provenance`` and return a :class:`CompressionResult`.

    ``provenance`` may be a single polynomial, a sequence of polynomials or a
    keyed :class:`ProvenanceSet`; ``abstraction`` may be an
    :class:`Abstraction`, a :class:`~repro.core.cut.Cut` or a bare renaming
    mapping.
    """
    if isinstance(abstraction, Cut):
        abstraction = Abstraction.from_cut(abstraction)
    elif isinstance(abstraction, Mapping) and not isinstance(abstraction, Abstraction):
        abstraction = Abstraction(dict(abstraction))

    provenance_set = _as_provenance_set(provenance)
    compressed = provenance_set.rename(dict(abstraction.mapping))
    return CompressionResult(
        compressed=compressed,
        abstraction=abstraction,
        original_size=provenance_set.size(),
        compressed_size=compressed.size(),
        original_variables=provenance_set.num_variables(),
        compressed_variables=compressed.num_variables(),
    )
