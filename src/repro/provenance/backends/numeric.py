"""Numpy-backed backends for numeric semirings.

Three backends share the segmented-kernel layout pioneered by
:class:`~repro.provenance.valuation.CompiledProvenanceSet` (monomials grouped
by factor count, sorted by result row, per-row totals via ``*.reduceat``):

* :class:`RealBackend` — the counting semiring ``(R, +, *)``; its compiled
  form *is* ``CompiledProvenanceSet``, so the float pipeline is unchanged;
* :class:`TropicalBackend` — min-plus: a monomial's contribution is its
  coefficient (a fixed cost) plus the exponent-weighted sum of its variables'
  costs, and per-row totals are segmented minima (``np.minimum.reduceat``);
* :class:`BooleanBackend` — or-and on packed boolean arrays: a monomial
  contributes ``True`` iff all of its variables are truthy, and per-row
  totals are segmented disjunctions (``np.logical_or.reduceat``).

All three consume the same ``scenarios × variables`` float matrices the
batch planner produces (the Boolean backend thresholds them at non-zero), so
the chunked/threaded matrix pipeline works for every numeric semiring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MissingValuationError
from repro.obs.tracer import trace
from repro.provenance.backends.base import (
    CompiledSemiringSet,
    SemiringBackend,
)
from repro.provenance.incidence import (
    VariableIncidence,
    expand_segment_rows,
    ragged_ranges,
)
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.semiring import (
    BooleanSemiring,
    CountingSemiring,
    Semiring,
    TropicalSemiring,
)


#: Distinct baselines whose delta state a compiled set keeps, LRU-evicted —
#: sized for the factored batch path's two-baseline working set (see
#: ``repro.provenance.valuation._DELTA_BASELINE_SLOTS``).
_DELTA_BASELINE_SLOTS = 4

#: One cached delta-state entry: ``(key, base_vector, per-group segment
#: reductions, totals)``.
_DeltaState = Tuple[bytes, np.ndarray, Tuple[np.ndarray, ...], np.ndarray]


class _SegmentGroup:
    """One width-group of monomials, row-sorted for segmented reductions."""

    __slots__ = ("coefficients", "indices", "exponents", "segment_starts", "segment_rows")

    def __init__(
        self,
        rows: np.ndarray,
        coefficients: np.ndarray,
        indices: np.ndarray,
        exponents: np.ndarray,
    ) -> None:
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        self.coefficients: np.ndarray = coefficients[order]
        self.indices: np.ndarray = indices[order]
        self.exponents: np.ndarray = exponents[order]
        boundaries = np.flatnonzero(np.diff(rows)) + 1
        self.segment_starts: np.ndarray = np.concatenate(([0], boundaries))
        self.segment_rows: np.ndarray = rows[self.segment_starts]


class _CompiledNumericSet(CompiledSemiringSet):
    """Shared compilation for numeric semirings; subclasses fix the algebra."""

    supports_deltas = True

    #: The semiring backend this compiled form belongs to (the name stamped
    #: into compiled stores; see :mod:`repro.provenance.store`).
    backend_name: str = ""

    __slots__ = (
        "_keys",
        "_variables",
        "_index",
        "_constant",
        "_groups",
        "_num_constants",
        "_delta_index",
        "_delta_baseline",
        "_fingerprint",
        "_store_path",
    )

    #: The additive identity of the semiring (fills rows with no monomials).
    _identity: float = 0.0

    def __init__(self, provenance: ProvenanceSet) -> None:
        self._delta_index: Optional[
            Tuple[Tuple[Any, np.ndarray, np.ndarray], ...]
        ] = None
        self._delta_baseline: List[_DeltaState] = []
        self._fingerprint = provenance.fingerprint()
        self._store_path: Optional[str] = None
        self._keys: Tuple[Tuple, ...] = provenance.keys()
        variables = sorted(provenance.variables())
        self._variables: Tuple[str, ...] = tuple(variables)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(variables)}
        key_index = {key: i for i, key in enumerate(self._keys)}

        self._constant = np.full(len(self._keys), self._identity, dtype=np.float64)
        self._num_constants = 0
        by_width: Dict[int, List[Tuple[int, float, List[int], List[int]]]] = {}
        for key, polynomial in provenance.items():
            row = key_index[key]
            for monomial, coefficient in polynomial.terms():
                if monomial.is_unit():
                    self._fold_constant(row, coefficient)
                    self._num_constants += 1
                    continue
                var_indices: List[int] = []
                exponents: List[int] = []
                for name, exponent in monomial:
                    var_indices.append(self._index[name])
                    exponents.append(exponent)
                by_width.setdefault(len(var_indices), []).append(
                    (row, coefficient, var_indices, exponents)
                )

        self._groups: List[_SegmentGroup] = []
        for _width, rows in sorted(by_width.items()):
            self._groups.append(
                _SegmentGroup(
                    np.array([r[0] for r in rows], dtype=np.intp),
                    np.array([r[1] for r in rows], dtype=np.float64),
                    np.array([r[2] for r in rows], dtype=np.intp),
                    np.array([r[3] for r in rows], dtype=np.float64),
                )
            )

    # -- the algebra hooks ---------------------------------------------------

    def _fold_constant(self, row: int, coefficient: float) -> None:
        raise NotImplementedError

    def _contributions(self, group: _SegmentGroup, matrix: np.ndarray) -> np.ndarray:
        """Per-monomial contributions for a ``... × variables`` value matrix."""
        raise NotImplementedError

    def _reduce(self, contributions: np.ndarray, starts: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def _accumulate(self, totals: np.ndarray, rows: np.ndarray, segments: np.ndarray, axis: int) -> None:
        raise NotImplementedError

    def _restricted_contributions(
        self, group: _SegmentGroup, values: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Contributions of the monomials at ``positions`` under ``values``."""
        raise NotImplementedError

    def _fold_rows(
        self, totals: np.ndarray, rows: np.ndarray, segments: np.ndarray
    ) -> None:
        """Fold per-segment values into a 1-D totals vector (rows unique)."""
        raise NotImplementedError

    # -- the CompiledSemiringSet surface --------------------------------------

    @property
    def keys(self) -> Tuple[Tuple, ...]:
        return self._keys

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._variables

    def size(self) -> int:
        return self._num_constants + sum(len(g.coefficients) for g in self._groups)

    @property
    def source_fingerprint(self) -> str:
        """The fingerprint of the provenance set this was compiled from."""
        return self._fingerprint

    @property
    def store_path(self) -> "str | None":
        """The compiled store backing this set's arrays (``None`` if in-memory)."""
        return self._store_path

    def to_store(self, path: str) -> str:
        """Persist this compiled set as a mmap-able store file at ``path``."""
        from repro.provenance.store import write_store

        return write_store(self, path)

    @classmethod
    def from_store(cls, path: str) -> "_CompiledNumericSet":
        """Open the compiled store at ``path`` as an instance of this class."""
        from repro.exceptions import SerializationError
        from repro.provenance.store import open_store

        compiled = open_store(path)
        if not isinstance(compiled, cls):
            raise SerializationError(
                f"{path}: store holds a {compiled.backend_name!r} compiled "
                f"set, not {cls.backend_name!r}"
            )
        return compiled

    def variable_index(self) -> Dict[str, int]:
        return dict(self._index)

    def values_vector(self, valuation: Mapping[str, Any]) -> np.ndarray:
        missing = [name for name in self._variables if name not in valuation]
        if missing:
            raise MissingValuationError(missing)
        return np.array(
            [float(valuation[name]) for name in self._variables], dtype=np.float64
        )

    def evaluate(self, valuation: Mapping[str, Any]) -> Dict[Tuple, Any]:
        totals = self.evaluate_matrix(self.values_vector(valuation)[np.newaxis, :])[0]
        return {key: self._to_python(totals[i]) for i, key in enumerate(self._keys)}

    def _to_python(self, value: np.floating) -> Any:
        return float(value)

    def evaluate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._variables):
            raise ValueError(
                f"expected a (scenarios, {len(self._variables)}) matrix, "
                f"got shape {matrix.shape}"
            )
        totals = np.tile(self._constant, (matrix.shape[0], 1))
        for group in self._groups:
            segments = self._reduce(
                self._contributions(group, matrix), group.segment_starts, axis=1
            )
            self._accumulate(totals, group.segment_rows, segments, axis=1)
        return totals

    def evaluate_many(self, valuations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        if not valuations:
            return np.zeros((0, len(self._keys)), dtype=np.float64)
        matrix = np.stack([self.values_vector(v) for v in valuations])
        return self.evaluate_matrix(matrix)

    # -- sparse delta evaluation ----------------------------------------------

    def dense_row_footprint(self) -> int:
        """float64 cells :meth:`evaluate_matrix` materialises per scenario row."""
        cells = len(self._variables) + len(self._keys)
        for group in self._groups:
            cells += group.indices.size
        return max(1, cells)

    def _delta_groups(self) -> Tuple[Tuple[Any, np.ndarray, np.ndarray], ...]:
        """Per-group inverted index, per-monomial rows and segment extents."""
        if self._delta_index is None:
            built = []
            for group in self._groups:
                num_monomials = len(group.coefficients)
                built.append(
                    (
                        VariableIncidence.from_factor_arrays(
                            len(self._variables), group.indices, group.exponents
                        ),
                        expand_segment_rows(
                            group.segment_starts, group.segment_rows, num_monomials
                        ),
                        np.append(
                            group.segment_starts[1:], num_monomials
                        ).astype(np.intp),
                    )
                )
            self._delta_index = tuple(built)
        return self._delta_index

    def _delta_state(self, base_vector: np.ndarray) -> _DeltaState:
        """Baseline-once state: totals plus per-segment baseline reductions."""
        base_vector = np.asarray(base_vector, dtype=np.float64)
        if base_vector.shape != (len(self._variables),):
            raise ValueError(
                f"expected a base vector of {len(self._variables)} variables, "
                f"got shape {base_vector.shape}"
            )
        key = base_vector.tobytes()
        cache = self._delta_baseline
        if cache is None:
            cache = self._delta_baseline = []
        for i, cached in enumerate(cache):
            if cached[0] == key:
                if i:
                    # Move-to-front LRU: the factored batch path alternates
                    # between the original and the factored baseline.
                    cache.insert(0, cache.pop(i))
                return cached
        segment_values: List[np.ndarray] = []
        totals = self._constant.copy()
        for group in self._groups:
            segments = self._reduce(
                self._contributions(group, base_vector),
                group.segment_starts,
                axis=0,
            )
            segment_values.append(segments)
            self._fold_rows(totals, group.segment_rows, segments)
        entry: _DeltaState = (
            key,
            base_vector.copy(),
            tuple(segment_values),
            totals,
        )
        cache.insert(0, entry)
        del cache[_DELTA_BASELINE_SLOTS:]
        return entry

    def baseline_totals(self, base_vector: np.ndarray) -> np.ndarray:
        """The per-group results under ``base_vector`` (the sparse baseline)."""
        return self._delta_state(base_vector)[3].copy()

    def evaluate_deltas(
        self, base_vector: np.ndarray, plans: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> np.ndarray:
        """Evaluate sparse scenarios against one shared base vector.

        Each plan is ``(changed_columns, new_values)`` over this set's
        variable order.  Idempotent reductions (min, or) cannot be corrected
        additively, so per scenario the kernel re-reduces exactly the
        *segments* whose output row contains an affected monomial: affected
        rows are reset to the constant fold, recomputed segments are reduced
        from scratch over the updated values, and every untouched segment of
        an affected row reuses its baseline reduction.  Work per scenario is
        O(monomials inside affected segments), not O(all monomials).
        """
        index = self._delta_groups()
        _key, base, segment_values, totals = self._delta_state(base_vector)
        num_keys = len(self._keys)
        out = np.empty((len(plans), num_keys), dtype=np.float64)
        scratch = base.copy()
        for s, (columns, values) in enumerate(plans):
            # Plans arrive as caller-shaped sequences; coercion is per-plan.
            columns = np.asarray(columns, dtype=np.intp)  # cobralint: disable=CL003 -- per-plan input coercion
            values = np.asarray(values, dtype=np.float64)  # cobralint: disable=CL003 -- per-plan input coercion
            if columns.size == 0:
                out[s] = totals
                continue
            scratch[columns] = values
            # Pass 1: the segments (and thus output rows) each group affects.
            affected_segments = []
            row_parts = []
            for (incidence, _monomial_rows, _ends), group in zip(
                index, self._groups
            ):
                positions = incidence.rows_for_any(columns)
                if positions.size:
                    segments = np.unique(
                        np.searchsorted(
                            group.segment_starts, positions, side="right"
                        )
                        - 1
                    )
                    row_parts.append(group.segment_rows[segments])
                else:
                    segments = positions
                affected_segments.append(segments)
            if not row_parts:
                out[s] = totals
                scratch[columns] = base[columns]
                continue
            affected_rows = np.unique(np.concatenate(row_parts))
            out[s] = totals
            row = out[s]
            row[affected_rows] = self._constant[affected_rows]
            # Pass 2: re-fold every segment owned by an affected row —
            # recomputing the affected ones, reusing baseline reductions for
            # the rest.
            for (incidence, _monomial_rows, ends), group, segments, base_segments in zip(
                index, self._groups, affected_segments, segment_values
            ):
                lookup = np.searchsorted(affected_rows, group.segment_rows)
                lookup = np.minimum(lookup, affected_rows.size - 1)
                in_rows = np.flatnonzero(
                    affected_rows[lookup] == group.segment_rows
                )
                if in_rows.size == 0:
                    continue
                folded = base_segments[in_rows].copy()
                if segments.size:
                    positions, local_starts = ragged_ranges(
                        group.segment_starts[segments], ends[segments]
                    )
                    recomputed = self._reduce(
                        self._restricted_contributions(group, scratch, positions),
                        local_starts,
                        axis=0,
                    )
                    folded[np.searchsorted(in_rows, segments)] = recomputed
                self._fold_rows(row, group.segment_rows[in_rows], folded)
            scratch[columns] = base[columns]
        return out


class _CompiledTropicalSet(_CompiledNumericSet):
    """Min-plus compilation: costs add along a monomial, rows take minima."""

    __slots__ = ()

    backend_name = "tropical"
    _identity = float("inf")

    def _fold_constant(self, row: int, coefficient: float) -> None:
        self._constant[row] = min(self._constant[row], float(coefficient))

    def _contributions(self, group: _SegmentGroup, matrix: np.ndarray) -> np.ndarray:
        gathered = matrix[..., group.indices]
        return np.sum(gathered * group.exponents, axis=-1) + group.coefficients

    def _reduce(self, contributions: np.ndarray, starts: np.ndarray, axis: int) -> np.ndarray:
        return np.minimum.reduceat(contributions, starts, axis=axis)

    def _accumulate(self, totals: np.ndarray, rows: np.ndarray, segments: np.ndarray, axis: int) -> None:
        totals[:, rows] = np.minimum(totals[:, rows], segments)

    def _restricted_contributions(
        self, group: _SegmentGroup, values: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        gathered = values[group.indices[positions]]
        return (
            np.sum(gathered * group.exponents[positions], axis=-1)
            + group.coefficients[positions]
        )

    def _fold_rows(
        self, totals: np.ndarray, rows: np.ndarray, segments: np.ndarray
    ) -> None:
        totals[rows] = np.minimum(totals[rows], segments)


class _CompiledBooleanSet(_CompiledNumericSet):
    """Or-and compilation on packed boolean arrays.

    Exponents are irrelevant (``x^k = x`` in an idempotent semiring) and a
    monomial with a non-zero coefficient contributes the conjunction of its
    variables; results come back as 0.0/1.0 floats so the matrix pipeline
    and the batch report keep their float dtype.
    """

    __slots__ = ()

    backend_name = "bool"
    _identity = 0.0

    def _fold_constant(self, row: int, coefficient: float) -> None:
        if coefficient != 0.0:
            self._constant[row] = 1.0

    def _contributions(self, group: _SegmentGroup, matrix: np.ndarray) -> np.ndarray:
        gathered = matrix[..., group.indices] != 0.0
        present = np.all(gathered, axis=-1)
        return present & (group.coefficients != 0.0)

    def _reduce(self, contributions: np.ndarray, starts: np.ndarray, axis: int) -> np.ndarray:
        return np.logical_or.reduceat(contributions, starts, axis=axis)

    def _accumulate(self, totals: np.ndarray, rows: np.ndarray, segments: np.ndarray, axis: int) -> None:
        totals[:, rows] = np.maximum(totals[:, rows], segments.astype(np.float64))

    def _restricted_contributions(
        self, group: _SegmentGroup, values: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        gathered = values[group.indices[positions]] != 0.0
        present = np.all(gathered, axis=-1)
        return present & (group.coefficients[positions] != 0.0)

    def _fold_rows(
        self, totals: np.ndarray, rows: np.ndarray, segments: np.ndarray
    ) -> None:
        totals[rows] = np.maximum(totals[rows], segments.astype(np.float64))

    def _to_python(self, value: np.floating) -> Any:
        return bool(value != 0.0)


class NumericBackend(SemiringBackend):
    """Base class for backends whose carrier is (a subset of) the reals."""

    is_numeric = True
    #: The float standing in for a *missing* variable in matrix pipelines —
    #: the value under which the variable leaves the result unchanged.
    numeric_fill: float = 1.0

    def coerce(self, value: Any) -> float:
        return float(value)

    def scale_value(self, value: Any, factor: float) -> float:
        return float(value) * float(factor)

    def set_value(self, amount: float, name: str) -> float:
        return float(amount)

    def embed_coefficient(self, coefficient: float) -> float:
        return float(coefficient)

    def reduce_members(self, values: Sequence[Any]) -> float:
        values = [float(v) for v in values]
        return sum(values) / len(values) if values else float(self.semiring.one)

    def delta(self, baseline: Any, value: Any) -> float:
        if value == baseline:
            return 0.0
        return float(value) - float(baseline)

    def error(self, full: Any, compressed: Any) -> float:
        if full == compressed:
            return 0.0
        return abs(float(full) - float(compressed))

    def magnitude(self, value: Any) -> float:
        return abs(float(value))

    def format_value(self, value: Any, width: int = 14) -> str:
        return f"{float(value):.2f}"


class RealBackend(NumericBackend):
    """The counting semiring ``(R, +, *)`` — the original float pipeline."""

    name = "real"
    numeric_fill = 1.0

    def __init__(self) -> None:
        self._semiring = CountingSemiring()

    @property
    def semiring(self) -> Semiring:
        return self._semiring

    def compile(self, provenance: ProvenanceSet) -> CompiledSemiringSet:
        from repro.provenance.valuation import CompiledProvenanceSet

        with trace("backend.compile", backend=self.name, monomials=provenance.size()):
            return CompiledProvenanceSet(provenance)


class TropicalBackend(NumericBackend):
    """The tropical (min, +) semiring: variables are costs, results min-costs.

    Scenario semantics: ``scale`` multiplies a cost (a 20% toll hike is
    ``scale(..., 1.2)``), ``set`` pins it; the default value of a variable
    is the semiring one (0.0 — no added cost), so untouched variables never
    change a route's cost.  Coefficients embed as fixed costs.
    """

    name = "tropical"
    numeric_fill = 0.0

    def __init__(self) -> None:
        self._semiring = TropicalSemiring()

    @property
    def semiring(self) -> Semiring:
        return self._semiring

    def default_value(self, name: str) -> float:
        return 0.0

    def compile(self, provenance: ProvenanceSet) -> _CompiledTropicalSet:
        with trace("backend.compile", backend=self.name, monomials=provenance.size()):
            return _CompiledTropicalSet(provenance)

    def magnitude(self, value: Any) -> float:
        value = float(value)
        return abs(value) if np.isfinite(value) else float("inf")

    def format_value(self, value: Any, width: int = 14) -> str:
        value = float(value)
        return "unreachable" if np.isinf(value) else f"{value:.2f}"


class BooleanBackend(NumericBackend):
    """The Boolean semiring: tuple existence under deletions/access control.

    Values are truthinesses (the matrix pipeline carries them as 0.0/1.0
    floats); ``scale`` by 0 deletes, by anything else keeps; ``set`` assigns
    the amount's truthiness.  Coefficients embed as presence.
    """

    name = "bool"
    numeric_fill = 1.0

    def __init__(self) -> None:
        self._semiring = BooleanSemiring()

    @property
    def semiring(self) -> Semiring:
        return self._semiring

    def coerce(self, value: Any) -> bool:
        return bool(value)

    def scale_value(self, value: Any, factor: float) -> bool:
        return bool(value) and factor != 0

    def set_value(self, amount: float, name: str) -> bool:
        return amount != 0

    def embed_coefficient(self, coefficient: float) -> bool:
        return coefficient != 0

    def compile(self, provenance: ProvenanceSet) -> _CompiledBooleanSet:
        with trace("backend.compile", backend=self.name, monomials=provenance.size()):
            return _CompiledBooleanSet(provenance)

    def reduce_members(self, values: Sequence[Any]) -> float:
        # The mean of 0/1 values is non-zero iff any member survives, so the
        # numeric mean lowering coincides with the Boolean disjunction.
        values = [1.0 if v else 0.0 for v in values]
        return sum(values) / len(values) if values else 1.0

    def delta(self, baseline: Any, value: Any) -> float:
        return float(bool(value)) - float(bool(baseline))

    def error(self, full: Any, compressed: Any) -> float:
        return 0.0 if bool(full) == bool(compressed) else 1.0

    def magnitude(self, value: Any) -> float:
        return 1.0 if bool(value) else 0.0

    def format_value(self, value: Any, width: int = 14) -> str:
        return "true" if bool(value) else "false"
