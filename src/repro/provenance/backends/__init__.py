"""Semiring evaluation backends: one pipeline, many semirings.

The paper's hypothetical-reasoning model is defined over arbitrary
commutative semirings — abstraction commutes with any valuation homomorphism
out of N[X] — and this subpackage makes the *evaluation pipeline* generic in
the same way.  A :class:`SemiringBackend` bundles a semiring with its value
semantics for scenarios, a compiled evaluator, and a semiring-appropriate
error measure; the session, batch and CLI layers dispatch through it.

Five backends ship by default:

========== ============================ =======================================
name       semiring                     evaluator
========== ============================ =======================================
``real``   counting ``(R, +, *)``       numpy (``CompiledProvenanceSet``)
``tropical`` min-plus ``(R∪{∞},min,+)`` numpy (``np.minimum.reduceat`` kernel)
``bool``   Boolean ``({0,1},or,and)``   numpy (packed ``np.logical_or`` kernel)
``why``    witness sets                 pure Python (``evaluate_in_semiring``)
``lineage`` variable sets               pure Python (``evaluate_in_semiring``)
========== ============================ =======================================

Resolve one with :func:`resolve_backend` by name, semiring instance, or
backend object; ``None`` resolves to ``real`` (the original float pipeline).
"""

from repro.provenance.backends.base import (
    BackendLike,
    CompiledSemiringSet,
    SemiringBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.provenance.backends.generic import (
    CompiledGenericSet,
    GenericBackend,
    LineageBackend,
    WhyBackend,
)
from repro.provenance.backends.numeric import (
    BooleanBackend,
    NumericBackend,
    RealBackend,
    TropicalBackend,
)

register_backend(RealBackend())
register_backend(TropicalBackend())
register_backend(BooleanBackend())
register_backend(WhyBackend())
register_backend(LineageBackend())

#: The names accepted by ``--semiring`` and every ``semiring=`` parameter.
SEMIRING_BACKEND_NAMES = backend_names()

__all__ = [
    "BackendLike",
    "CompiledSemiringSet",
    "SemiringBackend",
    "NumericBackend",
    "RealBackend",
    "TropicalBackend",
    "BooleanBackend",
    "GenericBackend",
    "CompiledGenericSet",
    "WhyBackend",
    "LineageBackend",
    "register_backend",
    "resolve_backend",
    "backend_names",
    "SEMIRING_BACKEND_NAMES",
]
