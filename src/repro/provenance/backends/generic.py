"""The generic pure-Python backend: any semiring, no numpy.

:class:`GenericBackend` evaluates compiled provenance by running
:func:`~repro.provenance.semiring.evaluate_in_semiring` per polynomial, so
it works for every commutative semiring — in particular the set-valued Why
and Lineage instances, whose carriers do not fit numpy arrays.  It is also
the reference implementation the numpy backends are property-tested against
and the baseline the backend benchmark measures their speedup over.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.exceptions import MissingValuationError
from repro.obs.tracer import trace
from repro.provenance.backends.base import CompiledSemiringSet, SemiringBackend
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.semiring import (
    LineageSemiring,
    Semiring,
    WhySemiring,
    evaluate_in_semiring,
)


class CompiledGenericSet(CompiledSemiringSet):
    """A provenance set held symbolically, evaluated polynomial by polynomial.

    Set-valued carriers do not fit the vectorised delta kernels, so this
    compilation keeps ``supports_deltas = False``: the batch evaluator's
    sparse mode degrades to the same per-scenario loop the dense mode uses,
    producing identical results.
    """

    __slots__ = ("_provenance", "_semiring", "_embed", "_variables")

    def __init__(
        self,
        provenance: ProvenanceSet,
        semiring: Semiring,
        embed: Callable[[float], Any],
    ) -> None:
        self._provenance = provenance
        self._semiring = semiring
        self._embed = embed
        self._variables: Tuple[str, ...] = tuple(sorted(provenance.variables()))

    @property
    def keys(self) -> Tuple[Tuple, ...]:
        return self._provenance.keys()

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._variables

    def size(self) -> int:
        return self._provenance.size()

    def evaluate(self, valuation: Mapping[str, Any]) -> Dict[Tuple, Any]:
        missing = [name for name in self._variables if name not in valuation]
        if missing:
            raise MissingValuationError(missing)
        return {
            key: evaluate_in_semiring(
                polynomial, self._semiring, valuation, coefficient_embedding=self._embed
            )
            for key, polynomial in self._provenance.items()
        }


class GenericBackend(SemiringBackend):
    """Evaluate in an arbitrary semiring via the homomorphic reference path.

    The default value semantics suit idempotent (set-like) semirings: a
    variable's base value is the semiring one, scenario ``scale``/``set``
    express deletion (amount 0) or restoration (any other amount), and
    coefficients embed as presence.  Subclasses refine ``default_value`` and
    the error measure.
    """

    def __init__(self, semiring: Semiring, name: Optional[str] = None) -> None:
        self._semiring = semiring
        if name:
            self.name = name
        elif not self.name:
            self.name = semiring.name().lower()

    @property
    def semiring(self) -> Semiring:
        return self._semiring

    def coerce(self, value: Any) -> Any:
        return value

    def compile(self, provenance: ProvenanceSet) -> CompiledGenericSet:
        with trace("backend.compile", backend=self.name, monomials=provenance.size()):
            return CompiledGenericSet(
                provenance, self._semiring, self.embed_coefficient
            )

    def error(self, full: Any, compressed: Any) -> float:
        return 0.0 if full == compressed else 1.0


class WhyBackend(GenericBackend):
    """Why-provenance: each variable's base value is its singleton witness.

    Results are sets of witness sets; the abstraction error between two
    results is the cardinality of their symmetric difference (how many
    witness sets appear on exactly one side).
    """

    name = "why"

    def __init__(self) -> None:
        super().__init__(WhySemiring(), name="why")

    def default_value(self, name: str) -> FrozenSet[FrozenSet[str]]:
        return WhySemiring.of(name)

    def set_value(self, amount: float, name: str) -> FrozenSet[FrozenSet[str]]:
        if amount == 0:
            return self._semiring.zero
        return self.default_value(name)

    def error(self, full: Any, compressed: Any) -> float:
        if full == compressed:
            return 0.0
        return float(max(1, len(frozenset(full) ^ frozenset(compressed))))

    def magnitude(self, value: Any) -> float:
        return float(len(value))

    def format_value(self, value: Any, width: int = 14) -> str:
        witnesses = sorted("{" + ",".join(sorted(w)) + "}" for w in value)
        return super().format_value("{" + ",".join(witnesses) + "}", width)


class LineageBackend(GenericBackend):
    """Lineage: each variable's base value is the singleton ``{name}``.

    Results are flat variable sets (or ``None``, the annihilating zero); the
    error between two results is the cardinality of their symmetric
    difference, with ``None`` counting as different from every set.
    """

    name = "lineage"

    def __init__(self) -> None:
        super().__init__(LineageSemiring(), name="lineage")

    def default_value(self, name: str) -> FrozenSet[str]:
        return frozenset({name})

    def set_value(self, amount: float, name: str) -> Optional[FrozenSet[str]]:
        if amount == 0:
            return None
        return self.default_value(name)

    def error(self, full: Any, compressed: Any) -> float:
        if full == compressed:
            return 0.0
        if full is None or compressed is None:
            present = compressed if full is None else full
            return float(max(1, len(present)))
        return float(max(1, len(full ^ compressed)))

    def magnitude(self, value: Any) -> float:
        return 0.0 if value is None else float(len(value))

    def format_value(self, value: Any, width: int = 14) -> str:
        if value is None:
            return "⊥"
        return super().format_value("{" + ",".join(sorted(value)) + "}", width)
