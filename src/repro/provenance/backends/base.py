"""The abstract semiring-backend interface and the backend registry.

A :class:`SemiringBackend` packages everything the evaluation pipeline needs
to answer what-if scenarios in one commutative semiring:

* the *value semantics* of scenario operations — what "scale by 0.8" or
  "set to 0" means for values of the semiring's carrier (multiplication for
  numeric semirings, deletion/restoration for set-valued ones);
* a *compiled evaluator* — for numeric semirings a vectorised numpy kernel
  (:mod:`repro.provenance.backends.numeric`), otherwise a pure-Python
  fallback driven by :func:`~repro.provenance.semiring.evaluate_in_semiring`
  (:mod:`repro.provenance.backends.generic`);
* the *error measure* comparing full against compressed results — numeric
  deltas for numeric backends, symmetric-difference cardinality for set
  backends — so abstraction error is meaningful in every semiring.

Backends are resolved by name (``"real"``, ``"tropical"``, ``"bool"``,
``"why"``, ``"lineage"``), by semiring instance, or passed through verbatim
via :func:`resolve_backend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import SemiringError
from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.semiring import Semiring


class CompiledSemiringSet(ABC):
    """A provenance set compiled for repeated evaluation in one semiring.

    Mirrors the surface of
    :class:`~repro.provenance.valuation.CompiledProvenanceSet` (which *is*
    the real backend's compiled form) so the session and batch layers can
    dispatch without caring which backend produced the compilation.
    """

    #: Empty so slotted compilations (every numeric kernel) stay dict-free.
    __slots__ = ()

    #: Whether this compiled form implements the sparse delta surface
    #: (``baseline_totals`` / ``evaluate_deltas``).  Numeric compilations
    #: set this; set-valued ones fall back to dense per-scenario evaluation.
    supports_deltas: bool = False

    @property
    @abstractmethod
    def keys(self) -> Tuple[Tuple, ...]:
        """The result keys, in row order."""

    @property
    @abstractmethod
    def variables(self) -> Tuple[str, ...]:
        """All variables of the compiled set, sorted."""

    @abstractmethod
    def size(self) -> int:
        """Total number of monomials (the provenance size)."""

    @abstractmethod
    def evaluate(self, valuation: Mapping[str, Any]) -> Dict[Tuple, Any]:
        """Evaluate every polynomial, returning key → semiring value."""

    def evaluate_many(
        self, valuations: Sequence[Mapping[str, Any]]
    ) -> Tuple[Dict[Tuple, Any], ...]:
        """Evaluate a batch of valuations (generic per-valuation loop)."""
        return tuple(self.evaluate(valuation) for valuation in valuations)

    def evaluate_deltas(
        self, base_vector: Any, plans: Sequence[Tuple[Any, Any]]
    ) -> Any:
        """Sparse scenario evaluation against one shared base vector.

        Numeric compilations override this with an O(affected monomials)
        kernel; the default signals that the caller should take the dense
        path instead.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support sparse delta evaluation"
        )

    def dense_row_footprint(self) -> int:
        """float64 cells the dense matrix path materialises per scenario row
        (memory-budget accounting; the symbolic fallback reports its size)."""
        return max(1, self.size())


class SemiringBackend(ABC):
    """One evaluation backend: a semiring plus its pipeline semantics.

    Subclasses set :attr:`name` (the CLI spelling) and :attr:`is_numeric`
    (whether values live on the real line and the numpy matrix pipeline
    applies) and implement compilation plus the value/error semantics.
    """

    #: The registry/CLI name of the backend (e.g. ``"tropical"``).
    name: str = ""
    #: Whether values are real numbers and the numpy matrix path applies.
    is_numeric: bool = False

    @property
    @abstractmethod
    def semiring(self) -> Semiring:
        """The semiring this backend evaluates in."""

    # -- value semantics ----------------------------------------------------

    @abstractmethod
    def coerce(self, value: Any) -> Any:
        """Normalise a raw input value into the semiring's carrier."""

    def default_value(self, name: str) -> Any:
        """The identity/base value of variable ``name`` (the analogue of the
        float pipeline's default of 1.0: evaluating every variable at its
        default reproduces the unmodified query result)."""
        return self.semiring.one

    def scale_value(self, value: Any, factor: float) -> Any:
        """Apply a scenario ``scale`` operation to ``value``.

        Numeric backends multiply; set-valued (idempotent) backends treat a
        zero factor as deletion and any other factor as a no-op.
        """
        if factor == 0:
            return self.semiring.zero
        return value

    def set_value(self, amount: float, name: str) -> Any:
        """Translate a scenario ``set`` amount into a carrier value for
        ``name`` (numeric backends use the amount itself; set-valued
        backends interpret 0 as deletion and non-zero as restoration)."""
        if amount == 0:
            return self.semiring.zero
        return self.default_value(name)

    def embed_coefficient(self, coefficient: float) -> Any:
        """Map an N[X] coefficient into the carrier (presence by default)."""
        return self.semiring.zero if coefficient == 0 else self.semiring.one

    # -- evaluation ---------------------------------------------------------

    @abstractmethod
    def compile(self, provenance: ProvenanceSet) -> CompiledSemiringSet:
        """Compile ``provenance`` for repeated evaluation in this backend."""

    # -- comparison / reporting --------------------------------------------

    @abstractmethod
    def error(self, full: Any, compressed: Any) -> float:
        """The abstraction error between a full and a compressed result."""

    def delta(self, baseline: Any, value: Any) -> float:
        """How much ``value`` changed from ``baseline`` (signed for numeric
        backends, a non-negative distance otherwise)."""
        return self.error(baseline, value)

    def magnitude(self, value: Any) -> float:
        """A non-negative size of ``value`` (the relative-error denominator)."""
        return self.error(self.semiring.zero, value)

    def reduce_members(self, values: Sequence[Any]) -> Any:
        """Combine member values into a meta-variable default.

        Set-valued (idempotent) semirings use the semiring sum (union), which
        agrees with every member when the members coincide; numeric backends
        override this with the paper's arithmetic mean.
        """
        return self.semiring.sum(values)

    def format_value(self, value: Any, width: int = 14) -> str:
        """Render a result value for CLI tables."""
        text = str(value)
        if len(text) > width:
            text = text[: width - 1] + "…"
        return text

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, SemiringBackend] = {}

BackendLike = Union[str, Semiring, SemiringBackend, None]


def register_backend(backend: SemiringBackend) -> SemiringBackend:
    """Register ``backend`` under its :attr:`~SemiringBackend.name`."""
    if not backend.name:
        raise SemiringError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, in registration order."""
    return tuple(_REGISTRY)


def resolve_backend(spec: BackendLike = None) -> SemiringBackend:
    """Resolve a backend from a name, a semiring instance, or a backend.

    ``None`` resolves to the real (counting) backend — the float pipeline
    the rest of the system has always used.
    """
    from repro.provenance import backends as _pkg  # ensure registration ran

    del _pkg
    if spec is None:
        spec = "real"
    if isinstance(spec, SemiringBackend):
        return spec
    if isinstance(spec, Semiring):
        for backend in _REGISTRY.values():
            if type(backend.semiring) is type(spec):
                return backend
        raise SemiringError(
            f"no registered backend evaluates in {spec.name()}; "
            "register one with repro.provenance.backends.register_backend"
        )
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]
        except KeyError:
            raise SemiringError(
                f"unknown semiring backend {spec!r}; "
                f"available: {', '.join(sorted(_REGISTRY))}"
            ) from None
    raise SemiringError(f"cannot resolve a semiring backend from {spec!r}")
