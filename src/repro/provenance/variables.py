"""Provenance variables and variable registries.

Throughout the polynomial layer variables are identified by their *name*
(a non-empty string); :class:`Variable` additionally carries optional
metadata describing where the variable came from (which table, column and
key it parameterises), which is what abstraction trees are built from.

A :class:`VariableRegistry` hands out fresh, deterministic variable names and
remembers the metadata, playing the role of the instrumentation step in the
paper ("instrument the data with symbolic variables, either at the cell or
tuple level").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import InvalidVariableNameError

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def validate_variable_name(name: str) -> str:
    """Validate and return a variable name.

    Names must start with a letter or underscore and may contain letters,
    digits, underscores, dots and dashes.  This keeps the textual polynomial
    format unambiguous (``*`` separates factors, ``+`` separates monomials).
    """
    if not isinstance(name, str) or not name:
        raise InvalidVariableNameError(f"invalid variable name: {name!r}")
    if not _NAME_RE.match(name):
        raise InvalidVariableNameError(
            f"invalid variable name: {name!r} (must match {_NAME_RE.pattern})"
        )
    return name


@dataclass(frozen=True)
class Variable:
    """A provenance variable with optional lineage metadata.

    Attributes
    ----------
    name:
        The unique name used inside polynomials, e.g. ``"p1"`` or ``"m3"``.
    table:
        Optional name of the table whose data this variable parameterises.
    column:
        Optional column name (for cell-level instrumentation).
    key:
        Optional identifying key of the tuple (for tuple/cell-level
        instrumentation), e.g. ``("A", 1)`` for plan A in month 1.
    description:
        Optional free-text description shown by the CLI.
    """

    name: str
    table: Optional[str] = None
    column: Optional[str] = None
    key: Optional[Tuple] = None
    description: str = ""

    def __post_init__(self) -> None:
        validate_variable_name(self.name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def variable_name(var: "Variable | str") -> str:
    """Coerce a :class:`Variable` or a raw string to a validated name."""
    if isinstance(var, Variable):
        return var.name
    return validate_variable_name(var)


@dataclass
class VariableRegistry:
    """A factory and lookup table for provenance variables.

    The registry guarantees uniqueness of names and provides deterministic
    auto-generated names (``prefix_1``, ``prefix_2``, ...), so the same
    instrumentation of the same database always yields the same variables —
    a requirement for reproducible provenance generation.
    """

    _variables: Dict[str, Variable] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)

    def register(self, variable: Variable) -> Variable:
        """Register ``variable``; re-registering an identical one is a no-op."""
        existing = self._variables.get(variable.name)
        if existing is not None:
            if existing != variable:
                raise InvalidVariableNameError(
                    f"variable {variable.name!r} already registered with "
                    f"different metadata"
                )
            return existing
        self._variables[variable.name] = variable
        return variable

    def declare(
        self,
        name: str,
        table: Optional[str] = None,
        column: Optional[str] = None,
        key: Optional[Tuple] = None,
        description: str = "",
    ) -> Variable:
        """Create and register a variable with an explicit name."""
        return self.register(
            Variable(name=name, table=table, column=column, key=key,
                     description=description)
        )

    def fresh(
        self,
        prefix: str = "x",
        table: Optional[str] = None,
        column: Optional[str] = None,
        key: Optional[Tuple] = None,
        description: str = "",
    ) -> Variable:
        """Create and register a variable with an auto-generated name.

        Names are ``<prefix>_<n>`` with ``n`` counting up per prefix, skipping
        names that were already registered explicitly.
        """
        validate_variable_name(prefix)
        while True:
            self._counters[prefix] = self._counters.get(prefix, 0) + 1
            candidate = f"{prefix}_{self._counters[prefix]}"
            if candidate not in self._variables:
                break
        return self.declare(
            candidate, table=table, column=column, key=key,
            description=description,
        )

    def get(self, name: str) -> Optional[Variable]:
        """Return the variable registered under ``name`` or ``None``."""
        return self._variables.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._variables

    def __len__(self) -> int:
        return len(self._variables)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._variables.values())

    def names(self) -> Tuple[str, ...]:
        """Return all registered names in insertion order."""
        return tuple(self._variables.keys())

    def by_table(self, table: str) -> Tuple[Variable, ...]:
        """Return all variables registered for ``table``."""
        return tuple(v for v in self._variables.values() if v.table == table)

    def as_mapping(self) -> Mapping[str, Variable]:
        """Return a read-only view of name → variable."""
        return dict(self._variables)
