"""Valuations and fast (compiled) polynomial evaluation.

Hypothetical reasoning with provenance boils down to repeatedly *assigning
values* to the provenance variables and reading off the new query results.
This module provides:

* :class:`Valuation` — an immutable mapping from variable names to numbers,
  with convenience constructors for the scenarios of the paper (e.g. "scale
  the March price variables by 0.8");
* :class:`CompiledPolynomial` / :class:`CompiledProvenanceSet` — a
  numpy-backed compiled form of polynomials that makes repeated assignment
  cheap; the ratio between evaluating the full and the compressed compiled
  provenance is the *assignment speedup* the demo reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.exceptions import MissingValuationError
from repro.obs.tracer import trace
from repro.provenance.backends.base import CompiledSemiringSet
from repro.provenance.incidence import (
    VariableIncidence,
    expand_segment_rows,
)
from repro.provenance.polynomial import Number, Polynomial, ProvenanceSet

T = TypeVar("T")

#: One sparse scenario: ``(changed column indices, new values)`` relative to
#: a shared base vector in a compiled set's variable order.
DeltaPlanRow = Tuple[np.ndarray, np.ndarray]

#: Sentinel distinguishing "key absent" from a legitimately cached falsy
#: value (``None``, ``0``, ``False`` ...) in :class:`FingerprintCache`.
_MISSING = object()

#: Distinct baselines whose delta state (baseline contributions + totals) a
#: compiled set keeps, LRU-evicted.  Two is the working set of a factored
#: batch (original baseline for the report, factored baseline for the
#: residual deltas); a little headroom covers interleaved sweeps.
_DELTA_BASELINE_SLOTS = 4


def _resolve_value_backend(semiring):
    """Resolve a ``semiring=`` argument to a backend, or ``None`` for real.

    ``None`` (and the real backend itself) resolve to ``None`` so the plain
    float pipeline keeps its dependency-free fast path.
    """
    if semiring is None:
        return None
    from repro.provenance.backends import resolve_backend

    backend = resolve_backend(semiring)
    return None if backend.name == "real" else backend


class FingerprintCache:
    """A small LRU cache keyed by content fingerprints.

    Compiling provenance (:class:`CompiledProvenanceSet`) and building the
    compression kernel's incidence index are both one-linear-pass
    preprocessing steps worth paying exactly once per distinct provenance
    set.  Both caches key their entries by
    :meth:`~repro.provenance.polynomial.ProvenanceSet.fingerprint` (possibly
    combined with extra structure such as a forest signature); this class
    centralises the LRU + hit/miss bookkeeping they share.

    ``metrics=`` names a prefix under which the cache additionally reports
    hits/misses into the process-wide
    :class:`~repro.obs.metrics.MetricsRegistry` (as ``{prefix}.hits`` /
    ``{prefix}.misses``), so every cache in the engine shows up in one
    ``snapshot()``.  The per-instance counters behind :meth:`info` are kept
    independently — they are this cache's lifetime view, while the registry
    ones obey the registry's reset/scope lifecycle.
    """

    __slots__ = (
        "_capacity",
        "_entries",
        "_hits",
        "_misses",
        "_metric_hits",
        "_metric_misses",
    )

    def __init__(self, capacity: int = 8, metrics: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        if metrics is None:
            self._metric_hits = None
            self._metric_misses = None
        else:
            from repro.obs.metrics import get_registry

            registry = get_registry()
            self._metric_hits = registry.counter(f"{metrics}.hits")
            self._metric_misses = registry.counter(f"{metrics}.misses")

    def get(self, key: Hashable, default: object = None) -> Optional[object]:
        """The cached value under ``key`` (marking it most-recently used).

        Hits and misses are both counted here, and a cached falsy value
        (``None``, ``0``, ``False``) is a hit like any other — lookups are
        resolved against a sentinel, never against the value's truthiness.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            if self._metric_misses is not None:
                self._metric_misses.inc()
            return default
        self._entries.move_to_end(key)
        self._hits += 1
        if self._metric_hits is not None:
            self._metric_hits.inc()
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``value`` under ``key``, evicting the least-recently used."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def get_or_build(self, key: Hashable, factory: Callable[[], T]) -> T:
        """Return the cached value under ``key``, building it on a miss."""
        cached = self.get(key, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        value = factory()
        self.put(key, value)
        return value

    def info(self) -> Dict[str, int]:
        """Hit/miss/size counters (the shape ``BatchEvaluator.cache_info`` reports)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "entries": len(self._entries),
            "capacity": self._capacity,
        }

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero this cache's lifetime hit/miss counters (entries are kept).

        Registry-side counters are untouched — scope or reset those through
        :class:`~repro.obs.metrics.MetricsRegistry`.
        """
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)


class Valuation(Mapping[str, float]):
    """An immutable assignment of values to provenance variables.

    Behaves as a read-only mapping; algebraic helpers return new valuations.
    By default values are floats (the counting-semiring pipeline); passing
    ``semiring=`` (a backend name, a :class:`~repro.provenance.semiring.
    Semiring` instance, or a backend) types the values by that semiring's
    carrier and routes ``scaled``/``set_to`` through the backend's scenario
    semantics — e.g. Boolean truthinesses or Why-provenance witness sets.

    Examples
    --------
    >>> v = Valuation({"p1": 1.0, "m1": 1.0, "m3": 1.0})
    >>> v.scaled({"m3"}, 0.8)["m3"]
    0.8
    """

    __slots__ = ("_values", "_backend")

    def __init__(
        self,
        values: Optional[Mapping[str, object]] = None,
        semiring: Optional[object] = None,
    ) -> None:
        backend = _resolve_value_backend(semiring)
        self._backend = backend
        if backend is None:
            self._values: Dict[str, object] = {
                str(name): float(value) for name, value in (values or {}).items()
            }
        else:
            self._values = {
                str(name): backend.coerce(value)
                for name, value in (values or {}).items()
            }

    # -- constructors -----------------------------------------------------

    @classmethod
    def uniform(
        cls,
        variables: Iterable[str],
        value: Number = 1.0,
        semiring: Optional[object] = None,
    ) -> "Valuation":
        """Assign the same ``value`` to every variable in ``variables``.

        The identity valuation (all ones) reproduces the original query
        result when applied to the provenance polynomials.
        """
        return cls({name: value for name in variables}, semiring=semiring)

    @classmethod
    def identity_for(
        cls,
        provenance: "ProvenanceSet | Polynomial",
        semiring: Optional[object] = None,
    ) -> "Valuation":
        """The identity valuation over the variables of ``provenance``.

        All ones for the float pipeline; each backend defines its own
        per-variable identity (e.g. each variable's singleton witness set
        for Why-provenance) under which evaluation reproduces the original
        result.
        """
        backend = _resolve_value_backend(semiring)
        if backend is None:
            return cls.uniform(provenance.variables(), 1.0)
        return cls(
            {name: backend.default_value(name) for name in provenance.variables()},
            semiring=backend,
        )

    # -- the backend --------------------------------------------------------

    @property
    def backend(self):
        """The :class:`~repro.provenance.backends.SemiringBackend` typing the
        values (the real backend for plain float valuations)."""
        if self._backend is None:
            from repro.provenance.backends import resolve_backend

            return resolve_backend("real")
        return self._backend

    @property
    def semiring_name(self) -> str:
        """The backend name (``"real"`` for plain float valuations)."""
        return "real" if self._backend is None else self._backend.name

    # -- mapping interface --------------------------------------------------

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def as_dict(self) -> Dict[str, float]:
        """A mutable copy of the underlying mapping."""
        return dict(self._values)

    # -- functional updates --------------------------------------------------

    def updated(self, changes: Mapping[str, object]) -> "Valuation":
        """Return a valuation with ``changes`` overriding/extending this one."""
        merged = dict(self._values)
        if self._backend is None:
            for name, value in changes.items():
                merged[str(name)] = float(value)
        else:
            for name, value in changes.items():
                merged[str(name)] = self._backend.coerce(value)
        return self._rebuild(merged)

    def scaled(self, variables: Iterable[str], factor: Number) -> "Valuation":
        """Return a valuation with a scenario *scale* applied to the variables.

        For numeric backends this multiplies (missing variables are treated
        as their identity first), matching the paper's multiplicative
        parameterisation ("decrease the ppm of all plans by 20%" == scale the
        corresponding variables by 0.8).  Set-valued backends interpret a
        zero factor as deletion and any other factor as a no-op.
        """
        merged = dict(self._values)
        if self._backend is None:
            for name in variables:
                merged[name] = merged.get(name, 1.0) * float(factor)
        else:
            backend = self._backend
            factor = float(factor)
            for name in variables:
                # Look up through a sentinel: a stored None is a legitimate
                # carrier value (the lineage semiring's zero), not a miss.
                current = merged.get(name, _MISSING)
                if current is _MISSING:
                    current = backend.default_value(name)
                merged[name] = backend.scale_value(current, factor)
        return self._rebuild(merged)

    def set_to(self, variables: Iterable[str], amount: Number) -> "Valuation":
        """Return a valuation with a scenario *set* applied to the variables.

        Numeric backends assign the amount itself; set-valued backends
        interpret amount 0 as deletion (the semiring zero) and any other
        amount as restoring the variable's identity value.
        """
        if self._backend is None:
            return self.updated({name: float(amount) for name in variables})
        backend = self._backend
        amount = float(amount)
        merged = dict(self._values)
        for name in variables:
            merged[name] = backend.set_value(amount, name)
        return self._rebuild(merged)

    def restricted(self, variables: Iterable[str]) -> "Valuation":
        """Return the valuation restricted to ``variables`` (missing ones skipped)."""
        keep = set(variables)
        return self._rebuild(
            {name: value for name, value in self._values.items() if name in keep}
        )

    def _rebuild(self, values: Dict[str, object]) -> "Valuation":
        """Build a valuation with the same backend from pre-coerced values."""
        result = Valuation.__new__(Valuation)
        result._values = values
        result._backend = self._backend
        return result

    def covers(self, variables: Iterable[str]) -> bool:
        """Whether every variable in ``variables`` has a value."""
        return all(name in self._values for name in variables)

    def missing(self, variables: Iterable[str]) -> Tuple[str, ...]:
        """The variables in ``variables`` that have no value, sorted."""
        return tuple(sorted(name for name in set(variables) if name not in self._values))

    def __repr__(self) -> str:
        if self._backend is None:
            return f"Valuation({len(self._values)} variables)"
        return (
            f"Valuation({len(self._values)} variables, "
            f"semiring={self._backend.name!r})"
        )


class CompiledPolynomial:
    """A polynomial compiled to flat numpy arrays for fast repeated evaluation.

    The compilation maps each variable to an index, groups monomials by their
    number of factors and stores, per group, a coefficient vector and an
    integer matrix of ``(variable index, exponent)`` pairs.  Evaluation is a
    handful of vectorised numpy operations, independent of Python-level
    per-monomial loops — which is what makes assignment over provenance much
    faster than re-running the query, and what makes the *compressed*
    provenance proportionally faster than the full one.
    """

    __slots__ = ("_variables", "_index", "_groups", "_constant")

    def __init__(self, polynomial: Polynomial) -> None:
        variables = sorted(polynomial.variables())
        self._variables: Tuple[str, ...] = tuple(variables)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(variables)}
        self._constant: float = 0.0

        by_width: Dict[int, List[Tuple[float, List[int], List[int]]]] = {}
        for monomial, coefficient in polynomial.terms():
            if monomial.is_unit():
                self._constant += coefficient
                continue
            var_indices: List[int] = []
            exponents: List[int] = []
            for name, exponent in monomial:
                var_indices.append(self._index[name])
                exponents.append(exponent)
            by_width.setdefault(len(var_indices), []).append(
                (coefficient, var_indices, exponents)
            )

        self._groups: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for width, rows in sorted(by_width.items()):
            coefficients = np.array([row[0] for row in rows], dtype=np.float64)
            indices = np.array([row[1] for row in rows], dtype=np.intp)
            exponents = np.array([row[2] for row in rows], dtype=np.float64)
            self._groups.append((coefficients, indices, exponents))

    @property
    def variables(self) -> Tuple[str, ...]:
        """The variables of the compiled polynomial, sorted."""
        return self._variables

    def num_monomials(self) -> int:
        """Number of non-constant monomials plus the constant term if present."""
        count = sum(len(coefficients) for coefficients, _, _ in self._groups)
        if self._constant != 0.0:
            count += 1
        return count

    def _values_vector(self, valuation: Mapping[str, Number]) -> np.ndarray:
        missing = [name for name in self._variables if name not in valuation]
        if missing:
            raise MissingValuationError(missing)
        return np.array(
            [float(valuation[name]) for name in self._variables], dtype=np.float64
        )

    def evaluate(self, valuation: Mapping[str, Number]) -> float:
        """Evaluate under ``valuation`` (raises if variables are missing)."""
        if not self._variables:
            return self._constant
        values = self._values_vector(valuation)
        total = self._constant
        for coefficients, indices, exponents in self._groups:
            gathered = values[indices]
            if np.any(exponents != 1.0):
                gathered = np.power(gathered, exponents)
            total += float(np.dot(coefficients, np.prod(gathered, axis=1)))
        return total

    def evaluate_many(
        self, valuations: Sequence[Mapping[str, Number]]
    ) -> np.ndarray:
        """Evaluate under a batch of valuations, returning one result each.

        The batch is lowered to a single ``valuations × variables`` matrix and
        each monomial-width group is evaluated with one vectorised pass, so
        the per-valuation Python overhead of :meth:`evaluate` is paid once for
        the whole batch.
        """
        if not valuations:
            return np.zeros(0, dtype=np.float64)
        if not self._variables:
            return np.full(len(valuations), self._constant, dtype=np.float64)
        matrix = np.stack([self._values_vector(v) for v in valuations])
        totals = np.full(len(valuations), self._constant, dtype=np.float64)
        for coefficients, indices, exponents in self._groups:
            gathered = matrix[:, indices]
            if np.any(exponents != 1.0):
                gathered = np.power(gathered, exponents)
            totals += np.prod(gathered, axis=2) @ coefficients
        return totals


class _MonomialGroup:
    """One width-group of a compiled provenance set (CSR-style flat arrays).

    All monomials with the same number of factors live in one group, sorted
    by result row so per-row totals are a contiguous segmented sum
    (``np.add.reduceat``) instead of a scattered ``np.add.at``.
    """

    __slots__ = (
        "coefficients",
        "indices",
        "exponents",
        "segment_starts",
        "segment_rows",
        "has_higher_powers",
    )

    def __init__(
        self,
        rows: np.ndarray,
        coefficients: np.ndarray,
        indices: np.ndarray,
        exponents: np.ndarray,
    ) -> None:
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        self.coefficients: np.ndarray = coefficients[order]
        self.indices: np.ndarray = indices[order]
        self.exponents: np.ndarray = exponents[order]
        boundaries = np.flatnonzero(np.diff(rows)) + 1
        self.segment_starts: np.ndarray = np.concatenate(([0], boundaries))
        self.segment_rows: np.ndarray = rows[self.segment_starts]
        self.has_higher_powers: bool = bool(np.any(self.exponents != 1.0))

    def contributions(self, matrix: np.ndarray) -> np.ndarray:
        """Per-monomial contributions for a ``... × variables`` value matrix."""
        gathered = matrix[..., self.indices]
        if self.has_higher_powers:
            gathered = np.power(gathered, self.exponents)
        return np.prod(gathered, axis=-1) * self.coefficients


class CompiledProvenanceSet(CompiledSemiringSet):
    """A :class:`ProvenanceSet` compiled for fast repeated assignment.

    All polynomials share one variable index; the monomials are lowered into
    flat numpy arrays (coefficient vector, variable-index matrix, exponent
    matrix) grouped by factor count and sorted by result row.  Evaluating the
    whole set under one valuation — or a whole ``scenarios × variables``
    matrix of valuations (:meth:`evaluate_matrix`) — is a handful of
    vectorised operations with no per-monomial Python loop.
    """

    #: Implements the sparse delta surface (``baseline_totals`` /
    #: ``evaluate_deltas``) the batch evaluator's sparse mode dispatches on.
    supports_deltas = True

    #: The semiring backend this compiled form belongs to (the name stamped
    #: into compiled stores; see :mod:`repro.provenance.store`).
    backend_name = "real"

    __slots__ = (
        "_keys",
        "_variables",
        "_index",
        "_constant",
        "_groups",
        "_delta_index",
        "_delta_baseline",
        "_fingerprint",
        "_store_path",
    )

    def __init__(self, provenance: ProvenanceSet) -> None:
        self._delta_index = None
        self._delta_baseline = []
        self._fingerprint = provenance.fingerprint()
        self._store_path = None
        self._keys: Tuple[Tuple, ...] = provenance.keys()
        variables = sorted(provenance.variables())
        self._variables: Tuple[str, ...] = tuple(variables)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(variables)}
        key_index = {key: i for i, key in enumerate(self._keys)}

        self._constant = np.zeros(len(self._keys), dtype=np.float64)
        by_width: Dict[int, List[Tuple[int, float, List[int], List[int]]]] = {}
        for key, polynomial in provenance.items():
            row = key_index[key]
            for monomial, coefficient in polynomial.terms():
                if monomial.is_unit():
                    self._constant[row] += coefficient
                    continue
                var_indices: List[int] = []
                exponents: List[int] = []
                for name, exponent in monomial:
                    var_indices.append(self._index[name])
                    exponents.append(exponent)
                by_width.setdefault(len(var_indices), []).append(
                    (row, coefficient, var_indices, exponents)
                )

        self._groups: List[_MonomialGroup] = []
        for width, rows in sorted(by_width.items()):
            self._groups.append(
                _MonomialGroup(
                    np.array([r[0] for r in rows], dtype=np.intp),
                    np.array([r[1] for r in rows], dtype=np.float64),
                    np.array([r[2] for r in rows], dtype=np.intp),
                    np.array([r[3] for r in rows], dtype=np.float64),
                )
            )

    @property
    def keys(self) -> Tuple[Tuple, ...]:
        """The result keys, in the order of the rows returned by :meth:`evaluate`."""
        return self._keys

    @property
    def variables(self) -> Tuple[str, ...]:
        """All variables of the compiled set, sorted."""
        return self._variables

    def size(self) -> int:
        """Total number of monomials (the provenance size)."""
        count = int(np.count_nonzero(self._constant))
        count += sum(len(group.coefficients) for group in self._groups)
        return count

    @property
    def source_fingerprint(self) -> Optional[str]:
        """The fingerprint of the provenance set this was compiled from."""
        return self._fingerprint

    @property
    def store_path(self) -> Optional[str]:
        """The compiled store backing this set's arrays (``None`` if in-memory).

        Set only by :func:`repro.provenance.store.open_store` — batch layers
        use it to ship a path (not a pickle) to worker processes.
        """
        return self._store_path

    def to_store(self, path) -> str:
        """Persist this compiled set as a mmap-able store file at ``path``.

        See :func:`repro.provenance.store.write_store`; the set itself keeps
        its in-memory arrays (reopen via :meth:`from_store` for mapped ones).
        """
        from repro.provenance.store import write_store

        return write_store(self, path)

    @classmethod
    def from_store(cls, path) -> "CompiledProvenanceSet":
        """Open the compiled store at ``path`` as an instance of this class.

        Raises :class:`~repro.exceptions.SerializationError` if the store
        was written by a different backend.
        """
        from repro.exceptions import SerializationError
        from repro.provenance.store import open_store

        compiled = open_store(path)
        if not isinstance(compiled, cls):
            raise SerializationError(
                f"{path}: store holds a {compiled.backend_name!r} compiled "
                f"set, not {cls.backend_name!r}"
            )
        return compiled

    def variable_index(self) -> Dict[str, int]:
        """A copy of the variable → column index shared by every polynomial."""
        return dict(self._index)

    def values_vector(self, valuation: Mapping[str, Number]) -> np.ndarray:
        """Lower a valuation to a value vector in this set's variable order."""
        missing = [name for name in self._variables if name not in valuation]
        if missing:
            raise MissingValuationError(missing)
        return np.array(
            [float(valuation[name]) for name in self._variables], dtype=np.float64
        )

    def evaluate(self, valuation: Mapping[str, Number]) -> Dict[Tuple, float]:
        """Evaluate every polynomial, returning key → numeric result."""
        totals = self._evaluate_values(self.values_vector(valuation))
        return {key: float(totals[i]) for i, key in enumerate(self._keys)}

    def evaluate_vector(self, valuation: Mapping[str, Number]) -> np.ndarray:
        """Like :meth:`evaluate` but returning a bare numpy vector (fast path)."""
        values = np.array(
            [float(valuation[name]) for name in self._variables], dtype=np.float64
        )
        return self._evaluate_values(values)

    def _evaluate_values(self, values: np.ndarray) -> np.ndarray:
        totals = self._constant.copy()
        for group in self._groups:
            segments = np.add.reduceat(
                group.contributions(values), group.segment_starts
            )
            totals[group.segment_rows] += segments
        return totals

    def evaluate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Evaluate a whole ``scenarios × variables`` matrix of valuations.

        ``matrix`` must have one column per variable of :attr:`variables`, in
        that order (build it with :meth:`values_vector` rows or via
        :class:`repro.batch.ScenarioBatch`).  Returns a
        ``scenarios × groups`` array whose columns follow :attr:`keys` — the
        whole batch is a handful of vectorised operations instead of one
        Python-level evaluation per scenario.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._variables):
            raise ValueError(
                f"expected a (scenarios, {len(self._variables)}) matrix, "
                f"got shape {matrix.shape}"
            )
        totals = np.tile(self._constant, (matrix.shape[0], 1))
        for group in self._groups:
            segments = np.add.reduceat(
                group.contributions(matrix), group.segment_starts, axis=1
            )
            totals[:, group.segment_rows] += segments
        return totals

    def evaluate_many(
        self, valuations: Sequence[Mapping[str, Number]]
    ) -> np.ndarray:
        """Evaluate a batch of valuation mappings (rows follow the input order)."""
        if not valuations:
            return np.zeros((0, len(self._keys)), dtype=np.float64)
        matrix = np.stack([self.values_vector(v) for v in valuations])
        return self.evaluate_matrix(matrix)

    # -- sparse delta evaluation ---------------------------------------------

    def dense_row_footprint(self) -> int:
        """float64 cells :meth:`evaluate_matrix` materialises per scenario row.

        The gather/power/product temporaries over every monomial factor
        dominate; chunking layers use this to bound peak memory.
        """
        cells = len(self._variables) + len(self._keys)
        for group in self._groups:
            cells += group.indices.size
        return max(1, cells)

    def _delta_groups(self):
        """Per-group inverted variable→monomial index plus per-monomial rows.

        Immutable once built (concurrent builders may race, but every result
        is equivalent), so cached compiled sets stay safe to share.
        """
        if self._delta_index is None:
            with trace(
                "incidence.delta_index",
                groups=len(self._groups),
                variables=len(self._variables),
            ):
                self._delta_index = tuple(
                    (
                        VariableIncidence.from_factor_arrays(
                            len(self._variables), group.indices, group.exponents
                        ),
                        expand_segment_rows(
                            group.segment_starts,
                            group.segment_rows,
                            len(group.coefficients),
                        ),
                    )
                    for group in self._groups
                )
        return self._delta_index

    def _delta_state(self, base_vector: np.ndarray):
        """Baseline-once state for ``base_vector``: contributions + totals."""
        base_vector = np.asarray(base_vector, dtype=np.float64)
        if base_vector.shape != (len(self._variables),):
            raise ValueError(
                f"expected a base vector of {len(self._variables)} variables, "
                f"got shape {base_vector.shape}"
            )
        key = base_vector.tobytes()
        cache = self._delta_baseline
        if cache is None:
            cache = self._delta_baseline = []
        for i, entry in enumerate(cache):
            if entry[0] == key:
                if i:
                    # Move-to-front LRU: the factored batch path alternates
                    # between the original and the factored baseline, so a
                    # one-slot cache would rebuild on every alternation.
                    cache.insert(0, cache.pop(i))
                return entry
        contributions = tuple(
            group.contributions(base_vector) for group in self._groups
        )
        totals = self._constant.copy()
        for group, contrib in zip(self._groups, contributions):
            totals[group.segment_rows] += np.add.reduceat(
                contrib, group.segment_starts
            )
        entry = (key, base_vector.copy(), contributions, totals)
        cache.insert(0, entry)
        del cache[_DELTA_BASELINE_SLOTS:]
        return entry

    def baseline_totals(self, base_vector: np.ndarray) -> np.ndarray:
        """The per-group results under ``base_vector`` (the sparse baseline)."""
        return self._delta_state(base_vector)[3].copy()

    def evaluate_deltas(
        self, base_vector: np.ndarray, plans: Sequence[DeltaPlanRow]
    ) -> np.ndarray:
        """Evaluate sparse scenarios as deltas against one shared base vector.

        Each plan is ``(changed_columns, new_values)`` over this set's
        variable order, with distinct columns per plan (what
        :meth:`~repro.batch.planner.ScenarioBatch.delta_plan` emits).  The
        base valuation is evaluated once; the whole
        batch of scenarios is then answered with a handful of vectorised
        passes over the *occurrences* of changed variables (via the inverted
        variable→monomial index) — O(touched monomials), not O(monomials ×
        scenarios):

        * every occurrence contributes its monomial's multiplicative ratio
          update ``old · (new/base − 1)``, accumulated into per-scenario
          result rows with one global ``bincount``;
        * monomials touched by several changed variables of one scenario get
          an exact product fix-up through two persistent scatter buffers;
        * scenarios whose ratios misbehave (a zero, subnormal or otherwise
          over/underflowing base value) fall back to one exact full
          re-evaluation of their row.

        Returns the same ``scenarios × groups`` array the dense
        :meth:`evaluate_matrix` path produces for the corresponding rows.
        """
        index = self._delta_groups()
        _key, base, contributions, totals = self._delta_state(base_vector)
        num_keys = len(self._keys)
        num_plans = len(plans)
        out = np.tile(totals, (num_plans, 1))
        if num_plans == 0 or num_keys == 0:
            return out

        # Split the batch: scenarios with finite per-column ratios take the
        # vectorised delta passes; the rest (zero/subnormal base values) are
        # re-evaluated exactly, one full row each.
        column_parts: List[np.ndarray] = []
        ratio_parts: List[np.ndarray] = []
        sid_parts: List[np.ndarray] = []
        exact = []
        # Scenarios with a single changed column can never need the
        # multi-touch product fix-up (a variable occurs once per monomial).
        multi_column = np.zeros(num_plans, dtype=np.bool_)
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            for s, (columns, values) in enumerate(plans):
                # Plans arrive as caller-shaped sequences; coercion is per-plan.
                columns = np.asarray(columns, dtype=np.intp)  # cobralint: disable=CL003 -- per-plan input coercion
                values = np.asarray(values, dtype=np.float64)  # cobralint: disable=CL003 -- per-plan input coercion
                if columns.size == 0:
                    continue
                ratios = values / base[columns]
                if np.isfinite(ratios).all():
                    column_parts.append(columns)
                    ratio_parts.append(ratios)
                    sid_parts.append(
                        np.full(columns.size, s, dtype=np.intp)
                    )
                    multi_column[s] = columns.size > 1
                else:
                    exact.append((s, columns, values))

            bad_sids: set = set()
            if column_parts:
                all_columns = np.concatenate(column_parts)
                all_ratios = np.concatenate(ratio_parts)
                all_sids = np.concatenate(sid_parts)
                corrections = np.zeros(num_plans * num_keys, dtype=np.float64)
                any_multi = bool(multi_column.any())
                for (incidence, monomial_rows), group, base_contrib in zip(
                    index, self._groups, contributions
                ):
                    # Scatter buffers for the product fix-up, allocated per
                    # call (not cached on the instance) so concurrently
                    # shared compiled sets never race on them; they are
                    # reset to the identity after each scenario segment.
                    if any_multi:
                        products = np.ones(
                            len(group.coefficients), dtype=np.float64
                        )
                        counts = np.zeros(
                            len(group.coefficients), dtype=np.float64
                        )
                    occ_pos, occ_exp, occ_counts = incidence.occurrences(
                        all_columns
                    )
                    if occ_pos.size == 0:
                        continue
                    occ_ratio = np.repeat(all_ratios, occ_counts)
                    if group.has_higher_powers:
                        occ_ratio = np.power(occ_ratio, occ_exp)
                    occ_sid = np.repeat(all_sids, occ_counts)
                    old = base_contrib[occ_pos]
                    linear = old * (occ_ratio - 1.0)
                    if not np.isfinite(linear).all():
                        # Over/underflowed updates poison their scenarios'
                        # correction rows; re-evaluate those rows exactly
                        # (the pollution is overwritten below).
                        bad = ~np.isfinite(linear)
                        bad_sids.update(int(s) for s in np.unique(occ_sid[bad]))
                    corrections += np.bincount(
                        occ_sid * num_keys + monomial_rows[occ_pos],
                        weights=linear,
                        minlength=num_plans * num_keys,
                    )[: num_plans * num_keys]
                    # Product fix-up: within one scenario, a monomial touched
                    # by k >= 2 changed variables must contribute
                    # old·(∏ratios − 1), not the sum of its linear updates.
                    if not any_multi:
                        continue
                    boundaries = np.flatnonzero(
                        np.concatenate(([True], occ_sid[1:] != occ_sid[:-1]))
                    )
                    ends = np.append(boundaries[1:], occ_sid.size)
                    # cobralint: disable=CL003 -- iterates scenario segments,
                    # not elements: one step per scenario with multi-touch
                    # monomials, each step fully vectorised via ufunc.at.
                    for b, e in zip(boundaries, ends):
                        if e - b < 2 or not multi_column[occ_sid[b]]:
                            continue
                        pos = occ_pos[b:e]
                        np.add.at(counts, pos, 1.0)
                        k = counts[pos]
                        collided = k > 1.0
                        if collided.any():
                            cpos = pos[collided]
                            cratio = occ_ratio[b:e][collided]
                            np.multiply.at(products, cpos, cratio)
                            fix = old[b:e][collided] * (
                                (products[cpos] - 1.0) / k[collided]
                                - (cratio - 1.0)
                            )
                            if np.isfinite(fix).all():
                                np.add.at(
                                    corrections,
                                    int(occ_sid[b]) * num_keys
                                    + monomial_rows[cpos],
                                    fix,
                                )
                            else:
                                bad_sids.add(int(occ_sid[b]))
                            products[cpos] = 1.0
                        counts[pos] = 0.0
                out += corrections.reshape(num_plans, num_keys)

            # Exact fallback: one full (still vectorised) row re-evaluation
            # per affected scenario — the cost of one dense row, only for
            # the scenarios that need it.
            if exact or bad_sids:
                scratch = base.copy()
                for s in sorted(bad_sids):
                    exact.append(
                        (
                            s,
                            np.asarray(plans[s][0], dtype=np.intp),  # cobralint: disable=CL003 -- rare overflow fallback, off the fast path
                            np.asarray(plans[s][1], dtype=np.float64),  # cobralint: disable=CL003 -- rare overflow fallback, off the fast path
                        )
                    )
                for s, columns, values in exact:
                    scratch[columns] = values
                    out[s] = self._evaluate_values(scratch)
                    scratch[columns] = base[columns]
        return out
