"""Zero-copy mmap-able on-disk format for compiled provenance artifacts.

The paper's motivating workflow is *compress provenance once on a strong
machine, then answer what-if queries cheaply elsewhere*.  The JSON formats in
:mod:`repro.provenance.serialization` round-trip the symbolic polynomials,
but every consumer then re-pays compilation (one pass over every monomial)
— and PR 4's process pool re-pickled the whole compiled set into every
worker.  This module persists the *compiled* form instead:

* one binary file holding the width-group arrays of a
  :class:`~repro.provenance.valuation.CompiledProvenanceSet` (or a numeric
  backend's compiled set) **plus** the pre-built
  :class:`~repro.provenance.incidence.VariableIncidence` CSR arrays
  (``ptr``/``positions``/``exponents``) of its sparse delta index;
* :func:`write_store` lays them out as 64-byte-aligned raw blocks behind a
  versioned JSON header (PR 3's version/kind envelope, written through the
  same atomic temp-file + ``os.replace`` machinery);
* :func:`open_store` maps the file read-only with one :func:`numpy.memmap`
  and reconstructs the compiled set with its arrays *viewing* the mapped
  pages — no parse, no copy, and every process opening the same store
  shares one page-cache copy of the data.

File layout::

    8 bytes   magic ``b"COBRASTO"``
    4 bytes   little-endian uint32: header length in bytes
    N bytes   UTF-8 JSON header — the version/kind envelope around backend
              name, source fingerprint, keys, variables, group metadata and
              the block directory {name: {dtype, shape, offset}}
    padding   to the next 64-byte boundary
    blocks    raw little-endian arrays, each 64-byte aligned

Offsets in the block directory are relative to the (alignment-rounded) end
of the header, so the header's own length never feeds back into it.

Opened stores are cached per ``(absolute path, mtime_ns, size)`` in a
process-wide :class:`~repro.provenance.valuation.FingerprintCache` reporting
``store_cache.hits``/``store_cache.misses`` into the metrics registry;
``store.build``/``store.open`` spans and ``store.builds``/``store.opens``
counters cover the two operations.

Integrity (format version 2): every block directory entry carries a CRC32
of its raw bytes, verified when the block is first mapped — and since
opening reconstructs the compiled set from *every* block, a corrupt store
fails at open time, before any kernel touches bad data.  Version-1 stores
(no checksums) remain readable.  :func:`quarantine_store` renames a store
that failed verification to ``<path>.quarantined`` so the next open does
not trip over it again; callers (the evaluator, sessions) then recompile
from provenance.  The ``store.open``/``store.read_block`` fault-injection
sites let the chaos suite drive these paths deterministically.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.provenance.backends.base import CompiledSemiringSet
    from repro.provenance.valuation import FingerprintCache

from repro.exceptions import SerializationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace
from repro.provenance.serialization import PathLike, _atomic_write_bytes
from repro.resilience import fault_point, record_degradation

#: Leading magic of every compiled-store file.
MAGIC = b"COBRASTO"

#: The ``kind`` stamped into the store's version envelope.
STORE_KIND = "compiled_store"

#: The store format version written by this build.  Version 2 added
#: per-block CRC32 checksums to the block directory.
STORE_VERSION = 2

#: Store format versions this build reads.  Version-1 stores simply lack
#: block checksums; their data layout is identical.
SUPPORTED_STORE_VERSIONS = (1, 2)

#: Every raw block (and the data section itself) starts on this boundary,
#: so mapped views are aligned for any vectorised access.
ALIGNMENT = 64

_HEADER_LEN_STRUCT = struct.Struct("<I")

#: On-disk dtypes: indices are always written as little-endian int64 (the
#: platform ``intp`` of every 64-bit host), values as little-endian float64.
_INDEX_DTYPE = "<i8"
_FLOAT_DTYPE = "<f8"


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _compiled_blocks(compiled: Any) -> List[Tuple[str, np.ndarray]]:
    """The named arrays of ``compiled`` in their canonical on-disk order.

    Includes the sparse delta index (built here if the set never evaluated
    deltas) so loaders get ``evaluate_deltas`` readiness for free.
    """
    blocks: List[Tuple[str, np.ndarray]] = [
        ("constant", np.ascontiguousarray(compiled._constant, dtype=_FLOAT_DTYPE))
    ]
    delta_index = compiled._delta_groups()
    for i, (group, entry) in enumerate(zip(compiled._groups, delta_index)):
        incidence, monomial_rows = entry[0], entry[1]
        blocks.extend(
            (
                (f"g{i}.coefficients", np.ascontiguousarray(group.coefficients, dtype=_FLOAT_DTYPE)),
                (f"g{i}.indices", np.ascontiguousarray(group.indices, dtype=_INDEX_DTYPE)),
                (f"g{i}.exponents", np.ascontiguousarray(group.exponents, dtype=_FLOAT_DTYPE)),
                (f"g{i}.segment_starts", np.ascontiguousarray(group.segment_starts, dtype=_INDEX_DTYPE)),
                (f"g{i}.segment_rows", np.ascontiguousarray(group.segment_rows, dtype=_INDEX_DTYPE)),
                (f"g{i}.inc.ptr", np.ascontiguousarray(incidence.ptr, dtype=_INDEX_DTYPE)),
                (f"g{i}.inc.positions", np.ascontiguousarray(incidence.positions, dtype=_INDEX_DTYPE)),
                (f"g{i}.inc.exponents", np.ascontiguousarray(incidence.exponents, dtype=_FLOAT_DTYPE)),
                (f"g{i}.monomial_rows", np.ascontiguousarray(monomial_rows, dtype=_INDEX_DTYPE)),
            )
        )
    return blocks


def write_store(compiled: Any, path: PathLike) -> str:
    """Persist ``compiled`` as a mmap-able store at ``path`` (atomically).

    ``compiled`` must be one of the numeric compiled forms — a real
    :class:`~repro.provenance.valuation.CompiledProvenanceSet` or a
    tropical/bool backend set; its ``backend_name`` attribute names which.
    Returns ``path`` (as a string) for chaining.
    """
    backend_name = getattr(compiled, "backend_name", None)
    if not backend_name:
        raise SerializationError(
            f"{type(compiled).__name__} has no compiled-store form "
            "(only the numeric real/tropical/bool compiled sets do)"
        )
    with trace(
        "store.build", backend=backend_name, monomials=compiled.size()
    ) as span:
        blocks = _compiled_blocks(compiled)
        directory: Dict[str, Dict[str, object]] = {}
        cursor = 0
        for name, array in blocks:
            cursor = _align(cursor)
            directory[name] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": cursor,
                "crc32": zlib.crc32(array.tobytes()),
            }
            cursor += array.nbytes

        groups_meta = []
        for group in compiled._groups:
            meta: Dict[str, object] = {
                "monomials": int(len(group.coefficients)),
            }
            has_higher = getattr(group, "has_higher_powers", None)
            if has_higher is not None:
                meta["has_higher_powers"] = bool(has_higher)
            groups_meta.append(meta)

        payload = {
            "backend": backend_name,
            "fingerprint": compiled.source_fingerprint,
            "keys": [list(key) for key in compiled.keys],
            "variables": list(compiled.variables),
            "num_constants": int(getattr(compiled, "_num_constants", 0)),
            "groups": groups_meta,
            "blocks": directory,
        }
        header = json.dumps(
            {"version": STORE_VERSION, "kind": STORE_KIND, "store": payload}
        ).encode("utf-8")

        prefix_len = len(MAGIC) + _HEADER_LEN_STRUCT.size + len(header)
        data_start = _align(prefix_len)
        buffer = bytearray(data_start + cursor)
        buffer[: len(MAGIC)] = MAGIC
        _HEADER_LEN_STRUCT.pack_into(buffer, len(MAGIC), len(header))
        buffer[len(MAGIC) + _HEADER_LEN_STRUCT.size : prefix_len] = header
        for name, array in blocks:
            start = data_start + int(directory[name]["offset"])  # type: ignore[arg-type]
            buffer[start : start + array.nbytes] = array.tobytes()

        _atomic_write_bytes(path, bytes(buffer))
        span.set("bytes", len(buffer))
    get_registry().inc("store.builds")
    return os.fspath(path)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def read_store_header(path: PathLike) -> Dict[str, object]:
    """The store's header payload (backend, fingerprint, keys, directory).

    Validates the magic and the version/kind envelope without touching any
    data block — cheap enough to probe a store before adopting it.

    Raises
    ------
    SerializationError
        On a bad magic, a truncated file, malformed header JSON, a version
        mismatch or the wrong envelope kind.
    """
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + _HEADER_LEN_STRUCT.size)
        if len(prefix) < len(MAGIC) + _HEADER_LEN_STRUCT.size:
            raise SerializationError(f"{path}: truncated compiled store")
        if prefix[: len(MAGIC)] != MAGIC:
            raise SerializationError(
                f"{path}: not a COBRA compiled store (bad magic)"
            )
        (header_len,) = _HEADER_LEN_STRUCT.unpack_from(prefix, len(MAGIC))
        header = handle.read(header_len)
    if len(header) < header_len:
        raise SerializationError(f"{path}: truncated compiled-store header")
    try:
        document = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"{path}: corrupted compiled-store header ({exc})"
        ) from exc
    # Unlike the JSON formats there is no legacy unversioned store: the
    # envelope is mandatory, so a header that is not one is corruption.
    if not (
        isinstance(document, dict)
        and "version" in document
        and isinstance(document.get("kind"), str)
    ):
        raise SerializationError(
            f"{path}: compiled-store header is missing its version envelope"
        )
    version = document["version"]
    if version not in SUPPORTED_STORE_VERSIONS:
        raise SerializationError(
            f"{path}: unsupported format version {version!r} (this build "
            f"reads versions {', '.join(map(str, SUPPORTED_STORE_VERSIONS))})"
        )
    if document.get("kind") != STORE_KIND:
        raise SerializationError(
            f"{path}: expected a {STORE_KIND!r} file, "
            f"found kind={document.get('kind')!r}"
        )
    if "store" not in document:
        raise SerializationError(
            f"{path}: versioned {STORE_KIND!r} file is missing its "
            "'store' payload"
        )
    payload = document["store"]
    if not isinstance(payload, dict) or "blocks" not in payload:
        raise SerializationError(
            f"{path}: compiled-store header has no block directory"
        )
    return payload


def _data_start(path: PathLike) -> int:
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC) + _HEADER_LEN_STRUCT.size)
        (header_len,) = _HEADER_LEN_STRUCT.unpack_from(prefix, len(MAGIC))
    return _align(len(MAGIC) + _HEADER_LEN_STRUCT.size + header_len)


class _BlockReader:
    """Zero-copy views into one mapped store file.

    Version-2 directory entries carry a ``crc32`` of the block's raw
    bytes; the first view of each block verifies it (verified names are
    memoised, so steady-state reads stay zero-cost).  Opening a store
    touches every block, which is what makes "verified on open" true.
    """

    def __init__(
        self, path: str, directory: Dict[str, Dict], data_start: int
    ) -> None:
        self._path = path
        self._raw = np.memmap(path, dtype=np.uint8, mode="r")
        self._directory = directory
        self._data_start = data_start
        self._verified: set = set()

    def __call__(self, name: str) -> np.ndarray:
        fault_point("store.read_block", path=self._path, block=name)
        try:
            meta = self._directory[name]
        except KeyError:
            raise SerializationError(
                f"{self._path}: compiled store is missing block {name!r}"
            ) from None
        dtype = np.dtype(meta["dtype"])
        shape = tuple(int(n) for n in meta["shape"])
        count = int(np.prod(shape)) if shape else 1
        start = self._data_start + int(meta["offset"])
        end = start + dtype.itemsize * count
        if end > self._raw.size:
            raise SerializationError(
                f"{self._path}: truncated compiled store (block {name!r} "
                f"ends at byte {end}, file has {self._raw.size})"
            )
        expected_crc = meta.get("crc32")
        if expected_crc is not None and name not in self._verified:
            actual_crc = zlib.crc32(self._raw[start:end])
            if actual_crc != int(expected_crc):
                raise SerializationError(
                    f"{self._path}: block {name!r} failed its CRC32 check "
                    f"(expected {int(expected_crc):#010x}, got "
                    f"{actual_crc:#010x}) — the store is corrupt"
                )
            self._verified.add(name)
        view = self._raw[start:end].view(dtype).reshape(shape)
        if view.flags.writeable:
            # mode="r" maps must stay read-only end to end: a writeable view
            # would let kernel code corrupt the shared page-cache copy every
            # other process sees.
            raise SerializationError(
                f"{self._path}: block {name!r} mapped writeable — "
                "refusing to hand out a mutable view of a shared store"
            )
        return view


def _as_key(item: object) -> object:
    return tuple(_as_key(part) for part in item) if isinstance(item, list) else item


def _store_classes() -> Dict[str, Tuple[type, type]]:
    # Imported lazily: valuation/backends import is cheap but would be a
    # cycle at module import time (valuation lazily imports this module).
    from repro.provenance.backends.numeric import (
        _CompiledBooleanSet,
        _CompiledTropicalSet,
        _SegmentGroup,
    )
    from repro.provenance.valuation import CompiledProvenanceSet, _MonomialGroup

    return {
        "real": (CompiledProvenanceSet, _MonomialGroup),
        "tropical": (_CompiledTropicalSet, _SegmentGroup),
        "bool": (_CompiledBooleanSet, _SegmentGroup),
    }


def _open_store(path: str) -> "CompiledSemiringSet":
    from repro.provenance.incidence import VariableIncidence

    fault_point("store.open", path=path)
    header = read_store_header(path)
    backend_name = header.get("backend")
    classes = _store_classes()
    if backend_name not in classes:
        raise SerializationError(
            f"{path}: unknown compiled-store backend {backend_name!r} "
            f"(this build reads {sorted(classes)})"
        )
    set_class, group_class = classes[backend_name]
    block = _BlockReader(path, header["blocks"], _data_start(path))

    compiled = set_class.__new__(set_class)
    compiled._keys = tuple(_as_key(key) for key in header["keys"])
    compiled._variables = tuple(header["variables"])
    compiled._index = {name: i for i, name in enumerate(compiled._variables)}
    compiled._constant = block("constant")
    compiled._fingerprint = header.get("fingerprint")
    compiled._store_path = os.path.abspath(path)
    if hasattr(compiled, "_num_constants"):
        compiled._num_constants = int(header.get("num_constants", 0))

    groups = []
    delta_index = []
    for i, meta in enumerate(header.get("groups", [])):
        group = group_class.__new__(group_class)
        group.coefficients = block(f"g{i}.coefficients")
        group.indices = block(f"g{i}.indices")
        group.exponents = block(f"g{i}.exponents")
        group.segment_starts = block(f"g{i}.segment_starts")
        group.segment_rows = block(f"g{i}.segment_rows")
        if hasattr(group_class, "has_higher_powers") or "has_higher_powers" in getattr(
            group_class, "__slots__", ()
        ):
            group.has_higher_powers = bool(meta.get("has_higher_powers", False))
        groups.append(group)
        incidence = VariableIncidence(
            block(f"g{i}.inc.ptr"),
            block(f"g{i}.inc.positions"),
            block(f"g{i}.inc.exponents"),
        )
        monomial_rows = block(f"g{i}.monomial_rows")
        if backend_name == "real":
            delta_index.append((incidence, monomial_rows))
        else:
            num_monomials = int(meta["monomials"])
            ends = np.append(
                group.segment_starts[1:], num_monomials
            ).astype(np.intp)
            delta_index.append((incidence, monomial_rows, ends))
    compiled._groups = groups
    compiled._delta_index = tuple(delta_index)
    compiled._delta_baseline = []
    return compiled


# ---------------------------------------------------------------------------
# The open-store cache
# ---------------------------------------------------------------------------

_STORE_CACHE: Optional["FingerprintCache"] = None


def _store_cache() -> "FingerprintCache":
    # Lazy, like the incidence cache: constructing it registers the
    # store_cache.hits/.misses counters with the metrics registry.
    from repro.provenance.valuation import FingerprintCache

    global _STORE_CACHE
    if _STORE_CACHE is None:
        _STORE_CACHE = FingerprintCache(capacity=8, metrics="store_cache")
    return _STORE_CACHE


def open_store(path: PathLike, cached: bool = True) -> "CompiledSemiringSet":
    """Open the compiled store at ``path`` as a mmap-backed compiled set.

    The returned object is the exact compiled class the store's backend
    produces (``CompiledProvenanceSet`` for ``"real"``, the tropical/bool
    kernels otherwise) with every array viewing the read-only mapped file —
    opening is O(header), not O(monomials), and concurrent processes share
    one page-cache copy of the data.

    ``cached=True`` (default) consults the process-wide store cache, keyed
    by ``(absolute path, mtime_ns, size)`` so a rewritten file is re-opened;
    compiled sets are safe to share (their arrays are immutable and the lazy
    delta baseline tolerates races).

    Raises
    ------
    SerializationError
        On a bad magic, corrupted or truncated contents, a format-version
        mismatch or the wrong envelope kind.
    FileNotFoundError
        When ``path`` does not exist.
    """
    path = os.fspath(path)
    stat = os.stat(path)

    def build() -> "CompiledSemiringSet":
        with trace("store.open", path=os.path.basename(path)) as span:
            compiled = _open_store(path)
            span.update(
                {"backend": compiled.backend_name, "bytes": stat.st_size}
            )
        get_registry().inc("store.opens")
        return compiled

    if not cached:
        return build()
    key = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
    return _store_cache().get_or_build(key, build)


def clear_store_cache() -> None:
    """Drop every cached open store (unmaps once no compiled set holds it)."""
    if _STORE_CACHE is not None:
        _STORE_CACHE.clear()


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------


def quarantine_store(path: PathLike) -> Optional[str]:
    """Move a corrupt store out of the way; the quarantine path (or ``None``).

    The file is renamed to ``<path>.quarantined`` (``.quarantined.1``,
    ``.quarantined.2``, … when earlier quarantines already hold the name)
    so the next open fails fast with :class:`FileNotFoundError` instead of
    re-verifying a known-bad file.  Bumps ``resilience.quarantines`` and
    records a degradation event.  Returns ``None`` when ``path`` no longer
    exists (e.g. a concurrent quarantine won the rename).
    """
    path = os.fspath(path)
    target = f"{path}.quarantined"
    suffix = 0
    while os.path.exists(target):
        suffix += 1
        target = f"{path}.quarantined.{suffix}"
    try:
        os.replace(path, target)
    except FileNotFoundError:
        return None
    get_registry().inc("resilience.quarantines")
    record_degradation(f"quarantined corrupt store {path} -> {target}")
    return target
