"""Aggregate provenance in the style of Amsterdamer et al. (PODS 2011).

Aggregate query results cannot be described by a bare semiring annotation:
the *value* being aggregated and the *annotation* saying which tuples
contributed must be combined.  PODS 2011 models this with a semimodule whose
elements are formal sums of ``value ⊗ annotation`` terms.

In COBRA's setting the aggregated values are numbers, the annotations are
N[X] provenance polynomials, and the aggregate of interest is SUM, so a
tensor ``v ⊗ p`` flattens to the polynomial ``v * p``.  We keep the
intermediate tensor representation explicit (:class:`AggregateExpression`)
because it is the faithful substrate the paper's Example 2 is produced from
— the expression ``208.8 · p1 · m1 + ...`` is exactly the flattening of
``SUM(Dur * Price)`` over provenance-annotated join results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Tuple

from repro.provenance.polynomial import Number, Polynomial


@dataclass(frozen=True)
class AggregateTerm:
    """One ``value ⊗ annotation`` tensor in an aggregate expression.

    Attributes
    ----------
    value:
        The numeric value contributed by one joined tuple (e.g.
        ``Dur * Price`` for one customer-month).
    annotation:
        The provenance polynomial annotating that tuple (e.g. ``p1 * m1``).
    """

    value: float
    annotation: Polynomial

    def flatten(self) -> Polynomial:
        """Flatten the tensor into an N[X] polynomial: ``value * annotation``."""
        return self.annotation.scale(self.value)


class AggregateExpression:
    """A formal sum of :class:`AggregateTerm` tensors (a semimodule element).

    Supports the two semimodule operations needed by SUM aggregation —
    addition of expressions and scaling of an expression by a semiring
    annotation — plus flattening into a provenance polynomial, which is what
    COBRA stores per result group.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[AggregateTerm] = ()) -> None:
        self._terms: List[AggregateTerm] = list(terms)

    @classmethod
    def zero(cls) -> "AggregateExpression":
        """The empty aggregate (neutral element of expression addition)."""
        return cls()

    @classmethod
    def of(cls, value: Number, annotation: Polynomial) -> "AggregateExpression":
        """A single-tensor expression ``value ⊗ annotation``."""
        return cls([AggregateTerm(float(value), annotation)])

    def terms(self) -> Tuple[AggregateTerm, ...]:
        """The tensors of this expression, in insertion order."""
        return tuple(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __add__(self, other: "AggregateExpression") -> "AggregateExpression":
        if not isinstance(other, AggregateExpression):
            return NotImplemented
        return AggregateExpression(self._terms + other._terms)

    def scale_by_annotation(self, annotation: Polynomial) -> "AggregateExpression":
        """Multiply every tensor's annotation by ``annotation``.

        This is the semimodule action of the provenance semiring: when an
        aggregated tuple is further joined with an annotated tuple, the whole
        aggregate expression is scaled by that tuple's annotation.
        """
        return AggregateExpression(
            AggregateTerm(term.value, term.annotation * annotation)
            for term in self._terms
        )

    def scale_by_value(self, factor: Number) -> "AggregateExpression":
        """Multiply every tensor's numeric value by ``factor``."""
        return AggregateExpression(
            AggregateTerm(term.value * float(factor), term.annotation)
            for term in self._terms
        )

    def flatten(self) -> Polynomial:
        """Flatten into an N[X] polynomial (sum of ``value * annotation``)."""
        result = Polynomial.zero()
        for term in self._terms:
            result = result + term.flatten()
        return result

    def evaluate(self, valuation: Mapping[str, Number]) -> float:
        """Evaluate the aggregate under a valuation of the provenance variables."""
        return self.flatten().evaluate(valuation)

    def __repr__(self) -> str:
        return f"AggregateExpression(terms={len(self._terms)})"
