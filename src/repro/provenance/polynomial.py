"""Provenance polynomials and keyed collections of them.

A :class:`Polynomial` is a finite sum of monomials with numeric coefficients,
the symbolic representation of a (possibly aggregate) query result described
in Section 2 of the COBRA paper.  A :class:`ProvenanceSet` is the multiset of
polynomials COBRA receives as input — in practice one polynomial per result
group (e.g. one per zip code in the running example), keyed by the group-by
values so the engine can report per-group result changes.
"""

from __future__ import annotations

from numbers import Real
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import (
    InvalidPolynomialError,
    MissingValuationError,
)
from repro.provenance.monomial import Monomial, VariableLike
from repro.provenance.variables import variable_name

Number = Union[int, float]

#: Coefficients with absolute value below this threshold are dropped when a
#: polynomial is normalised.  Exact zero always collapses; the epsilon guards
#: against float dust produced by long chains of additions.
_ZERO_EPSILON = 1e-12


class Polynomial:
    """An immutable provenance polynomial: a map from monomials to coefficients.

    Construction normalises the representation: terms with (numerically) zero
    coefficients are dropped and duplicate monomials are merged by summing
    their coefficients.

    Examples
    --------
    >>> p = Polynomial({Monomial.of("p1", "m1"): 208.8, Monomial.of("p1", "m3"): 240})
    >>> p.num_monomials()
    2
    >>> sorted(p.variables())
    ['m1', 'm3', 'p1']
    """

    __slots__ = ("_terms", "_hash")

    def __init__(
        self,
        terms: Optional[Mapping[Monomial, Number]] = None,
    ) -> None:
        merged: Dict[Monomial, float] = {}
        if terms:
            for monomial, coefficient in terms.items():
                if not isinstance(monomial, Monomial):
                    raise InvalidPolynomialError(
                        f"polynomial keys must be Monomial, got {type(monomial).__name__}"
                    )
                if not isinstance(coefficient, Real):
                    raise InvalidPolynomialError(
                        f"coefficient of {monomial.to_text()} must be a number, "
                        f"got {coefficient!r}"
                    )
                value = merged.get(monomial, 0.0) + float(coefficient)
                merged[monomial] = value
        self._terms: Dict[Monomial, float] = {
            m: c for m, c in merged.items() if abs(c) > _ZERO_EPSILON
        }
        self._hash: Optional[int] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The additive identity (no monomials)."""
        return cls()

    @classmethod
    def one(cls) -> "Polynomial":
        """The multiplicative identity (the unit monomial with coefficient 1)."""
        return cls({Monomial.unit(): 1.0})

    @classmethod
    def constant(cls, value: Number) -> "Polynomial":
        """A constant polynomial."""
        return cls({Monomial.unit(): float(value)})

    @classmethod
    def variable(cls, var: VariableLike, coefficient: Number = 1.0) -> "Polynomial":
        """The polynomial ``coefficient * var``."""
        return cls({Monomial.of(variable_name(var)): float(coefficient)})

    @classmethod
    def from_terms(
        cls, terms: Iterable[Tuple[Number, Sequence[VariableLike]]]
    ) -> "Polynomial":
        """Build a polynomial from ``(coefficient, [variables...])`` terms.

        Repeated variables inside a term raise the exponent, and repeated
        identical terms are merged, e.g.
        ``Polynomial.from_terms([(2, ["x", "x"]), (3, ["y"])])`` is
        ``2*x^2 + 3*y``.
        """
        accumulated: Dict[Monomial, float] = {}
        for coefficient, variables in terms:
            monomial = Monomial.of(*variables)
            accumulated[monomial] = accumulated.get(monomial, 0.0) + float(coefficient)
        return cls(accumulated)

    # -- inspection --------------------------------------------------------

    def terms(self) -> Tuple[Tuple[Monomial, float], ...]:
        """All ``(monomial, coefficient)`` pairs in canonical (sorted) order."""
        return tuple(sorted(self._terms.items(), key=lambda item: item[0]))

    def coefficient(self, monomial: Monomial) -> float:
        """Coefficient of ``monomial`` (0.0 if absent)."""
        return self._terms.get(monomial, 0.0)

    def num_monomials(self) -> int:
        """The number of monomials — the paper's measure of provenance size."""
        return len(self._terms)

    def variables(self) -> frozenset:
        """The set of variable names occurring in the polynomial."""
        names = set()
        for monomial in self._terms:
            names.update(monomial.variables())
        return frozenset(names)

    def degree(self) -> int:
        """The maximum total degree over all monomials (0 for the zero polynomial)."""
        if not self._terms:
            return 0
        return max(monomial.degree() for monomial in self._terms)

    def is_zero(self) -> bool:
        """Whether this is the zero polynomial."""
        return not self._terms

    def constant_term(self) -> float:
        """The coefficient of the unit monomial."""
        return self._terms.get(Monomial.unit(), 0.0)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[Tuple[Monomial, float]]:
        return iter(self.terms())

    def __contains__(self, monomial: object) -> bool:
        return monomial in self._terms

    # -- algebra -----------------------------------------------------------

    def __add__(self, other: "Polynomial | Number") -> "Polynomial":
        if isinstance(other, Real):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        merged = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            merged[monomial] = merged.get(monomial, 0.0) + coefficient
        return Polynomial(merged)

    __radd__ = __add__

    def __sub__(self, other: "Polynomial | Number") -> "Polynomial":
        if isinstance(other, Real):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + other.scale(-1.0)

    def __mul__(self, other: "Polynomial | Number") -> "Polynomial":
        if isinstance(other, Real):
            return self.scale(float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        product: Dict[Monomial, float] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in other._terms.items():
                key = mono_a * mono_b
                product[key] = product.get(key, 0.0) + coeff_a * coeff_b
        return Polynomial(product)

    __rmul__ = __mul__

    def __neg__(self) -> "Polynomial":
        return self.scale(-1.0)

    def scale(self, factor: Number) -> "Polynomial":
        """Multiply every coefficient by ``factor``."""
        return Polynomial(
            {monomial: coefficient * float(factor)
             for monomial, coefficient in self._terms.items()}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables through ``mapping``, merging coinciding monomials.

        This is the primitive underlying abstraction: when the mapping sends
        several variables to the same meta-variable, previously distinct
        monomials may become identical and their coefficients are summed —
        precisely the compression effect described in the paper.
        """
        merged: Dict[Monomial, float] = {}
        for monomial, coefficient in self._terms.items():
            target = monomial.rename(mapping)
            merged[target] = merged.get(target, 0.0) + coefficient
        return Polynomial(merged)

    def substitute(self, assignment: Mapping[str, Number]) -> "Polynomial":
        """Partially evaluate: replace some variables by numeric values.

        Variables not mentioned in ``assignment`` remain symbolic.  The result
        is again a polynomial; substituting every variable yields a constant
        polynomial whose value equals :meth:`evaluate`.
        """
        merged: Dict[Monomial, float] = {}
        for monomial, coefficient in self._terms.items():
            numeric = coefficient
            remaining: Dict[str, int] = {}
            for name, exp in monomial:
                if name in assignment:
                    numeric *= float(assignment[name]) ** exp
                else:
                    remaining[name] = exp
            key = Monomial(remaining)
            merged[key] = merged.get(key, 0.0) + numeric
        return Polynomial(merged)

    def evaluate(self, valuation: Mapping[str, Number]) -> float:
        """Fully evaluate the polynomial under ``valuation``.

        Raises
        ------
        MissingValuationError
            If some variable of the polynomial has no value in ``valuation``.
        """
        missing = [name for name in self.variables() if name not in valuation]
        if missing:
            raise MissingValuationError(missing)
        total = 0.0
        for monomial, coefficient in self._terms.items():
            term = coefficient
            for name, exp in monomial:
                term *= float(valuation[name]) ** exp
            total += term
        return total

    def restrict_variables(self, variables: Iterable[str]) -> "Polynomial":
        """Keep only monomials whose variables are all within ``variables``."""
        keep = set(variables)
        return Polynomial(
            {
                monomial: coefficient
                for monomial, coefficient in self._terms.items()
                if set(monomial.variables()) <= keep
            }
        )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def almost_equal(self, other: "Polynomial", tolerance: float = 1e-9) -> bool:
        """Structural equality up to a per-coefficient absolute ``tolerance``."""
        keys = set(self._terms) | set(other._terms)
        return all(
            abs(self._terms.get(k, 0.0) - other._terms.get(k, 0.0)) <= tolerance
            for k in keys
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(
                (monomial, round(coefficient, 9))
                for monomial, coefficient in self._terms.items()
            )))
        return self._hash

    def __repr__(self) -> str:
        return f"Polynomial({self.to_text()!r})"

    def to_text(self, precision: int = 6) -> str:
        """Render as text, e.g. ``"208.8*p1*m1 + 240*p1*m3"``."""
        if not self._terms:
            return "0"
        parts: List[str] = []
        for monomial, coefficient in self.terms():
            coeff_text = _format_number(coefficient, precision)
            if monomial.is_unit():
                parts.append(coeff_text)
            elif coefficient == 1.0:
                parts.append(monomial.to_text())
            else:
                parts.append(f"{coeff_text}*{monomial.to_text()}")
        return " + ".join(parts)


def _format_number(value: float, precision: int) -> str:
    """Format a coefficient without a trailing ``.0`` for integral values."""
    if float(value).is_integer():
        return str(int(value))
    return f"{round(value, precision):g}"


class ProvenanceSet:
    """A keyed multiset of provenance polynomials.

    This is COBRA's input: "a multiset of polynomials, intuitively including
    all polynomials that appear in the provenance-aware result of query
    evaluation".  Each polynomial is keyed by the identifying values of its
    result tuple (e.g. the ``Zip`` group-by key) so the engine can show how
    each result row changes under a hypothetical valuation.
    """

    __slots__ = ("_polynomials", "_variables_cache", "_fingerprint_cache")

    def __init__(
        self,
        polynomials: Optional[Mapping[Tuple, Polynomial]] = None,
    ) -> None:
        self._polynomials: Dict[Tuple, Polynomial] = {}
        self._variables_cache: Optional[frozenset] = None
        self._fingerprint_cache: Optional[str] = None
        if polynomials:
            for key, polynomial in polynomials.items():
                self[key] = polynomial

    # -- mutation (builder-style) -------------------------------------------

    def _invalidate_caches(self) -> None:
        self._variables_cache = None
        self._fingerprint_cache = None

    def __setitem__(self, key, polynomial: Polynomial) -> None:
        if not isinstance(polynomial, Polynomial):
            raise InvalidPolynomialError(
                f"ProvenanceSet values must be Polynomial, got {type(polynomial).__name__}"
            )
        self._polynomials[_normalize_key(key)] = polynomial
        self._invalidate_caches()

    def add(self, key, polynomial: Polynomial) -> None:
        """Add (or sum into) the polynomial registered under ``key``."""
        key = _normalize_key(key)
        if key in self._polynomials:
            self._polynomials[key] = self._polynomials[key] + polynomial
            self._invalidate_caches()
        else:
            self[key] = polynomial

    # -- access --------------------------------------------------------------

    def __getitem__(self, key) -> Polynomial:
        return self._polynomials[_normalize_key(key)]

    def get(self, key, default: Optional[Polynomial] = None) -> Optional[Polynomial]:
        """Return the polynomial under ``key`` or ``default``."""
        return self._polynomials.get(_normalize_key(key), default)

    def __contains__(self, key) -> bool:
        return _normalize_key(key) in self._polynomials

    def __len__(self) -> int:
        return len(self._polynomials)

    def keys(self) -> Tuple[Tuple, ...]:
        """All result keys in insertion order."""
        return tuple(self._polynomials.keys())

    def items(self) -> Iterator[Tuple[Tuple, Polynomial]]:
        """Iterate over ``(key, polynomial)`` pairs."""
        return iter(self._polynomials.items())

    def polynomials(self) -> Tuple[Polynomial, ...]:
        """All polynomials, in key insertion order."""
        return tuple(self._polynomials.values())

    # -- aggregate measures ---------------------------------------------------

    def size(self) -> int:
        """Total number of monomials across all polynomials (provenance size)."""
        return sum(p.num_monomials() for p in self._polynomials.values())

    def variables(self) -> frozenset:
        """Union of variables across all polynomials (cached until mutation).

        Scenario selection and batch compilation both need the full variable
        universe repeatedly; the union is computed once and invalidated by the
        builder-style mutators, so callers can share one variable index
        instead of recomputing the union per use.
        """
        if self._variables_cache is None:
            names = set()
            for polynomial in self._polynomials.values():
                names.update(polynomial.variables())
            self._variables_cache = frozenset(names)
        return self._variables_cache

    def num_variables(self) -> int:
        """Number of distinct variables — the paper's expressiveness measure."""
        return len(self.variables())

    def fingerprint(self) -> str:
        """A content hash of the set, stable across processes (cached).

        Two provenance sets with the same keys and structurally identical
        polynomials (coefficients rounded to 9 decimals, the same tolerance
        :meth:`Polynomial.__hash__` uses) share a fingerprint.  Batch
        evaluation uses it to key compiled-provenance caches.
        """
        if self._fingerprint_cache is None:
            import hashlib

            # Keys are visited in sorted order (so insertion order does not
            # matter) and every field is terminated with a separator byte
            # (so field boundaries cannot be shifted between inputs).
            digest = hashlib.sha256()
            for key in sorted(self._polynomials, key=repr):
                digest.update(repr(key).encode("utf-8"))
                digest.update(b"\x1e")
                for monomial, coefficient in self._polynomials[key].terms():
                    digest.update(monomial.to_text().encode("utf-8"))
                    digest.update(b"\x1f")
                    digest.update(repr(round(coefficient, 9)).encode("utf-8"))
                    digest.update(b"\x1f")
                digest.update(b"\x1d")
            self._fingerprint_cache = digest.hexdigest()
        return self._fingerprint_cache

    # -- transformations --------------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "ProvenanceSet":
        """Rename variables in every polynomial (the abstraction primitive)."""
        return ProvenanceSet(
            {key: polynomial.rename(mapping)
             for key, polynomial in self._polynomials.items()}
        )

    def substitute(self, assignment: Mapping[str, Number]) -> "ProvenanceSet":
        """Partially evaluate every polynomial."""
        return ProvenanceSet(
            {key: polynomial.substitute(assignment)
             for key, polynomial in self._polynomials.items()}
        )

    def evaluate(self, valuation: Mapping[str, Number]) -> Dict[Tuple, float]:
        """Evaluate every polynomial, returning key → numeric result."""
        return {
            key: polynomial.evaluate(valuation)
            for key, polynomial in self._polynomials.items()
        }

    def map(self, func) -> "ProvenanceSet":
        """Apply ``func`` to every polynomial and rebuild the set."""
        return ProvenanceSet(
            {key: func(polynomial)
             for key, polynomial in self._polynomials.items()}
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceSet):
            return NotImplemented
        return self._polynomials == other._polynomials

    def almost_equal(self, other: "ProvenanceSet", tolerance: float = 1e-9) -> bool:
        """Key-wise :meth:`Polynomial.almost_equal` comparison."""
        if set(self._polynomials) != set(other._polynomials):
            return False
        return all(
            self._polynomials[key].almost_equal(other._polynomials[key], tolerance)
            for key in self._polynomials
        )

    def __repr__(self) -> str:
        return (
            f"ProvenanceSet(groups={len(self)}, size={self.size()}, "
            f"variables={self.num_variables()})"
        )


def _normalize_key(key) -> Tuple:
    """Normalise result keys to tuples so scalar and 1-tuple keys coincide."""
    if isinstance(key, tuple):
        return key
    if isinstance(key, list):
        return tuple(key)
    return (key,)
