"""Provenance substrate: symbolic polynomials, semirings and valuations.

This subpackage implements the provenance model COBRA consumes:

* :mod:`repro.provenance.variables` — provenance variables and registries;
* :mod:`repro.provenance.monomial` — products of variables with exponents;
* :mod:`repro.provenance.polynomial` — N[X]-style provenance polynomials and
  multisets of polynomials (one per query-result tuple/group);
* :mod:`repro.provenance.semiring` — the generic commutative-semiring
  framework of Green et al. (PODS 2007) together with standard instances;
* :mod:`repro.provenance.semimodule` — aggregate provenance in the spirit of
  Amsterdamer et al. (PODS 2011), producing symbolic aggregate expressions;
* :mod:`repro.provenance.valuation` — assignments of values to variables and
  fast (vectorised) evaluation of polynomials under them;
* :mod:`repro.provenance.parser` — a text format for polynomials;
* :mod:`repro.provenance.serialization` — JSON round-tripping;
* :mod:`repro.provenance.store` — zero-copy mmap-able compiled stores.
"""

from repro.provenance.variables import Variable, VariableRegistry
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import (
    Valuation,
    CompiledPolynomial,
    CompiledProvenanceSet,
    FingerprintCache,
)
from repro.provenance.parser import parse_polynomial, format_polynomial
from repro.provenance.semiring import (
    Semiring,
    BooleanSemiring,
    CountingSemiring,
    TropicalSemiring,
    WhySemiring,
    LineageSemiring,
    PolynomialSemiring,
    evaluate_in_semiring,
)
from repro.provenance.backends import (
    SEMIRING_BACKEND_NAMES,
    BooleanBackend,
    GenericBackend,
    LineageBackend,
    RealBackend,
    SemiringBackend,
    TropicalBackend,
    WhyBackend,
    resolve_backend,
)
from repro.provenance.semimodule import AggregateTerm, AggregateExpression
from repro.provenance.statistics import (
    ProvenanceStatistics,
    describe_provenance,
    enumerate_monomial_rows,
)
from repro.provenance.incidence import (
    ProvenanceIncidence,
    VariableIncidence,
    provenance_incidence,
)
from repro.provenance.store import (
    clear_store_cache,
    open_store,
    read_store_header,
    write_store,
)

__all__ = [
    "Variable",
    "VariableRegistry",
    "Monomial",
    "Polynomial",
    "ProvenanceSet",
    "Valuation",
    "CompiledPolynomial",
    "CompiledProvenanceSet",
    "FingerprintCache",
    "parse_polynomial",
    "format_polynomial",
    "Semiring",
    "BooleanSemiring",
    "CountingSemiring",
    "TropicalSemiring",
    "WhySemiring",
    "LineageSemiring",
    "PolynomialSemiring",
    "evaluate_in_semiring",
    "SemiringBackend",
    "RealBackend",
    "TropicalBackend",
    "BooleanBackend",
    "GenericBackend",
    "WhyBackend",
    "LineageBackend",
    "resolve_backend",
    "SEMIRING_BACKEND_NAMES",
    "AggregateTerm",
    "AggregateExpression",
    "ProvenanceStatistics",
    "describe_provenance",
    "enumerate_monomial_rows",
    "ProvenanceIncidence",
    "VariableIncidence",
    "provenance_incidence",
    "open_store",
    "read_store_header",
    "write_store",
    "clear_store_cache",
]
