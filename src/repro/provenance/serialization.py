"""JSON (de)serialisation for provenance objects.

These are the persistence formats used by the CLI (``cobra compress --input
provenance.json``) and by downstream analysts who receive compressed
provenance from a stronger machine — the workflow motivating the paper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import InvalidPolynomialError
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Polynomials
# ---------------------------------------------------------------------------


def polynomial_to_dict(polynomial: Polynomial) -> Dict:
    """Convert a polynomial to a JSON-serialisable dictionary."""
    return {
        "terms": [
            {"coefficient": coefficient, "factors": list(monomial.factors)}
            for monomial, coefficient in polynomial.terms()
        ]
    }


def polynomial_from_dict(data: Dict) -> Polynomial:
    """Inverse of :func:`polynomial_to_dict`."""
    if "terms" not in data:
        raise InvalidPolynomialError("polynomial JSON must contain a 'terms' list")
    terms = {}
    for term in data["terms"]:
        monomial = Monomial.from_factors(
            [(name, int(exp)) for name, exp in term["factors"]]
        )
        terms[monomial] = terms.get(monomial, 0.0) + float(term["coefficient"])
    return Polynomial(terms)


# ---------------------------------------------------------------------------
# Provenance sets
# ---------------------------------------------------------------------------


def provenance_set_to_dict(provenance: ProvenanceSet) -> Dict:
    """Convert a provenance set to a JSON-serialisable dictionary."""
    return {
        "groups": [
            {"key": list(key), "polynomial": polynomial_to_dict(polynomial)}
            for key, polynomial in provenance.items()
        ]
    }


def provenance_set_from_dict(data: Dict) -> ProvenanceSet:
    """Inverse of :func:`provenance_set_to_dict`."""
    result = ProvenanceSet()
    for group in data.get("groups", []):
        key = tuple(group["key"])
        result[key] = polynomial_from_dict(group["polynomial"])
    return result


# ---------------------------------------------------------------------------
# Valuations
# ---------------------------------------------------------------------------


def valuation_to_dict(valuation: Valuation) -> Dict[str, float]:
    """Convert a valuation to a plain name → value dictionary."""
    return valuation.as_dict()


def valuation_from_dict(data: Dict[str, float]) -> Valuation:
    """Inverse of :func:`valuation_to_dict`."""
    return Valuation(data)


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------


def save_provenance_set(provenance: ProvenanceSet, path: PathLike) -> None:
    """Write a provenance set as JSON to ``path``."""
    Path(path).write_text(json.dumps(provenance_set_to_dict(provenance)))


def load_provenance_set(path: PathLike) -> ProvenanceSet:
    """Read a provenance set from the JSON file at ``path``."""
    return provenance_set_from_dict(json.loads(Path(path).read_text()))


def save_valuation(valuation: Valuation, path: PathLike) -> None:
    """Write a valuation as JSON to ``path``."""
    Path(path).write_text(json.dumps(valuation_to_dict(valuation)))


def load_valuation(path: PathLike) -> Valuation:
    """Read a valuation from the JSON file at ``path``."""
    return valuation_from_dict(json.loads(Path(path).read_text()))


def save_polynomials(polynomials: List[Polynomial], path: PathLike) -> None:
    """Write a bare list of polynomials as JSON to ``path``."""
    Path(path).write_text(
        json.dumps([polynomial_to_dict(p) for p in polynomials])
    )


def load_polynomials(path: PathLike) -> List[Polynomial]:
    """Read a bare list of polynomials from the JSON file at ``path``."""
    return [polynomial_from_dict(d) for d in json.loads(Path(path).read_text())]
