"""JSON (de)serialisation for provenance objects.

These are the persistence formats used by the CLI (``cobra compress --input
provenance.json``) and by downstream analysts who receive compressed
provenance from a stronger machine — the workflow motivating the paper.

Files are written atomically (to a temporary file in the same directory,
then ``os.replace``-d into place), so a crash mid-write never corrupts an
existing file, and are stamped with a ``version`` field; the loaders accept
the current version plus legacy unversioned payloads and raise
:class:`~repro.exceptions.SerializationError` on anything else.

Atomic writes preserve the target's permissions: overwriting an existing
file keeps its mode, and a fresh file gets the ordinary ``0o666 & ~umask``
creation mode — ``tempfile.mkstemp``'s private ``0600`` temp-file mode is
never leaked onto the destination (it used to be, silently tightening
permissions on every save).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import InvalidPolynomialError, SerializationError
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation

PathLike = Union[str, Path]

#: The on-disk format version stamped into every file written by ``save_*``.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Polynomials
# ---------------------------------------------------------------------------


def polynomial_to_dict(polynomial: Polynomial) -> Dict:
    """Convert a polynomial to a JSON-serialisable dictionary."""
    return {
        "terms": [
            {"coefficient": coefficient, "factors": list(monomial.factors)}
            for monomial, coefficient in polynomial.terms()
        ]
    }


def polynomial_from_dict(data: Dict) -> Polynomial:
    """Inverse of :func:`polynomial_to_dict`."""
    if not isinstance(data, dict) or "terms" not in data:
        raise InvalidPolynomialError("polynomial JSON must contain a 'terms' list")
    if not isinstance(data["terms"], list):
        raise InvalidPolynomialError("polynomial 'terms' must be a list")
    terms = {}
    for term in data["terms"]:
        try:
            monomial = Monomial.from_factors(
                [(name, int(exp)) for name, exp in term["factors"]]
            )
            coefficient = float(term["coefficient"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidPolynomialError(f"malformed polynomial term: {term!r}") from exc
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


# ---------------------------------------------------------------------------
# Provenance sets
# ---------------------------------------------------------------------------


def provenance_set_to_dict(provenance: ProvenanceSet) -> Dict:
    """Convert a provenance set to a JSON-serialisable dictionary."""
    return {
        "groups": [
            {"key": list(key), "polynomial": polynomial_to_dict(polynomial)}
            for key, polynomial in provenance.items()
        ]
    }


def provenance_set_from_dict(data: Dict) -> ProvenanceSet:
    """Inverse of :func:`provenance_set_to_dict`."""
    if not isinstance(data, dict):
        raise InvalidPolynomialError(
            f"provenance-set JSON must be an object, got {type(data).__name__}"
        )
    result = ProvenanceSet()
    for group in data.get("groups", []):
        if not isinstance(group, dict) or "key" not in group or "polynomial" not in group:
            raise InvalidPolynomialError(f"malformed provenance group: {group!r}")
        key = tuple(group["key"])
        polynomial = polynomial_from_dict(group["polynomial"])
        if key in result:
            # A payload may legitimately repeat a group key (e.g. two
            # producers appending to one file); merge by polynomial addition,
            # mirroring how duplicate monomials accumulate coefficients in
            # :func:`polynomial_from_dict` — never silently drop data.
            polynomial = result[key] + polynomial
        result[key] = polynomial
    return result


# ---------------------------------------------------------------------------
# Valuations
# ---------------------------------------------------------------------------


def valuation_to_dict(valuation: Valuation) -> Dict[str, float]:
    """Convert a valuation to a plain name → value dictionary."""
    return valuation.as_dict()


def valuation_from_dict(data: Dict[str, float]) -> Valuation:
    """Inverse of :func:`valuation_to_dict`."""
    return Valuation(data)


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------


def _replacement_mode(path: Path) -> int:
    """The permission bits the file at ``path`` should carry after a rewrite.

    Overwriting preserves the existing target's mode; a brand-new file gets
    the conventional ``0o666 & ~umask`` creation mode.  Either way the
    private ``0600`` mode ``tempfile.mkstemp`` forces on its temp file (it
    ignores the umask by design) never ends up on the destination.
    """
    try:
        return os.stat(path).st_mode & 0o7777
    except OSError:
        umask = os.umask(0)
        os.umask(umask)
        return 0o666 & ~umask


def _atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write leaves at most a stray ``*.tmp`` file behind; the
    target file is either the previous version or the complete new one, and
    its permissions honor the umask / the pre-existing target's mode (see
    :func:`_replacement_mode`).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.chmod(tmp_name, _replacement_mode(path))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (see :func:`_atomic_write_bytes`)."""
    _atomic_write_bytes(path, text.encode("utf-8"))


def _wrap(kind: str, payload_key: str, payload) -> Dict:
    return {"version": FORMAT_VERSION, "kind": kind, payload_key: payload}


def _unwrap(data, kind: str, payload_key: str, path: PathLike):
    """Peel the version envelope off a loaded JSON document.

    Versioned documents must carry the current :data:`FORMAT_VERSION` and the
    expected ``kind``; unversioned documents are accepted as the legacy
    (pre-versioning) payload so old files keep loading.  A document is only
    treated as an envelope when it carries both a ``version`` and a string
    ``kind`` — a legacy valuation whose *variables* happen to include one
    named ``"version"`` is still a legacy payload.
    """
    if (
        isinstance(data, dict)
        and "version" in data
        and isinstance(data.get("kind"), str)
    ):
        version = data["version"]
        if version != FORMAT_VERSION:
            raise SerializationError(
                f"{path}: unsupported format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        if data.get("kind") != kind:
            raise SerializationError(
                f"{path}: expected a {kind!r} file, found kind={data.get('kind')!r}"
            )
        if payload_key not in data:
            raise SerializationError(
                f"{path}: versioned {kind!r} file is missing its "
                f"{payload_key!r} payload"
            )
        return data[payload_key]
    return data


def _read_json(path: PathLike):
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: not valid JSON ({exc})") from exc


def save_provenance_set(provenance: ProvenanceSet, path: PathLike) -> None:
    """Atomically write a provenance set as versioned JSON to ``path``."""
    payload = _wrap("provenance_set", "groups", provenance_set_to_dict(provenance)["groups"])
    _atomic_write_text(path, json.dumps(payload))


def load_provenance_set(path: PathLike) -> ProvenanceSet:
    """Read a provenance set from the JSON file at ``path``.

    Raises
    ------
    SerializationError
        On malformed JSON, a version mismatch, or the wrong file kind.
    InvalidPolynomialError
        On structurally invalid polynomial payloads.
    """
    groups = _unwrap(_read_json(path), "provenance_set", "groups", path)
    if isinstance(groups, dict):  # legacy unversioned {"groups": [...]}
        return provenance_set_from_dict(groups)
    if not isinstance(groups, list):
        raise SerializationError(f"{path}: provenance payload must be a list of groups")
    return provenance_set_from_dict({"groups": groups})


def save_valuation(valuation: Valuation, path: PathLike) -> None:
    """Atomically write a valuation as versioned JSON to ``path``."""
    payload = _wrap("valuation", "values", valuation_to_dict(valuation))
    _atomic_write_text(path, json.dumps(payload))


def load_valuation(path: PathLike) -> Valuation:
    """Read a valuation from the JSON file at ``path``."""
    values = _unwrap(_read_json(path), "valuation", "values", path)
    if not isinstance(values, dict):
        raise SerializationError(f"{path}: valuation payload must be an object")
    return valuation_from_dict(values)


def save_polynomials(polynomials: List[Polynomial], path: PathLike) -> None:
    """Atomically write a bare list of polynomials as versioned JSON to ``path``."""
    payload = _wrap(
        "polynomials", "polynomials", [polynomial_to_dict(p) for p in polynomials]
    )
    _atomic_write_text(path, json.dumps(payload))


def load_polynomials(path: PathLike) -> List[Polynomial]:
    """Read a bare list of polynomials from the JSON file at ``path``."""
    items = _unwrap(_read_json(path), "polynomials", "polynomials", path)
    if not isinstance(items, list):
        raise SerializationError(f"{path}: polynomials payload must be a list")
    return [polynomial_from_dict(d) for d in items]
