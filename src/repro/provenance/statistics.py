"""Descriptive statistics of a provenance set.

Before choosing a bound or building an abstraction tree, a meta-analyst
wants to know what the provenance looks like: how many polynomials there
are, how the monomials are distributed over them, which variables occur
most often and which carry the most coefficient mass.  The demo's "under the
hood" phase shows parts of this; :func:`describe_provenance` computes it for
any :class:`~repro.provenance.polynomial.ProvenanceSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.provenance.polynomial import Polynomial, ProvenanceSet

#: One flattened monomial: (group index, canonical (variable, exponent)
#: factors, coefficient).  The row-level view of a provenance set shared by
#: :func:`enumerate_monomial_rows` consumers.
MonomialRow = Tuple[int, Tuple[Tuple[str, int], ...], float]


@dataclass(frozen=True)
class ProvenanceStatistics:
    """A summary of the shape of a provenance set.

    Attributes
    ----------
    num_groups:
        Number of result groups (polynomials).
    size:
        Total number of monomials (the paper's size measure).
    num_variables:
        Number of distinct variables (the paper's expressiveness measure).
    min/max/mean_monomials_per_group:
        Distribution of monomials over the result groups.
    degree_histogram:
        monomial total degree → number of monomials of that degree.
    variable_occurrences:
        variable → number of monomials it appears in.
    variable_mass:
        variable → total absolute coefficient mass of the monomials it
        appears in (a proxy for how much the result depends on it).
    """

    num_groups: int
    size: int
    num_variables: int
    min_monomials_per_group: int
    max_monomials_per_group: int
    mean_monomials_per_group: float
    degree_histogram: Dict[int, int]
    variable_occurrences: Dict[str, int]
    variable_mass: Dict[str, float]

    def top_variables_by_occurrence(self, count: int = 10) -> List[Tuple[str, int]]:
        """The ``count`` variables appearing in the most monomials."""
        ranked = sorted(
            self.variable_occurrences.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def top_variables_by_mass(self, count: int = 10) -> List[Tuple[str, float]]:
        """The ``count`` variables carrying the most absolute coefficient mass."""
        ranked = sorted(
            self.variable_mass.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly rendering of the scalar fields."""
        return {
            "num_groups": self.num_groups,
            "size": self.size,
            "num_variables": self.num_variables,
            "min_monomials_per_group": self.min_monomials_per_group,
            "max_monomials_per_group": self.max_monomials_per_group,
            "mean_monomials_per_group": self.mean_monomials_per_group,
            "degree_histogram": dict(self.degree_histogram),
        }

    def render_text(self, top: int = 5) -> str:
        """A short human-readable summary (used by the CLI)."""
        lines = [
            f"groups: {self.num_groups}   monomials: {self.size}   "
            f"variables: {self.num_variables}",
            f"monomials per group: min {self.min_monomials_per_group}, "
            f"mean {self.mean_monomials_per_group:.1f}, "
            f"max {self.max_monomials_per_group}",
            "degree histogram: "
            + ", ".join(
                f"{degree}: {count}"
                for degree, count in sorted(self.degree_histogram.items())
            ),
            "most frequent variables: "
            + ", ".join(
                f"{name} ({count})"
                for name, count in self.top_variables_by_occurrence(top)
            ),
        ]
        return "\n".join(lines)


def enumerate_monomial_rows(
    provenance: ProvenanceSet,
) -> Tuple[List[MonomialRow], Dict[str, List[int]]]:
    """Flatten a provenance set into indexed monomial rows plus an incidence map.

    Returns ``(rows, variable_rows)``: ``rows`` lists every monomial of the
    set as ``(group_index, factors, coefficient)`` in deterministic order
    (groups in key-insertion order, terms in canonical monomial order);
    ``variable_rows`` maps each variable to the ascending row indices whose
    monomial contains it.  This row-level view is the foundation of the
    shared variable→monomial inverted index
    (:mod:`repro.provenance.incidence`, fingerprint-cached) that both the
    incremental compression kernel (:mod:`repro.core.kernel.index`) and the
    sparse delta evaluators build on, and is useful on its own whenever an
    algorithm needs "which monomials does this variable touch?" answered in
    O(1) after one linear pass.
    """
    rows: List[MonomialRow] = []
    variable_rows: Dict[str, List[int]] = {}
    for group_index, (_key, polynomial) in enumerate(provenance.items()):
        for monomial, coefficient in polynomial.terms():
            row_id = len(rows)
            rows.append((group_index, monomial.factors, coefficient))
            for name, _exponent in monomial.factors:
                variable_rows.setdefault(name, []).append(row_id)
    return rows, variable_rows


def describe_provenance(provenance: ProvenanceSet) -> ProvenanceStatistics:
    """Compute :class:`ProvenanceStatistics` for ``provenance``.

    Built on the same flattened row view (:func:`enumerate_monomial_rows`)
    the incidence indexes consume, so the statistics and the sparse kernels
    agree on what counts as a monomial row.
    """
    rows, variable_rows = enumerate_monomial_rows(provenance)
    group_sizes: List[int] = [0] * len(provenance)
    degree_histogram: Dict[int, int] = {}
    mass: Dict[str, float] = {}

    for group_index, factors, coefficient in rows:
        group_sizes[group_index] += 1
        degree = sum(exponent for _name, exponent in factors)
        degree_histogram[degree] = degree_histogram.get(degree, 0) + 1
        for name, _exponent in factors:
            mass[name] = mass.get(name, 0.0) + abs(coefficient)

    occurrences = {name: len(ids) for name, ids in variable_rows.items()}
    size = len(rows)
    return ProvenanceStatistics(
        num_groups=len(provenance),
        size=size,
        num_variables=provenance.num_variables(),
        min_monomials_per_group=min(group_sizes) if group_sizes else 0,
        max_monomials_per_group=max(group_sizes) if group_sizes else 0,
        mean_monomials_per_group=(size / len(group_sizes)) if group_sizes else 0.0,
        degree_histogram=degree_histogram,
        variable_occurrences=occurrences,
        variable_mass=mass,
    )
