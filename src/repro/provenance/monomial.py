"""Monomials: products of provenance variables with positive integer exponents.

A monomial is the multiplicative part of one term of a provenance polynomial,
e.g. ``p1 * m1`` or ``x^2 * y``.  Monomials are immutable, hashable and
totally ordered (lexicographically on their canonical factor sequence), which
lets polynomials use them as dictionary keys and print in a stable order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from repro.exceptions import InvalidMonomialError
from repro.provenance.variables import Variable, variable_name

VariableLike = Union[str, Variable]


class Monomial:
    """An immutable product of variables raised to positive integer powers.

    Parameters
    ----------
    exponents:
        A mapping from variable (name or :class:`Variable`) to a positive
        integer exponent, or an iterable of variables (each occurrence
        contributing exponent 1).  The empty monomial represents the
        multiplicative unit ``1``.
    """

    __slots__ = ("_factors", "_hash")

    def __init__(
        self,
        exponents: Union[
            Mapping[VariableLike, int], Iterable[VariableLike], None
        ] = None,
    ) -> None:
        factors: Dict[str, int] = {}
        if exponents is None:
            pass
        elif isinstance(exponents, Mapping):
            for var, exp in exponents.items():
                name = variable_name(var)
                if not isinstance(exp, int) or isinstance(exp, bool):
                    raise InvalidMonomialError(
                        f"exponent of {name!r} must be an int, got {exp!r}"
                    )
                if exp < 0:
                    raise InvalidMonomialError(
                        f"exponent of {name!r} must be non-negative, got {exp}"
                    )
                if exp > 0:
                    factors[name] = factors.get(name, 0) + exp
        else:
            for var in exponents:
                name = variable_name(var)
                factors[name] = factors.get(name, 0) + 1
        self._factors: Tuple[Tuple[str, int], ...] = tuple(
            sorted(factors.items())
        )
        self._hash = hash(self._factors)

    # -- constructors -----------------------------------------------------

    @classmethod
    def unit(cls) -> "Monomial":
        """The empty monomial, i.e. the constant factor ``1``."""
        return cls()

    @classmethod
    def of(cls, *variables: VariableLike) -> "Monomial":
        """Build a monomial from variable occurrences: ``Monomial.of("x", "x", "y")`` is ``x^2*y``."""
        return cls(variables)

    @classmethod
    def from_factors(cls, factors: Iterable[Tuple[VariableLike, int]]) -> "Monomial":
        """Build a monomial from ``(variable, exponent)`` pairs."""
        merged: Dict[str, int] = {}
        for var, exp in factors:
            name = variable_name(var)
            merged[name] = merged.get(name, 0) + int(exp)
        return cls(merged)

    # -- inspection --------------------------------------------------------

    @property
    def factors(self) -> Tuple[Tuple[str, int], ...]:
        """The canonical ``(variable, exponent)`` factor sequence, sorted by name."""
        return self._factors

    def exponent(self, var: VariableLike) -> int:
        """Exponent of ``var`` in this monomial (0 if absent)."""
        name = variable_name(var)
        for candidate, exp in self._factors:
            if candidate == name:
                return exp
        return 0

    def variables(self) -> Tuple[str, ...]:
        """Names of the variables occurring (with positive exponent)."""
        return tuple(name for name, _ in self._factors)

    def degree(self) -> int:
        """Total degree: the sum of all exponents."""
        return sum(exp for _, exp in self._factors)

    def is_unit(self) -> bool:
        """Whether this is the empty (constant ``1``) monomial."""
        return not self._factors

    def __len__(self) -> int:
        return len(self._factors)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self._factors)

    def __contains__(self, var: object) -> bool:
        if isinstance(var, Variable):
            var = var.name
        return any(name == var for name, _ in self._factors)

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        merged: Dict[str, int] = dict(self._factors)
        for name, exp in other._factors:
            merged[name] = merged.get(name, 0) + exp
        return Monomial(merged)

    def rename(self, mapping: Mapping[str, str]) -> "Monomial":
        """Return the monomial with variables renamed through ``mapping``.

        Variables not present in ``mapping`` are kept as-is.  If two distinct
        variables map to the same target their exponents are added — this is
        exactly what happens when an abstraction groups variables together.
        """
        merged: Dict[str, int] = {}
        for name, exp in self._factors:
            target = mapping.get(name, name)
            merged[target] = merged.get(target, 0) + exp
        return Monomial(merged)

    def without(self, variables: Iterable[VariableLike]) -> "Monomial":
        """Return the monomial with the given variables removed entirely."""
        drop = {variable_name(v) for v in variables}
        return Monomial(
            {name: exp for name, exp in self._factors if name not in drop}
        )

    def restrict(self, variables: Iterable[VariableLike]) -> "Monomial":
        """Return the monomial keeping only the given variables."""
        keep = {variable_name(v) for v in variables}
        return Monomial(
            {name: exp for name, exp in self._factors if name in keep}
        )

    def evaluate(self, valuation: Mapping[str, float]) -> float:
        """Evaluate the monomial under a variable → value mapping."""
        result = 1.0
        for name, exp in self._factors:
            result *= float(valuation[name]) ** exp
        return result

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._factors == other._factors

    def __lt__(self, other: "Monomial") -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._factors < other._factors

    def __le__(self, other: "Monomial") -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._factors <= other._factors

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Monomial({self.to_text()!r})"

    def to_text(self) -> str:
        """Render as text, e.g. ``"p1*m1"`` or ``"x^2*y"`` (``"1"`` for the unit)."""
        if not self._factors:
            return "1"
        parts = []
        for name, exp in self._factors:
            parts.append(name if exp == 1 else f"{name}^{exp}")
        return "*".join(parts)
