"""The commutative-semiring framework of provenance semirings (PODS 2007).

Provenance polynomials in N[X] are the most general (universal) commutative
semiring over a variable set X: any valuation of the variables into another
commutative semiring extends uniquely to a semiring homomorphism from N[X].
This module provides:

* an abstract :class:`Semiring` interface;
* the standard instances used in the provenance literature — Boolean
  (set/bag distinction collapse), counting (bag semantics), tropical
  (min-cost), Why-provenance (witness sets) and Lineage (variable sets) —
  plus :class:`PolynomialSemiring`, i.e. N[X] itself;
* :func:`evaluate_in_semiring`, the homomorphic evaluation of an N[X]
  polynomial into any target semiring, which is the formal statement of the
  commutation-with-valuation property the paper relies on for correctness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, FrozenSet, Generic, Mapping, Optional, TypeVar

from repro.exceptions import MissingValuationError, SemiringError
from repro.provenance.polynomial import Polynomial

T = TypeVar("T")


class Semiring(ABC, Generic[T]):
    """A commutative semiring ``(K, +, *, 0, 1)``.

    Subclasses provide the two operations and the two constants; the generic
    helpers implement n-ary sums/products and integer scaling/powering on top.
    """

    @property
    @abstractmethod
    def zero(self) -> T:
        """The additive identity."""

    @property
    @abstractmethod
    def one(self) -> T:
        """The multiplicative identity."""

    @abstractmethod
    def add(self, a: T, b: T) -> T:
        """The commutative, associative addition with identity :attr:`zero`."""

    @abstractmethod
    def multiply(self, a: T, b: T) -> T:
        """The commutative, associative multiplication with identity :attr:`one`."""

    # -- derived helpers ----------------------------------------------------

    def sum(self, values) -> T:
        """Fold :meth:`add` over an iterable (``zero`` for an empty one)."""
        result = self.zero
        for value in values:
            result = self.add(result, value)
        return result

    def product(self, values) -> T:
        """Fold :meth:`multiply` over an iterable (``one`` for an empty one)."""
        result = self.one
        for value in values:
            result = self.multiply(result, value)
        return result

    def scale(self, value: T, times: int) -> T:
        """Add ``value`` to itself ``times`` times (``times`` must be >= 0)."""
        if times < 0:
            raise SemiringError("cannot scale by a negative integer in a semiring")
        result = self.zero
        for _ in range(times):
            result = self.add(result, value)
        return result

    def power(self, value: T, exponent: int) -> T:
        """Multiply ``value`` by itself ``exponent`` times (``exponent`` >= 0)."""
        if exponent < 0:
            raise SemiringError("cannot raise to a negative power in a semiring")
        result = self.one
        for _ in range(exponent):
            result = self.multiply(result, value)
        return result

    def name(self) -> str:
        """Human-readable name of the semiring."""
        return type(self).__name__


class BooleanSemiring(Semiring[bool]):
    """The Boolean semiring ``({False, True}, or, and)`` — "does the tuple exist"."""

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return bool(a) or bool(b)

    def multiply(self, a: bool, b: bool) -> bool:
        return bool(a) and bool(b)


class CountingSemiring(Semiring[float]):
    """The numeric semiring ``(R, +, *)`` used for bag semantics and valuations."""

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return float(a) + float(b)

    def multiply(self, a: float, b: float) -> float:
        return float(a) * float(b)


class TropicalSemiring(Semiring[float]):
    """The tropical (min, +) semiring — minimum-cost provenance."""

    @property
    def zero(self) -> float:
        return float("inf")

    @property
    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return min(float(a), float(b))

    def multiply(self, a: float, b: float) -> float:
        return float(a) + float(b)


class WhySemiring(Semiring[FrozenSet[FrozenSet[str]]]):
    """Why-provenance: sets of witness sets of variable names."""

    @property
    def zero(self) -> FrozenSet[FrozenSet[str]]:
        return frozenset()

    @property
    def one(self) -> FrozenSet[FrozenSet[str]]:
        return frozenset({frozenset()})

    def add(
        self, a: FrozenSet[FrozenSet[str]], b: FrozenSet[FrozenSet[str]]
    ) -> FrozenSet[FrozenSet[str]]:
        return frozenset(a) | frozenset(b)

    def multiply(
        self, a: FrozenSet[FrozenSet[str]], b: FrozenSet[FrozenSet[str]]
    ) -> FrozenSet[FrozenSet[str]]:
        return frozenset(
            witness_a | witness_b for witness_a in a for witness_b in b
        )

    @staticmethod
    def of(*names: str) -> FrozenSet[FrozenSet[str]]:
        """The singleton witness set ``{{names...}}`` (convenience for tests)."""
        return frozenset({frozenset(names)})


class LineageSemiring(Semiring[Optional[FrozenSet[str]]]):
    """Lineage: the flat set of variables contributing to a result.

    Following the standard construction, the carrier is ``P(X) ∪ {⊥}`` where
    ``⊥`` (represented as ``None``) is the annihilating zero; both addition
    and multiplication are set union on non-⊥ elements.
    """

    @property
    def zero(self) -> Optional[FrozenSet[str]]:
        return None

    @property
    def one(self) -> Optional[FrozenSet[str]]:
        return frozenset()

    def add(
        self, a: Optional[FrozenSet[str]], b: Optional[FrozenSet[str]]
    ) -> Optional[FrozenSet[str]]:
        if a is None:
            return b
        if b is None:
            return a
        return frozenset(a) | frozenset(b)

    def multiply(
        self, a: Optional[FrozenSet[str]], b: Optional[FrozenSet[str]]
    ) -> Optional[FrozenSet[str]]:
        if a is None or b is None:
            return None
        return frozenset(a) | frozenset(b)


class PolynomialSemiring(Semiring[Polynomial]):
    """N[X] itself: provenance polynomials form a commutative semiring."""

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a + b

    def multiply(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a * b


def evaluate_in_semiring(
    polynomial: Polynomial,
    semiring: Semiring[T],
    valuation: Mapping[str, T],
    coefficient_embedding: Callable[[float], T] | None = None,
) -> T:
    """Homomorphically evaluate an N[X] polynomial in a target semiring.

    Every variable is replaced by its image under ``valuation`` and the
    polynomial structure is re-interpreted with the target semiring's
    operations.  Integer coefficients are mapped via repeated addition of
    ``one`` unless a ``coefficient_embedding`` is supplied (needed for
    non-integer coefficients, e.g. in the counting semiring, where the
    identity embedding should be used).

    Raises
    ------
    MissingValuationError
        If the valuation does not cover all variables of the polynomial.
    SemiringError
        If a non-integer coefficient is found and no embedding is given.
    """
    missing = [name for name in polynomial.variables() if name not in valuation]
    if missing:
        raise MissingValuationError(missing)

    total = semiring.zero
    for monomial, coefficient in polynomial.terms():
        term = semiring.one
        for name, exponent in monomial:
            term = semiring.multiply(term, semiring.power(valuation[name], exponent))
        if coefficient_embedding is not None:
            term = semiring.multiply(coefficient_embedding(coefficient), term)
        else:
            if not float(coefficient).is_integer() or coefficient < 0:
                raise SemiringError(
                    "polynomial has non-natural coefficients; provide a "
                    "coefficient_embedding for this semiring"
                )
            term = semiring.scale(term, int(coefficient))
        total = semiring.add(total, term)
    return total
