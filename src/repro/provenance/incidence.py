"""Inverted variable → monomial incidence indexes (CSR layout).

Sparse what-if evaluation and incremental compression both hinge on the same
question: *which monomials does this variable touch?*  This module is the one
place that question is answered:

* :class:`VariableIncidence` — a column-indexed CSR inverted index over the
  flat ``(monomial, variable, exponent)`` factor arrays a compiled provenance
  set stores per width-group.  The sparse delta kernels
  (:meth:`~repro.provenance.valuation.CompiledProvenanceSet.evaluate_deltas`
  and the numeric backends') use it to find the monomial rows a scenario's
  changed variables affect in O(occurrences), not O(monomials);
* :class:`ProvenanceIncidence` / :func:`provenance_incidence` — the
  name-keyed incidence over the canonical enumeration order of a provenance
  set (:func:`~repro.provenance.statistics.enumerate_monomial_rows`), cached
  by provenance fingerprint.  The compression kernel's
  :class:`~repro.core.kernel.index.MonomialIncidenceIndex` builds its
  per-tree-node CSR on top of this, so there is exactly one incidence
  builder in the codebase;
* small ragged-array helpers (:func:`ragged_ranges`,
  :func:`expand_segment_rows`) shared by the delta kernels.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.provenance.polynomial import ProvenanceSet
from repro.provenance.statistics import MonomialRow, enumerate_monomial_rows

_EMPTY_INTP = np.zeros(0, dtype=np.intp)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


def ragged_ranges(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate ``arange(starts[i], ends[i])`` for every i, vectorised.

    Returns ``(positions, local_starts)``: ``positions`` is the concatenation
    of all the ranges and ``local_starts[i]`` is the offset of range ``i``
    inside it (the ``reduceat`` boundaries for per-range reductions).
    """
    starts = np.asarray(starts, dtype=np.intp)
    ends = np.asarray(ends, dtype=np.intp)
    if starts.size == 0:
        return _EMPTY_INTP, _EMPTY_INTP
    lengths = ends - starts
    total = int(lengths.sum())
    local_starts = np.concatenate(
        ([0], np.cumsum(lengths)[:-1])
    ).astype(np.intp, copy=False)
    if total == 0:
        return _EMPTY_INTP, local_starts
    positions = np.arange(total, dtype=np.intp) + np.repeat(
        starts - local_starts, lengths
    )
    return positions, local_starts


def expand_segment_rows(
    segment_starts: np.ndarray, segment_rows: np.ndarray, total: int
) -> np.ndarray:
    """Per-monomial output-row array from a group's segment boundaries."""
    lengths = np.diff(np.append(segment_starts, total))
    return np.repeat(segment_rows, lengths)


class VariableIncidence:
    """CSR inverted index: variable column → monomial positions (+ exponents).

    Built from the ``(monomials × width)`` variable-index and exponent arrays
    of one compiled width-group; positions are ascending within each column.
    """

    __slots__ = ("ptr", "positions", "exponents")

    def __init__(
        self, ptr: np.ndarray, positions: np.ndarray, exponents: np.ndarray
    ) -> None:
        self.ptr = ptr
        self.positions = positions
        self.exponents = exponents

    @classmethod
    def from_factor_arrays(
        cls, num_variables: int, indices: np.ndarray, exponents: np.ndarray
    ) -> "VariableIncidence":
        """Invert a group's ``(monomials × width)`` factor arrays.

        Each row of ``indices`` must list *distinct* variable columns — the
        canonical-factor invariant of compiled monomials (a repeated
        variable is one factor with a higher exponent).  The delta kernels
        rely on it: one column's occurrence list is then a list of distinct
        monomials.
        """
        num_monomials, width = indices.shape
        columns = indices.ravel()
        rows = np.repeat(
            np.arange(num_monomials, dtype=np.intp), width
        )
        flat_exponents = np.asarray(exponents, dtype=np.float64).ravel()
        # A stable sort by column keeps positions ascending per column.
        order = np.argsort(columns, kind="stable")
        counts = np.bincount(columns, minlength=num_variables)
        ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
        return cls(ptr, rows[order], flat_exponents[order])

    def rows_for(self, column: int) -> np.ndarray:
        """Ascending monomial positions whose monomial contains ``column``."""
        return self.positions[self.ptr[column] : self.ptr[column + 1]]

    def occurrences(
        self, columns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All occurrences of ``columns``: positions, exponents, per-column counts.

        One vectorised gather for a whole changed-variable set — the shape the
        sparse kernels consume (``positions`` may repeat across columns).
        """
        columns = np.asarray(columns, dtype=np.intp)
        starts = self.ptr[columns]
        ends = self.ptr[columns + 1]
        flat, _ = ragged_ranges(starts, ends)
        return self.positions[flat], self.exponents[flat], ends - starts

    def rows_for_any(self, columns: np.ndarray) -> np.ndarray:
        """Sorted unique monomial positions touched by any of ``columns``."""
        columns = np.asarray(columns, dtype=np.intp)
        if columns.size == 1:
            # A variable occurs at most once per monomial, so one column's
            # positions are already distinct and ascending.
            return self.rows_for(int(columns[0]))
        positions, _exponents, _counts = self.occurrences(columns)
        if positions.size == 0:
            return _EMPTY_INTP
        positions = np.sort(positions)
        keep = np.empty(positions.size, dtype=np.bool_)
        keep[0] = True
        np.not_equal(positions[1:], positions[:-1], out=keep[1:])
        return positions[keep]


class ProvenanceIncidence:
    """Name-keyed incidence over a provenance set's canonical row order.

    Attributes
    ----------
    rows:
        The flattened monomials, ``(group_index, factors, coefficient)`` per
        row, in the deterministic order of
        :func:`~repro.provenance.statistics.enumerate_monomial_rows`.
    variable_rows:
        variable name → ascending ``int64`` row ids whose monomial contains
        the variable.
    """

    __slots__ = ("rows", "variable_rows")

    def __init__(self, provenance: ProvenanceSet) -> None:
        rows, variable_lists = enumerate_monomial_rows(provenance)
        self.rows: Sequence[MonomialRow] = rows
        self.variable_rows: Dict[str, np.ndarray] = {
            name: np.asarray(ids, dtype=np.int64)
            for name, ids in variable_lists.items()
        }

    def rows_for(self, name: str) -> np.ndarray:
        """Ascending row ids touching ``name`` (empty for unknown names)."""
        return self.variable_rows.get(name, np.zeros(0, dtype=np.int64))

    def num_rows(self) -> int:
        """Total number of monomial rows (the provenance size)."""
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ProvenanceIncidence(rows={len(self.rows)}, "
            f"variables={len(self.variable_rows)})"
        )


def _incidence_cache():
    # Imported lazily: valuation imports this module for the CSR helpers.
    from repro.provenance.valuation import FingerprintCache

    global _INCIDENCE_CACHE
    if _INCIDENCE_CACHE is None:
        _INCIDENCE_CACHE = FingerprintCache(
            capacity=8, metrics="incidence_cache"
        )
    return _INCIDENCE_CACHE


_INCIDENCE_CACHE = None


def provenance_incidence(provenance: ProvenanceSet) -> ProvenanceIncidence:
    """The (fingerprint-cached) name-keyed incidence of ``provenance``."""
    from repro.obs.tracer import trace

    def build() -> ProvenanceIncidence:
        with trace("incidence.build", monomials=provenance.size()):
            return ProvenanceIncidence(provenance)

    return _incidence_cache().get_or_build(provenance.fingerprint(), build)


def clear_provenance_incidence_cache() -> None:
    """Drop every cached incidence (they can hold large row arrays)."""
    if _INCIDENCE_CACHE is not None:
        _INCIDENCE_CACHE.clear()
