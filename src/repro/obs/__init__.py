"""Runtime observability: span tracing, metrics registry, trace rendering.

``repro.obs`` is the zero-dependency instrumentation layer threaded through
the evaluation pipeline.  The three pieces:

* :mod:`repro.obs.tracer` — ``with trace("batch.evaluate", scenarios=N):``
  span trees with wall/CPU time and attributes, free when disabled;
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry` of
  counters/gauges/histograms that unifies the engine's cache statistics;
* :mod:`repro.obs.render` — span-tree rendering, per-stage aggregation,
  and the ``--trace-json`` file format.

Enable tracing with ``COBRA_TRACE=1`` in the environment, the ``--trace``
/ ``--trace-json`` CLI flags, or :func:`enable_tracing` from code.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.render import (
    TRACE_FORMAT_VERSION,
    aggregate_stages,
    load_trace,
    render_span_tree,
    render_stage_table,
    trace_to_dict,
    write_trace,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace,
    tracing_enabled,
)

__all__ = [
    "trace",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "current_span",
    "get_tracer",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "render_span_tree",
    "render_stage_table",
    "aggregate_stages",
    "trace_to_dict",
    "write_trace",
    "load_trace",
    "TRACE_FORMAT_VERSION",
]
