"""Rendering and aggregating trace trees: the human side of the tracer.

Three consumers share this module:

* the CLI's ``--trace`` flag prints :func:`render_span_tree` — the nested
  span tree with durations, CPU time and attributes;
* ``--trace-json`` dumps :func:`trace_to_dict` (spans + a metrics snapshot)
  and ``cobra stats --runtime`` reads it back (:func:`load_trace`) and
  prints the :func:`aggregate_stages` per-stage table;
* ``benchmarks/generate_report.py`` folds :func:`aggregate_stages` output
  into the committed BENCH baselines so the perf trajectory records *where*
  the time went, not just how much there was.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs.tracer import Span

#: Format version of the ``--trace-json`` file.
TRACE_FORMAT_VERSION = 1

SpanLike = Union[Span, Mapping[str, Any]]


def _as_span(span: SpanLike) -> Span:
    return span if isinstance(span, Span) else Span.from_dict(span)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds * 1e6:8.1f} us"


def _format_attributes(attributes: Mapping[str, Any], limit: int = 100) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        if isinstance(value, float):
            rendered = f"{value:.4g}"
        elif isinstance(value, (dict, list, tuple)):
            rendered = f"<{type(value).__name__}:{len(value)}>"
        else:
            rendered = str(value)
        parts.append(f"{key}={rendered}")
    text = " ".join(parts)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def render_span_tree(
    spans: Union[SpanLike, Sequence[SpanLike]], max_depth: Optional[int] = None
) -> str:
    """The span tree(s) as an indented text block with durations.

    ``spans`` may be one span (live or dict) or a sequence of roots.
    """
    if isinstance(spans, (Span, Mapping)):
        spans = [spans]
    lines: List[str] = []

    def visit(span: Span, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if not prefix and depth == 0 else ("└─ " if is_last else "├─ ")
        cpu = f" cpu={_format_seconds(span.cpu_time).strip()}" if span.cpu_time is not None else ""
        attrs = _format_attributes(span.attributes)
        lines.append(
            f"{_format_seconds(span.duration)}  {prefix}{connector}{span.name}"
            + (f"  [{attrs}]" if attrs else "")
            + cpu
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        child_prefix = prefix + ("" if depth == 0 and not prefix else ("   " if is_last else "│  "))
        for i, child in enumerate(span.children):
            visit(child, child_prefix, i == len(span.children) - 1, depth + 1)

    for root in spans:
        visit(_as_span(root), "", True, 0)
    return "\n".join(lines)


def aggregate_stages(
    spans: Union[SpanLike, Sequence[SpanLike]]
) -> Dict[str, Dict[str, float]]:
    """Per-stage totals over trace tree(s): name → count/total/self seconds.

    ``total_seconds`` sums each span's inclusive duration; ``self_seconds``
    subtracts the time attributed to its children, so stages that are pure
    containers show up thin and the true hot stages show up fat.
    """
    if isinstance(spans, (Span, Mapping)):
        spans = [spans]
    stages: Dict[str, Dict[str, float]] = {}

    def visit(span: Span) -> None:
        entry = stages.setdefault(
            span.name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += span.duration
        entry["self_seconds"] += max(
            0.0, span.duration - sum(child.duration for child in span.children)
        )
        for child in span.children:
            visit(child)

    for root in spans:
        visit(_as_span(root))
    return stages


def render_stage_table(
    stages: Mapping[str, Mapping[str, float]], total: Optional[float] = None
) -> str:
    """The ``cobra stats --runtime`` table: one row per stage, hottest first."""
    if total is None:
        total = sum(entry["self_seconds"] for entry in stages.values()) or 1.0
    lines = [
        f"{'stage':<34} {'count':>6} {'total':>11} {'self':>11} {'self %':>7}",
        "-" * 74,
    ]
    ordered = sorted(
        stages.items(), key=lambda item: item[1]["self_seconds"], reverse=True
    )
    for name, entry in ordered:
        lines.append(
            f"{name:<34} {int(entry['count']):>6} "
            f"{_format_seconds(entry['total_seconds'])} "
            f"{_format_seconds(entry['self_seconds'])} "
            f"{entry['self_seconds'] / total:>6.1%}"
        )
    return "\n".join(lines)


def trace_to_dict(
    spans: Iterable[SpanLike], metrics: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The ``--trace-json`` document: versioned spans + a metrics snapshot."""
    return {
        "version": TRACE_FORMAT_VERSION,
        "spans": [
            span.to_dict() if isinstance(span, Span) else dict(span)
            for span in spans
        ],
        "metrics": dict(metrics) if metrics is not None else {},
    }


def write_trace(
    path: Union[str, Path],
    spans: Iterable[SpanLike],
    metrics: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Serialise a trace document to ``path`` (JSON, indent 2)."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_dict(spans, metrics), indent=2))
    return path


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``--trace-json`` document back (validating the version)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "spans" not in data:
        raise ValueError(f"{path}: not a trace document (no 'spans' key)")
    version = data.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported trace format version {version!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    return data
