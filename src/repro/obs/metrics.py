"""The metrics registry: named counters, gauges and histograms.

Every component that used to keep its own ad-hoc stat dict — the batch
evaluator's compile cache, the compressor's trajectory cache, the kernel's
incidence cache — now reports into one process-wide
:class:`MetricsRegistry` (:func:`get_registry`), so a single
:meth:`~MetricsRegistry.snapshot` answers "what has the engine been doing"
across all of them.

The registry is deliberately primitive: metrics are plain Python objects
with attribute counters (an increment is an attribute add, cheap enough for
hot paths), snapshots are plain nested dicts (JSON-serialisable as-is), and
cross-process aggregation is snapshot arithmetic —
:meth:`MetricsRegistry.diff` computes the delta a pool worker ships home,
:meth:`MetricsRegistry.merge` folds it into the parent.

Lifecycle: :meth:`MetricsRegistry.reset` zeroes everything (counters used
to accumulate for the life of a shared cache with no way back), and
:meth:`MetricsRegistry.scope` brackets one evaluation, yielding the metric
delta that run produced.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A named distribution summarised as count/sum/min/max.

    Enough to answer "how many, how long in total, best and worst" for
    timings and sizes without keeping samples around.
    """

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """The running mean (0.0 before any sample)."""
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The count/sum/min/max/mean dict :meth:`MetricsRegistry.snapshot` emits."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum})"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Metric creation is locked (first use from any thread wins); increments
    and observations are plain attribute arithmetic — under CPython's GIL
    that is accurate enough for operational metrics and costs the hot paths
    essentially nothing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric handles ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram(name))
        return metric

    # -- convenience write paths ---------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    # -- snapshots and lifecycle ---------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All current values as one JSON-serialisable nested dict.

        Shape: ``{"counters": {name: int}, "gauges": {name: float},
        "histograms": {name: {count, sum, min, max, mean}}}``.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
        }

    def snapshot_prefix(self, prefix: str) -> Dict[str, Any]:
        """Like :meth:`snapshot`, restricted to names starting with ``prefix``.

        The cheap way for a subsystem (``"resilience."``, ``"store_cache."``)
        to report just its own metrics without callers filtering the full
        snapshot by hand.
        """
        return {
            section: {
                name: value
                for name, value in values.items()
                if name.startswith(prefix)
            }
            for section, values in self.snapshot().items()
        }

    def reset(self) -> None:
        """Zero every registered metric (names stay registered).

        This is the per-run lifecycle valve: cache hit/miss counters used to
        accumulate for the life of a shared cache with no way to scope them.
        """
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for histogram in self._histograms.values():
                histogram.count = 0
                histogram.sum = 0.0
                histogram.min = None
                histogram.max = None

    @staticmethod
    def diff(before: Mapping[str, Any], after: Mapping[str, Any]) -> Dict[str, Any]:
        """The metric delta between two snapshots (``after − before``).

        Counters and histogram count/sum subtract; gauges and histogram
        min/max take the ``after`` value (levels, not totals).  This is what
        a worker ships back, and what :meth:`scope` reports per evaluation.
        """
        before_counters = before.get("counters", {})
        counters = {
            name: value - before_counters.get(name, 0)
            for name, value in after.get("counters", {}).items()
            if value - before_counters.get(name, 0)
        }
        before_hists = before.get("histograms", {})
        histograms = {}
        for name, summary in after.get("histograms", {}).items():
            prior = before_hists.get(name, {})
            count = summary["count"] - prior.get("count", 0)
            if count:
                delta_sum = summary["sum"] - prior.get("sum", 0.0)
                histograms[name] = {
                    "count": count,
                    "sum": delta_sum,
                    "min": summary["min"],
                    "max": summary["max"],
                    "mean": delta_sum / count,
                }
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a snapshot/delta (e.g. shipped by a pool worker) into this
        registry: counters and histogram counts/sums add, histogram min/max
        widen, gauges take the incoming value."""
        for name, value in delta.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in delta.get("histograms", {}).items():
            histogram = self.histogram(name)
            count = int(summary.get("count", 0))
            if not count:
                continue
            histogram.count += count
            histogram.sum += float(summary.get("sum", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                incoming = summary.get(bound)
                if incoming is None:
                    continue
                current = getattr(histogram, bound)
                setattr(
                    histogram,
                    bound,
                    incoming if current is None else pick(current, incoming),
                )

    @contextmanager
    def scope(self) -> Iterator["_Scope"]:
        """Bracket one evaluation: yields an object whose ``metrics`` holds
        the delta this block produced (filled at exit).

        >>> registry = MetricsRegistry()
        >>> with registry.scope() as run:
        ...     registry.inc("requests")
        >>> run.metrics["counters"]["requests"]
        1
        """
        scope = _Scope()
        before = self.snapshot()
        try:
            yield scope
        finally:
            scope.metrics = self.diff(before, self.snapshot())

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class _Scope:
    """The handle :meth:`MetricsRegistry.scope` yields (delta at exit)."""

    __slots__ = ("metrics",)

    def __init__(self) -> None:
        self.metrics: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}


#: The process-wide registry every instrumented component reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry singleton."""
    return _REGISTRY
