"""The span-based tracer: nested wall/CPU-timed spans with attributes.

One process owns one :class:`Tracer` (the module singleton behind
:func:`trace`).  Instrumented code writes::

    with trace("batch.evaluate", scenarios=len(scenarios)) as span:
        ...
        span.set("mode", "sparse")

and pays **nothing** when tracing is off: :func:`trace` checks a single
attribute (``Tracer.enabled``) and returns a shared no-op span, so the hot
paths stay hot.  When enabled (``COBRA_TRACE=1`` or
:func:`enable_tracing`), every ``with trace(...)`` block records a
:class:`Span` — wall time via :func:`time.perf_counter`, optional CPU time
via :func:`time.process_time` — nested under the innermost open span of the
current thread.  Completed root spans collect on :attr:`Tracer.roots`
(bounded, oldest dropped) until drained by the CLI, a benchmark, or a
worker-shard capture.

Spans serialise to plain dicts (:meth:`Span.to_dict` /
:meth:`Span.from_dict`), which is how process-pool workers ship their
subtrees back to the parent (:meth:`Tracer.attach`).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from types import TracebackType
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

#: Upper bound on retained completed root spans; a long-lived service with
#: tracing left on must not leak memory just because nobody drains the roots.
MAX_ROOT_SPANS = 512

#: Environment switches: ``COBRA_TRACE=1`` enables tracing at import,
#: ``COBRA_TRACE_CPU=1`` additionally samples CPU time per span.
TRACE_ENV = "COBRA_TRACE"
TRACE_CPU_ENV = "COBRA_TRACE_CPU"


class Span:
    """One timed, attributed node of a trace tree.

    Spans double as context managers: entering starts the clock and pushes
    the span on the owning tracer's stack, exiting stops the clock and files
    the span under its parent (or the tracer's roots).
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start_time",
        "duration",
        "cpu_time",
        "_tracer",
        "_cpu_start",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = attributes or {}
        self.children: List["Span"] = []
        self.start_time: float = 0.0
        self.duration: float = 0.0
        self.cpu_time: Optional[float] = None
        self._tracer = tracer
        self._cpu_start: Optional[float] = None

    # -- attribute surface ---------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach/overwrite one attribute (chainable)."""
        self.attributes[key] = value
        return self

    def update(self, attributes: Mapping[str, Any]) -> "Span":
        """Attach several attributes at once (chainable)."""
        self.attributes.update(attributes)
        return self

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start_time = time.perf_counter()
        if tracer is not None and tracer.cpu:
            self._cpu_start = time.process_time()
        if tracer is not None:
            tracer._push(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> bool:
        self.duration = time.perf_counter() - self.start_time
        if self._cpu_start is not None:
            self.cpu_time = time.process_time() - self._cpu_start
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        if tracer is not None:
            tracer._pop(self)
        return False

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation of the subtree."""
        record: Dict[str, Any] = {
            "name": self.name,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.cpu_time is not None:
            record["cpu_time"] = self.cpu_time
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        span = cls(str(data.get("name", "?")), dict(data.get("attributes", {})))
        span.duration = float(data.get("duration", 0.0))
        if "cpu_time" in data:
            span.cpu_time = float(data["cpu_time"])
        span.children = [cls.from_dict(child) for child in data.get("children", ())]
        return span

    def walk(self) -> Iterator["Span"]:
        """Yield the span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class _NoopSpan:
    """The shared span returned by :func:`trace` when tracing is off.

    Every method is a no-op returning ``self``; the object is a singleton so
    a disabled ``trace(...)`` call allocates nothing.
    """

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def update(self, attributes: Mapping[str, Any]) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> bool:
        return False


#: The singleton no-op span (public: identity-comparable in tests).
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Per-process tracer state: the enable flag, span stacks, and roots.

    The span stack is thread-local (a span opened on a worker thread nests
    under that thread's spans, or becomes a root of its own), while
    :attr:`roots` is shared and bounded.
    """

    def __init__(self, enabled: bool = False, cpu: bool = False) -> None:
        self.enabled = enabled
        self.cpu = cpu
        self.roots: "deque[Span]" = deque(maxlen=MAX_ROOT_SPANS)
        self._local = threading.local()

    # -- stack plumbing ------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover — unbalanced exit safety net
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- public surface ------------------------------------------------------

    def span(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> Span:
        """A new span bound to this tracer (use as a context manager)."""
        return Span(name, attributes, tracer=self)

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread (``None`` outside)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def attach(
        self, subtrees: Sequence[Mapping[str, Any]], **extra: Any
    ) -> List[Span]:
        """Graft serialised span subtrees under the current span (or roots).

        This is the parent side of cross-process aggregation: worker shards
        export their span trees as dicts, the parent re-hydrates them here.
        ``extra`` attributes (e.g. ``shard=3``) are stamped on each grafted
        root.
        """
        grafted = []
        parent = self.current()
        for data in subtrees:
            span = Span.from_dict(data)
            if extra:
                span.attributes.update(extra)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
            grafted.append(span)
        return grafted

    def drain(self) -> List[Span]:
        """Remove and return all completed root spans (oldest first)."""
        roots = list(self.roots)
        self.roots.clear()
        return roots

    def reset(self) -> None:
        """Drop all recorded roots and the calling thread's open stack."""
        self.roots.clear()
        self._local = threading.local()

    def __repr__(self) -> str:
        return (
            f"Tracer(enabled={self.enabled}, roots={len(self.roots)}, "
            f"open={len(self._stack())})"
        )


#: The process-wide tracer singleton behind :func:`trace`.
_TRACER = Tracer(
    enabled=os.environ.get(TRACE_ENV, "") not in ("", "0"),
    cpu=os.environ.get(TRACE_CPU_ENV, "") not in ("", "0"),
)


def get_tracer() -> Tracer:
    """The process-wide tracer singleton."""
    return _TRACER


def trace(name: str, **attributes: Any) -> Union[Span, _NoopSpan]:
    """Open a traced span (the one instrumentation entry point).

    Returns a live :class:`Span` context manager when tracing is enabled and
    the shared no-op singleton otherwise — the disabled cost is one
    attribute lookup plus the call itself, so instrumented hot paths run at
    full speed by default.
    """
    tracer = _TRACER
    if not tracer.enabled:
        return NOOP_SPAN
    return Span(name, attributes, tracer=tracer)


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _TRACER.enabled


def enable_tracing(cpu: Optional[bool] = None) -> Tracer:
    """Turn span recording on (optionally with per-span CPU time)."""
    if cpu is not None:
        _TRACER.cpu = cpu
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> Tracer:
    """Turn span recording off (recorded roots are kept until drained)."""
    _TRACER.enabled = False
    return _TRACER


def current_span() -> Union[Span, _NoopSpan]:
    """The innermost open span, or the no-op span when tracing is off.

    Lets instrumentation annotate whatever span is live without opening a
    new one (``current_span().set("mode", "sparse")``).
    """
    if not _TRACER.enabled:
        return NOOP_SPAN
    span = _TRACER.current()
    return span if span is not None else NOOP_SPAN
