"""Schema definitions for the in-memory engine.

A :class:`Schema` is an ordered list of typed :class:`Column` objects.  The
type system is intentionally small — integers, floats, strings and *symbolic*
(provenance-polynomial-valued) cells — because that is all the COBRA
workloads need; symbolic columns are how cell-level parameterisation enters
the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from numbers import Real
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SchemaError, UnknownColumnError
from repro.provenance.polynomial import Polynomial


class ColumnType(enum.Enum):
    """The value domain of a column."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    #: A column whose cells are numbers *or* provenance polynomials; used for
    #: parameterised numeric data such as the plan prices of the running
    #: example after instrumentation.
    SYMBOLIC = "symbolic"

    def validate(self, value) -> None:
        """Raise :class:`SchemaError` if ``value`` does not belong to this domain."""
        if value is None:
            return
        if self is ColumnType.INTEGER:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(f"expected an integer, got {value!r}")
        elif self is ColumnType.FLOAT:
            if not isinstance(value, Real) or isinstance(value, bool):
                raise SchemaError(f"expected a number, got {value!r}")
        elif self is ColumnType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"expected a string, got {value!r}")
        elif self is ColumnType.SYMBOLIC:
            if not isinstance(value, (Real, Polynomial)) or isinstance(value, bool):
                raise SchemaError(
                    f"expected a number or Polynomial, got {value!r}"
                )


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType = ColumnType.STRING

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")


class Schema:
    """An ordered collection of columns with unique names."""

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: Tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self._columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not self._columns:
            raise SchemaError("a schema must have at least one column")
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self._columns)}

    # -- constructors -----------------------------------------------------

    @classmethod
    def of(cls, *specs: "str | Tuple[str, ColumnType] | Column") -> "Schema":
        """Build a schema from column names, ``(name, type)`` pairs or columns.

        Bare names default to :attr:`ColumnType.STRING`.
        """
        columns: List[Column] = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            elif isinstance(spec, tuple):
                name, column_type = spec
                columns.append(Column(name, column_type))
            else:
                columns.append(Column(spec))
        return cls(columns)

    # -- access ------------------------------------------------------------

    @property
    def columns(self) -> Tuple[Column, ...]:
        """The columns, in order."""
        return self._columns

    def names(self) -> Tuple[str, ...]:
        """The column names, in order."""
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        """The column named ``name`` (raises :class:`UnknownColumnError` if absent)."""
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(
                f"unknown column {name!r}; schema has {list(self.names())}"
            ) from None

    def index_of(self, name: str) -> int:
        """The positional index of column ``name``."""
        if name not in self._index:
            raise UnknownColumnError(
                f"unknown column {name!r}; schema has {list(self.names())}"
            )
        return self._index[name]

    # -- operations -----------------------------------------------------------

    def validate_row(self, values: Sequence) -> None:
        """Validate a row of positional ``values`` against the column types."""
        if len(values) != len(self._columns):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(self._columns)} columns"
            )
        for column, value in zip(self._columns, values):
            try:
                column.type.validate(value)
            except SchemaError as exc:
                raise SchemaError(f"column {column.name!r}: {exc}") from None

    def project(self, names: Sequence[str]) -> "Schema":
        """A schema containing only ``names`` (in the given order)."""
        return Schema([self.column(name) for name in names])

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """A schema with columns renamed through ``mapping``."""
        return Schema(
            [Column(mapping.get(c.name, c.name), c.type) for c in self._columns]
        )

    def concat(self, other: "Schema", disambiguate: Optional[Tuple[str, str]] = None) -> "Schema":
        """Concatenate two schemas, optionally prefixing clashing names.

        If ``disambiguate`` is given as ``(left_prefix, right_prefix)``,
        columns whose names clash are renamed to ``prefix.name`` on both
        sides; otherwise a clash raises :class:`SchemaError`.
        """
        left_names = set(self.names())
        right_names = set(other.names())
        clashes = left_names & right_names
        if clashes and disambiguate is None:
            raise SchemaError(
                f"cannot concatenate schemas with overlapping columns: {sorted(clashes)}"
            )
        left_cols: List[Column] = []
        right_cols: List[Column] = []
        if clashes:
            left_prefix, right_prefix = disambiguate
            for column in self._columns:
                name = (
                    f"{left_prefix}.{column.name}"
                    if column.name in clashes
                    else column.name
                )
                left_cols.append(Column(name, column.type))
            for column in other._columns:
                name = (
                    f"{right_prefix}.{column.name}"
                    if column.name in clashes
                    else column.name
                )
                right_cols.append(Column(name, column.type))
        else:
            left_cols = list(self._columns)
            right_cols = list(other._columns)
        return Schema(left_cols + right_cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.type.value}" for c in self._columns)
        return f"Schema({inner})"
