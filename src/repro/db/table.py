"""Tables, annotated rows and relations.

Two row containers are distinguished:

* :class:`Table` — a named base table (schema + plain rows), the thing a
  :class:`~repro.db.catalog.Catalog` stores and the instrumentation policies
  of :mod:`repro.db.annotations` decorate;
* :class:`Relation` — the result of (part of) a query: rows carrying both
  cell values and a tuple-level provenance annotation (an N[X] polynomial),
  which the executor propagates through the operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.provenance.polynomial import Polynomial
from repro.db.schema import Schema


@dataclass(frozen=True)
class AnnotatedRow:
    """A row of named cell values plus its provenance annotation.

    The annotation is the tuple-level N[X] polynomial tracking which
    instrumented base tuples the row was derived from; a plain
    (non-instrumented) tuple carries the annotation ``1``.
    """

    values: Mapping[str, object]
    annotation: Polynomial = field(default_factory=Polynomial.one)

    def __getitem__(self, column: str) -> object:
        return self.values[column]

    def get(self, column: str, default=None):
        """Return the value of ``column`` or ``default``."""
        return self.values.get(column, default)

    def with_values(self, values: Mapping[str, object]) -> "AnnotatedRow":
        """Return a row with replaced values, keeping the annotation."""
        return AnnotatedRow(dict(values), self.annotation)

    def with_annotation(self, annotation: Polynomial) -> "AnnotatedRow":
        """Return a row with a replaced annotation, keeping the values."""
        return AnnotatedRow(dict(self.values), annotation)


class Relation:
    """A schema plus a sequence of annotated rows (a query-intermediate result)."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[AnnotatedRow] = ()) -> None:
        self.schema = schema
        self.rows: List[AnnotatedRow] = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[AnnotatedRow]:
        return iter(self.rows)

    def column_values(self, column: str) -> List[object]:
        """All values of ``column``, in row order."""
        self.schema.column(column)
        return [row[column] for row in self.rows]

    def to_tuples(self, columns: Optional[Sequence[str]] = None) -> List[Tuple]:
        """Rows as plain tuples over ``columns`` (default: all schema columns)."""
        names = tuple(columns) if columns is not None else self.schema.names()
        for name in names:
            self.schema.column(name)
        return [tuple(row[name] for name in names) for row in self.rows]

    def __repr__(self) -> str:
        return f"Relation(columns={list(self.schema.names())}, rows={len(self.rows)})"


class Table:
    """A named base table: a schema and a list of plain rows.

    Rows may be appended as positional sequences or as dictionaries; both are
    validated against the schema.  Cells of ``SYMBOLIC`` columns may hold
    provenance polynomials (that is how instrumented tables are represented).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence] = (),
    ) -> None:
        if not name:
            raise SchemaError("a table must have a non-empty name")
        self.name = name
        self.schema = schema
        self._rows: List[Tuple] = []
        for row in rows:
            self.insert(row)

    # -- mutation ------------------------------------------------------------

    def insert(self, row: "Sequence | Mapping[str, object]") -> None:
        """Insert one row, given positionally or as a column → value mapping."""
        if isinstance(row, Mapping):
            values = tuple(row.get(name) for name in self.schema.names())
            unknown = set(row) - set(self.schema.names())
            if unknown:
                raise SchemaError(
                    f"row mentions unknown columns {sorted(unknown)} "
                    f"for table {self.name!r}"
                )
        else:
            values = tuple(row)
        self.schema.validate_row(values)
        self._rows.append(values)

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        """Insert many rows."""
        for row in rows:
            self.insert(row)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        names = self.schema.names()
        for row in self._rows:
            yield dict(zip(names, row))

    def rows(self) -> List[Tuple]:
        """The raw positional rows."""
        return list(self._rows)

    def column_values(self, column: str) -> List[object]:
        """All values of ``column``, in row order."""
        index = self.schema.index_of(column)
        return [row[index] for row in self._rows]

    def distinct_values(self, column: str) -> List[object]:
        """Distinct values of ``column``, in first-appearance order."""
        seen = set()
        result = []
        for value in self.column_values(column):
            if value not in seen:
                seen.add(value)
                result.append(value)
        return result

    # -- conversion ------------------------------------------------------------

    def to_relation(self, annotation_for_row=None) -> Relation:
        """Convert to a :class:`Relation` of annotated rows.

        ``annotation_for_row`` may be a callable taking the row dictionary and
        returning its tuple-level annotation; by default every row is
        annotated with the polynomial ``1`` (no tuple-level instrumentation).
        """
        names = self.schema.names()
        rows = []
        for raw in self._rows:
            values = dict(zip(names, raw))
            if annotation_for_row is None:
                annotation = Polynomial.one()
            else:
                annotation = annotation_for_row(values)
            rows.append(AnnotatedRow(values, annotation))
        return Relation(self.schema, rows)

    def map_column(self, column: str, func) -> "Table":
        """Return a new table with ``func`` applied to every cell of ``column``.

        The column's type is switched to ``SYMBOLIC`` because this is the
        hook used by cell-level instrumentation (values become polynomials).
        """
        from repro.db.schema import Column, ColumnType

        index = self.schema.index_of(column)
        new_columns = [
            Column(c.name, ColumnType.SYMBOLIC) if c.name == column else c
            for c in self.schema.columns
        ]
        new_schema = Schema(new_columns)
        new_table = Table(self.name, new_schema)
        names = self.schema.names()
        for raw in self._rows:
            row = dict(zip(names, raw))
            new_value = func(row)
            values = list(raw)
            values[index] = new_value
            new_table.insert(values)
        return new_table

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, columns={list(self.schema.names())}, "
            f"rows={len(self._rows)})"
        )
