"""Provenance-propagating execution of logical query plans.

The executor implements the standard semiring propagation rules of Green et
al. (PODS 2007) for the relational operators — join multiplies annotations,
duplicate-eliminating projection and union add them — and the semimodule
treatment of Amsterdamer et al. (PODS 2011) for SUM/COUNT aggregates, where
each group's result becomes a symbolic expression (flattened here into an
N[X] polynomial with numeric coefficients, exactly the shape of Example 2 in
the COBRA paper).

Cell-level instrumentation is handled transparently: if a referenced cell
holds a :class:`~repro.provenance.polynomial.Polynomial` (e.g. a price
parameterised as ``0.4·p1·m1``) the aggregate expression simply multiplies it
in.
"""

from __future__ import annotations

from numbers import Real
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union as TUnion

from repro.exceptions import QueryError, SchemaError
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.db.catalog import Catalog
from repro.db.schema import Column, ColumnType, Schema
from repro.db.table import AnnotatedRow, Relation
from repro.db.query import (
    Filter,
    GroupBy,
    Join,
    LogicalPlan,
    Project,
    Query,
    Rename,
    Scan,
    Union,
)

#: Type of the optional tuple-level annotation providers: table name →
#: callable mapping a row dictionary to its provenance annotation.
AnnotationProviders = Mapping[str, Callable[[Mapping[str, object]], Polynomial]]


def execute(
    query: TUnion[Query, LogicalPlan],
    catalog: Catalog,
    annotations: Optional[AnnotationProviders] = None,
) -> Relation:
    """Execute ``query`` against ``catalog`` and return an annotated relation.

    Parameters
    ----------
    query:
        A :class:`~repro.db.query.Query` or a bare logical plan.
    catalog:
        The database instance to run against.
    annotations:
        Optional tuple-level instrumentation: for each table name, a callable
        mapping the row dictionary to the row's provenance annotation.  Tables
        not mentioned get the annotation ``1``.  Cell-level instrumentation
        needs no entry here — instrumented cells already hold polynomials.
    """
    plan = query.plan if isinstance(query, Query) else query
    return _Executor(catalog, annotations or {}).run(plan)


class _Executor:
    """A single-use evaluator for one plan over one catalog."""

    def __init__(self, catalog: Catalog, annotations: AnnotationProviders) -> None:
        self._catalog = catalog
        self._annotations = annotations

    def run(self, plan: LogicalPlan) -> Relation:
        if isinstance(plan, Scan):
            return self._scan(plan)
        if isinstance(plan, Filter):
            return self._filter(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, GroupBy):
            return self._groupby(plan)
        if isinstance(plan, Rename):
            return self._rename(plan)
        if isinstance(plan, Union):
            return self._union(plan)
        raise QueryError(f"unsupported plan node: {type(plan).__name__}")

    # -- leaf ------------------------------------------------------------------

    def _scan(self, plan: Scan) -> Relation:
        table = self._catalog.get(plan.table)
        provider = self._annotations.get(plan.table)
        return table.to_relation(provider)

    # -- unary -----------------------------------------------------------------

    def _filter(self, plan: Filter) -> Relation:
        child = self.run(plan.child)
        rows = [row for row in child.rows if plan.predicate.evaluate(row.values)]
        return Relation(child.schema, rows)

    def _project(self, plan: Project) -> Relation:
        child = self.run(plan.child)
        columns: List[Column] = []
        for name, expression in plan.columns:
            referenced = expression.columns()
            if len(referenced) == 1 and referenced[0] in child.schema and \
                    referenced[0] == name:
                columns.append(child.schema.column(name))
            else:
                columns.append(Column(name, ColumnType.SYMBOLIC))
        schema = Schema(columns)

        projected: List[AnnotatedRow] = []
        for row in child.rows:
            values = {
                name: expression.evaluate(row.values)
                for name, expression in plan.columns
            }
            projected.append(AnnotatedRow(values, row.annotation))

        if not plan.distinct:
            return Relation(schema, projected)

        # Duplicate elimination: merge equal rows, summing their annotations.
        merged: Dict[Tuple, Polynomial] = {}
        order: List[Tuple] = []
        names = schema.names()
        for row in projected:
            key = tuple(_hashable(row[name]) for name in names)
            if key not in merged:
                merged[key] = row.annotation
                order.append(key)
            else:
                merged[key] = merged[key] + row.annotation
        value_for: Dict[Tuple, Mapping[str, object]] = {}
        for row in projected:
            key = tuple(_hashable(row[name]) for name in names)
            value_for.setdefault(key, row.values)
        rows = [AnnotatedRow(dict(value_for[key]), merged[key]) for key in order]
        return Relation(schema, rows)

    def _rename(self, plan: Rename) -> Relation:
        child = self.run(plan.child)
        mapping = dict(plan.mapping)
        for old in mapping:
            child.schema.column(old)
        schema = child.schema.rename(mapping)
        rows = [
            AnnotatedRow(
                {mapping.get(name, name): value for name, value in row.values.items()},
                row.annotation,
            )
            for row in child.rows
        ]
        return Relation(schema, rows)

    # -- binary -----------------------------------------------------------------

    def _join(self, plan: Join) -> Relation:
        left = self.run(plan.left)
        right = self.run(plan.right)

        for left_col, right_col in plan.on:
            left.schema.column(left_col)
            right.schema.column(right_col)

        join_right_cols = {right_col for _, right_col in plan.on}
        # Right columns that are join columns with an identical left name are
        # dropped from the output (natural-join style); any other clash is an
        # error the caller should resolve with rename().
        drop_right = {
            right_col
            for left_col, right_col in plan.on
            if left_col == right_col
        }
        clashes = (
            set(right.schema.names()) - drop_right
        ) & set(left.schema.names())
        if clashes:
            raise SchemaError(
                f"join would produce duplicate columns {sorted(clashes)}; "
                f"rename() one side first"
            )

        right_kept = [
            column for column in right.schema.columns if column.name not in drop_right
        ]
        schema = Schema(list(left.schema.columns) + right_kept)

        # Hash join on the equi-columns.
        index: Dict[Tuple, List[AnnotatedRow]] = {}
        for row in right.rows:
            key = tuple(_hashable(row[right_col]) for _, right_col in plan.on)
            index.setdefault(key, []).append(row)

        rows: List[AnnotatedRow] = []
        for left_row in left.rows:
            key = tuple(_hashable(left_row[left_col]) for left_col, _ in plan.on)
            for right_row in index.get(key, ()):
                values = dict(left_row.values)
                for column in right_kept:
                    values[column.name] = right_row[column.name]
                if plan.condition is not None and not plan.condition.evaluate(values):
                    continue
                annotation = left_row.annotation * right_row.annotation
                rows.append(AnnotatedRow(values, annotation))
        return Relation(schema, rows)

    def _union(self, plan: Union) -> Relation:
        left = self.run(plan.left)
        right = self.run(plan.right)
        if left.schema.names() != right.schema.names():
            raise SchemaError(
                "union requires identical column names on both sides: "
                f"{left.schema.names()} vs {right.schema.names()}"
            )
        return Relation(left.schema, list(left.rows) + list(right.rows))

    # -- aggregation ----------------------------------------------------------------

    def _groupby(self, plan: GroupBy) -> Relation:
        child = self.run(plan.child)
        for key in plan.keys:
            child.schema.column(key)

        groups: Dict[Tuple, List[AnnotatedRow]] = {}
        order: List[Tuple] = []
        for row in child.rows:
            key = tuple(_hashable(row[k]) for k in plan.keys)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        columns = [child.schema.column(k) for k in plan.keys]
        columns += [
            Column(name, ColumnType.SYMBOLIC) for name, _, _ in plan.aggregates
        ]
        schema = Schema(columns)

        rows: List[AnnotatedRow] = []
        for key in order:
            members = groups[key]
            values: Dict[str, object] = {
                k: members[0][k] for k in plan.keys
            }
            for name, function, expression in plan.aggregates:
                values[name] = _aggregate(function, expression, members)
            rows.append(AnnotatedRow(values, Polynomial.one()))
        return Relation(schema, rows)


# ---------------------------------------------------------------------------
# Aggregate computation
# ---------------------------------------------------------------------------


def _aggregate(function: str, expression, members: Sequence[AnnotatedRow]):
    if function == "sum":
        return _symbolic_sum(expression, members)
    if function == "count":
        return _symbolic_count(members)
    if function in ("min", "max", "avg"):
        return _plain_aggregate(function, expression, members)
    raise QueryError(f"unsupported aggregate function {function!r}")


def _symbolic_sum(expression, members: Sequence[AnnotatedRow]):
    """SUM with semimodule propagation; returns a float when fully concrete."""
    total = Polynomial.zero()
    concrete = True
    for row in members:
        value = expression.evaluate(row.values)
        if isinstance(value, Polynomial):
            contribution = value * row.annotation
            concrete = False
        elif isinstance(value, Real):
            contribution = row.annotation.scale(float(value))
            if not _is_trivial(row.annotation):
                concrete = False
        else:
            raise QueryError(
                f"cannot SUM non-numeric value {value!r}"
            )
        total = total + contribution
    if concrete:
        return total.constant_term()
    return total


def _symbolic_count(members: Sequence[AnnotatedRow]):
    """COUNT: the sum of annotations (a number when nothing is instrumented)."""
    total = Polynomial.zero()
    concrete = True
    for row in members:
        total = total + row.annotation
        if not _is_trivial(row.annotation):
            concrete = False
    if concrete:
        return int(total.constant_term())
    return total


def _plain_aggregate(function: str, expression, members: Sequence[AnnotatedRow]):
    values = []
    for row in members:
        value = expression.evaluate(row.values)
        if isinstance(value, Polynomial):
            raise QueryError(
                f"{function.upper()} is not supported over symbolic values; "
                "only SUM/COUNT propagate provenance"
            )
        if not _is_trivial(row.annotation):
            raise QueryError(
                f"{function.upper()} is not supported over tuple-annotated rows"
            )
        values.append(float(value))
    if not values:
        raise QueryError(f"{function.upper()} over an empty group")
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    return sum(values) / len(values)


def _is_trivial(annotation: Polynomial) -> bool:
    """Whether an annotation is the constant polynomial (no variables)."""
    return not annotation.variables()


def _hashable(value):
    """Make a cell value usable as (part of) a dictionary key."""
    if isinstance(value, Polynomial):
        return value
    return value


# ---------------------------------------------------------------------------
# Bridging to the COBRA input format
# ---------------------------------------------------------------------------


def to_provenance_set(
    relation: Relation,
    key_columns: Sequence[str],
    value_column: str,
) -> ProvenanceSet:
    """Extract a :class:`ProvenanceSet` from an aggregate query result.

    ``key_columns`` identify the result rows (e.g. ``["Zip"]``) and
    ``value_column`` is the symbolic aggregate column; plain numeric values
    are wrapped as constant polynomials so downstream code is uniform.
    """
    for name in list(key_columns) + [value_column]:
        relation.schema.column(name)
    result = ProvenanceSet()
    for row in relation.rows:
        key = tuple(row[name] for name in key_columns)
        value = row[value_column]
        if isinstance(value, Polynomial):
            polynomial = value
        elif isinstance(value, Real):
            polynomial = Polynomial.constant(float(value))
        else:
            raise QueryError(
                f"column {value_column!r} holds non-numeric, non-symbolic "
                f"value {value!r}"
            )
        result.add(key, polynomial)
    return result
