"""The catalog: a named collection of base tables (a "database instance")."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.exceptions import SchemaError, UnknownTableError
from repro.db.table import Table


class Catalog:
    """A mapping from table names to :class:`~repro.db.table.Table` objects.

    The catalog is what queries are executed against; workload generators
    (telephony, TPC-H) return a populated catalog.
    """

    def __init__(self, tables: Optional[Dict[str, Table]] = None) -> None:
        self._tables: Dict[str, Table] = {}
        for table in (tables or {}).values():
            self.add(table)

    def add(self, table: Table, replace: bool = False) -> Table:
        """Register ``table`` under its own name.

        Raises :class:`SchemaError` if a different table is already registered
        under that name and ``replace`` is false.
        """
        if table.name in self._tables and not replace:
            raise SchemaError(f"table {table.name!r} already exists in the catalog")
        self._tables[table.name] = table
        return table

    def create_table(self, name: str, schema, rows=()) -> Table:
        """Create, register and return a new table."""
        return self.add(Table(name, schema, rows))

    def get(self, name: str) -> Table:
        """Return the table named ``name`` (raises :class:`UnknownTableError`)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(
                f"unknown table {name!r}; catalog has {sorted(self._tables)}"
            ) from None

    def __getitem__(self, name: str) -> Table:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def names(self) -> Tuple[str, ...]:
        """All table names, in registration order."""
        return tuple(self._tables.keys())

    def replace(self, table: Table) -> Table:
        """Register ``table``, replacing any existing table of the same name."""
        return self.add(table, replace=True)

    def total_rows(self) -> int:
        """Total number of rows across all tables (for reporting)."""
        return sum(len(t) for t in self._tables.values())

    def __repr__(self) -> str:
        return f"Catalog(tables={list(self._tables)})"
