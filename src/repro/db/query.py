"""The logical query algebra and its fluent builder.

A query is an immutable tree of logical operators (scan, filter, project,
join, group-by/aggregate, rename) evaluated by :mod:`repro.db.executor`.
The fluent :class:`Query` builder constructs the tree; for example the
running-example revenue query of the paper is::

    Query.scan("Calls")
        .join(Query.scan("Cust"), on=[("CID", "ID")])
        .join(Query.scan("Plans"), on=[("Plan", "Plan"), ("Mo", "Mo")])
        .groupby(["Zip"], aggregates=[("revenue", "sum", col("Dur") * col("Price"))])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import QueryError
from repro.db.expressions import Expression, Predicate, col

#: The aggregate functions supported by the group-by operator.
SUPPORTED_AGGREGATES = ("sum", "count", "min", "max", "avg")

AggregateSpec = Tuple[str, str, Optional[Expression]]


@dataclass(frozen=True)
class LogicalPlan:
    """Base class of logical operator nodes (a marker type)."""


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Scan a base table from the catalog."""

    table: str


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Keep rows satisfying a predicate."""

    child: LogicalPlan
    predicate: Predicate


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Project to a subset of columns (or computed columns)."""

    child: LogicalPlan
    columns: Tuple[Tuple[str, Expression], ...]
    #: Whether duplicate rows should be merged (set semantics); under
    #: provenance semantics merged duplicates have their annotations summed.
    distinct: bool = False


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Equi-join of two sub-plans on pairs of columns."""

    left: LogicalPlan
    right: LogicalPlan
    on: Tuple[Tuple[str, str], ...]
    #: Optional extra (theta) condition evaluated over the combined row.
    condition: Optional[Predicate] = None


@dataclass(frozen=True)
class GroupBy(LogicalPlan):
    """Group-by with aggregates.

    ``aggregates`` is a tuple of ``(output_name, function, expression)``;
    ``expression`` is ignored (may be ``None``) for ``count``.
    """

    child: LogicalPlan
    keys: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]


@dataclass(frozen=True)
class Rename(LogicalPlan):
    """Rename columns of the child plan."""

    child: LogicalPlan
    mapping: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class Union(LogicalPlan):
    """Bag union of two union-compatible sub-plans."""

    left: LogicalPlan
    right: LogicalPlan


class Query:
    """Fluent builder over :class:`LogicalPlan` trees.

    Instances are immutable; every method returns a new query wrapping a new
    plan node.  Use :func:`repro.db.executor.execute` to run a query against
    a catalog.
    """

    def __init__(self, plan: LogicalPlan) -> None:
        self._plan = plan

    @property
    def plan(self) -> LogicalPlan:
        """The underlying logical plan tree."""
        return self._plan

    # -- constructors -----------------------------------------------------

    @classmethod
    def scan(cls, table: str) -> "Query":
        """Start a query by scanning base table ``table``."""
        if not table:
            raise QueryError("scan() requires a table name")
        return cls(Scan(table))

    # -- operators ----------------------------------------------------------

    def filter(self, predicate: Predicate) -> "Query":
        """Keep only rows satisfying ``predicate``."""
        if not isinstance(predicate, Predicate):
            raise QueryError("filter() requires a Predicate (e.g. col('a') == 1)")
        return Query(Filter(self._plan, predicate))

    def project(
        self,
        columns: Sequence[Union[str, Tuple[str, Expression]]],
        distinct: bool = False,
    ) -> "Query":
        """Project to ``columns``.

        Each entry is either an existing column name or an
        ``(output_name, expression)`` pair for a computed column.
        """
        if not columns:
            raise QueryError("project() requires at least one column")
        normalized: List[Tuple[str, Expression]] = []
        for entry in columns:
            if isinstance(entry, str):
                normalized.append((entry, col(entry)))
            else:
                name, expression = entry
                if not isinstance(expression, Expression):
                    raise QueryError(
                        f"projection for {name!r} must be an Expression"
                    )
                normalized.append((name, expression))
        names = [name for name, _ in normalized]
        if len(names) != len(set(names)):
            raise QueryError(f"duplicate output columns in projection: {names}")
        return Query(Project(self._plan, tuple(normalized), distinct=distinct))

    def join(
        self,
        other: "Query",
        on: Sequence[Tuple[str, str]],
        condition: Optional[Predicate] = None,
    ) -> "Query":
        """Equi-join with ``other`` on ``[(left_column, right_column), ...]``."""
        if not isinstance(other, Query):
            raise QueryError("join() requires another Query")
        if not on:
            raise QueryError("join() requires at least one column pair in 'on'")
        return Query(Join(self._plan, other._plan, tuple(tuple(p) for p in on), condition))

    def groupby(
        self,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> "Query":
        """Group by ``keys`` and compute ``aggregates``.

        Each aggregate is ``(output_name, function, expression)`` with
        ``function`` one of ``sum``, ``count``, ``min``, ``max``, ``avg``.
        """
        if not aggregates:
            raise QueryError("groupby() requires at least one aggregate")
        normalized: List[AggregateSpec] = []
        for name, function, expression in aggregates:
            function = function.lower()
            if function not in SUPPORTED_AGGREGATES:
                raise QueryError(
                    f"unsupported aggregate {function!r}; "
                    f"supported: {SUPPORTED_AGGREGATES}"
                )
            if function != "count" and not isinstance(expression, Expression):
                raise QueryError(
                    f"aggregate {name!r} ({function}) requires an expression"
                )
            normalized.append((name, function, expression))
        output_names = list(keys) + [name for name, _, _ in normalized]
        if len(output_names) != len(set(output_names)):
            raise QueryError(f"duplicate output columns in group-by: {output_names}")
        return Query(GroupBy(self._plan, tuple(keys), tuple(normalized)))

    def rename(self, mapping: Mapping[str, str]) -> "Query":
        """Rename columns according to ``mapping`` (old name → new name)."""
        if not mapping:
            raise QueryError("rename() requires a non-empty mapping")
        return Query(Rename(self._plan, tuple(mapping.items())))

    def union(self, other: "Query") -> "Query":
        """Bag union with a union-compatible query."""
        if not isinstance(other, Query):
            raise QueryError("union() requires another Query")
        return Query(Union(self._plan, other._plan))

    def __repr__(self) -> str:
        return f"Query({self._plan!r})"
