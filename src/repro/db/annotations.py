"""Instrumentation policies: attaching provenance variables to data.

The paper's pipeline starts by "instrumenting the data with symbolic
variables, either at the cell or tuple level".  Two policies implement the
two granularities:

* :class:`TupleAnnotationPolicy` — every tuple of a table receives a fresh
  (or key-derived) variable as its annotation; suitable for "what if this
  tuple were deleted / duplicated" scenarios.
* :class:`CellParameterizationPolicy` — a numeric column is multiplied by a
  product of variables derived from the row, e.g. the plan price becomes
  ``0.4 · p1 · m1``; this is the multiplicative parameterisation used in the
  running example ("a distinct parameter m_i to capture the change in
  month i").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.provenance.polynomial import Polynomial
from repro.provenance.variables import Variable, VariableRegistry
from repro.db.table import Table

RowMapping = Mapping[str, object]
VariableNamer = Callable[[RowMapping], Union[str, Sequence[str]]]


@dataclass
class TupleAnnotationPolicy:
    """Tuple-level instrumentation.

    Parameters
    ----------
    namer:
        A callable mapping the row dictionary to the variable name annotating
        that tuple (or to a sequence of names whose product annotates it).
        If omitted, fresh names ``<table>_t_<n>`` are generated.
    registry:
        The registry in which created variables are recorded.
    """

    namer: Optional[VariableNamer] = None
    registry: VariableRegistry = field(default_factory=VariableRegistry)

    def annotation_provider(
        self, table: Table
    ) -> Callable[[RowMapping], Polynomial]:
        """Build the row → annotation callable to pass to the executor."""
        counter = {"value": 0}

        def provider(row: RowMapping) -> Polynomial:
            if self.namer is None:
                counter["value"] += 1
                name = f"{table.name.lower()}_t_{counter['value']}"
                names: Sequence[str] = (name,)
            else:
                named = self.namer(row)
                names = (named,) if isinstance(named, str) else tuple(named)
            annotation = Polynomial.one()
            for name in names:
                self.registry.declare(name, table=table.name)
                annotation = annotation * Polynomial.variable(name)
            return annotation

        return provider


@dataclass
class CellParameterizationPolicy:
    """Cell-level multiplicative parameterisation of a numeric column.

    Parameters
    ----------
    column:
        The numeric column to parameterise (e.g. ``"Price"``).
    namer:
        A callable mapping the row dictionary to the variable name (or names)
        to multiply into the cell, e.g.
        ``lambda row: (plan_var[row["Plan"]], f"m{row['Mo']}")``.
    registry:
        The registry in which created variables are recorded.
    """

    column: str
    namer: VariableNamer = None  # type: ignore[assignment]
    registry: VariableRegistry = field(default_factory=VariableRegistry)

    def apply(self, table: Table) -> Table:
        """Return a copy of ``table`` with the column parameterised.

        Each cell value ``v`` becomes the polynomial ``v · x1 · x2 ...`` where
        the ``xi`` are the variables named by ``namer`` for that row.
        """
        if self.namer is None:
            raise SchemaError(
                "CellParameterizationPolicy requires a namer callable"
            )
        table.schema.column(self.column)

        def parameterise(row: RowMapping):
            value = row[self.column]
            if value is None:
                return None
            if not isinstance(value, Real):
                raise SchemaError(
                    f"cannot parameterise non-numeric cell {value!r} "
                    f"in column {self.column!r}"
                )
            named = self.namer(row)
            names = (named,) if isinstance(named, str) else tuple(named)
            factors = {}
            for name in names:
                self.registry.declare(
                    name, table=table.name, column=self.column
                )
                factors[name] = factors.get(name, 0) + 1
            from repro.provenance.monomial import Monomial

            return Polynomial({Monomial(factors): float(value)})

        return table.map_column(self.column, parameterise)


InstrumentationPolicy = Union[TupleAnnotationPolicy, CellParameterizationPolicy]


def instrument_table(
    table: Table, policy: InstrumentationPolicy
) -> Tuple[Table, Optional[Callable[[RowMapping], Polynomial]]]:
    """Apply an instrumentation policy to ``table``.

    Returns ``(table, annotation_provider)``:

    * for cell-level policies the returned table is a new, parameterised
      table and the provider is ``None``;
    * for tuple-level policies the table is returned unchanged and the
      provider should be passed to :func:`repro.db.executor.execute` under
      the table's name.
    """
    if isinstance(policy, CellParameterizationPolicy):
        return policy.apply(table), None
    if isinstance(policy, TupleAnnotationPolicy):
        return table, policy.annotation_provider(table)
    raise SchemaError(f"unknown instrumentation policy: {policy!r}")
