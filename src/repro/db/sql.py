"""A miniature SQL dialect for the paper's analysis queries.

The demo paper expresses its running example as SQL::

    SELECT Zip, SUM(Calls.Dur * Plans.Price)
    FROM Calls, Cust, Plans
    WHERE Cust.Plan = Plans.Plan
      AND Cust.ID = Calls.CID
      AND Calls.Mo = Plans.Mo
    GROUP BY Cust.Zip

:func:`parse_sql` converts exactly this class of statements —
``SELECT ... FROM t1, t2, ... [WHERE conjunction] [GROUP BY ...]`` with
aggregates ``SUM/COUNT/MIN/MAX/AVG`` and arithmetic select expressions —
into a :class:`~repro.db.query.Query`.  Qualified names (``Table.Column``)
are accepted and stripped to their column part; join conditions are derived
from the equality predicates between tables in the ``WHERE`` clause, exactly
as a textbook canonical translation of a conjunctive query would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SQLParseError
from repro.db.catalog import Catalog
from repro.db.expressions import Expression, col, const
from repro.db.query import Query, SUPPORTED_AGGREGATES

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d*|\.\d+|\d+)               |
    (?P<string>'[^']*')                          |
    (?P<name>[A-Za-z_][A-Za-z0-9_]*)             |
    (?P<op><=|>=|<>|!=|=|<|>|\*|/|\+|-|,|\(|\)|\.) |
    (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "and", "as",
}


@dataclass
class _Token:
    kind: str
    value: str

    def lowered(self) -> str:
        return self.value.lower()


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SQLParseError(
                f"unexpected character {sql[position]!r} at position {position}"
            )
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[_Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLParseError(f"unexpected end of statement in {self._sql!r}")
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.kind != "name" or token.lowered() != keyword:
            raise SQLParseError(
                f"expected {keyword.upper()!r}, got {token.value!r}"
            )

    def _match_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "name" and token.lowered() == keyword:
            self._index += 1
            return True
        return False

    def _match_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == op:
            self._index += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.value != op:
            raise SQLParseError(f"expected {op!r}, got {token.value!r}")

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> "_Statement":
        self._expect_keyword("select")
        select_items = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_table_list()
        predicates: List[_Predicate] = []
        if self._match_keyword("where"):
            predicates = self._parse_where()
        group_by: List[str] = []
        if self._match_keyword("group"):
            self._expect_keyword("by")
            group_by = self._parse_column_list()
        if self._peek() is not None:
            raise SQLParseError(
                f"unexpected trailing token {self._peek().value!r} in {self._sql!r}"
            )
        return _Statement(select_items, tables, predicates, group_by)

    def _parse_select_list(self) -> List["_SelectItem"]:
        items = [self._parse_select_item()]
        while self._match_op(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> "_SelectItem":
        token = self._peek()
        if token is None:
            raise SQLParseError("empty SELECT list")
        if (
            token.kind == "name"
            and token.lowered() in SUPPORTED_AGGREGATES
            and self._index + 1 < len(self._tokens)
            and self._tokens[self._index + 1].value == "("
        ):
            function = self._advance().lowered()
            self._expect_op("(")
            expression: Optional[Expression]
            if function == "count" and self._peek() is not None and self._peek().value == "*":
                self._advance()
                expression = None
            else:
                expression = self._parse_expression()
            self._expect_op(")")
            alias = self._parse_optional_alias() or function
            return _SelectItem(alias, expression, function)
        expression = self._parse_expression()
        alias = self._parse_optional_alias()
        if alias is None:
            alias = _default_alias(expression)
        return _SelectItem(alias, expression, None)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._match_keyword("as"):
            token = self._advance()
            if token.kind != "name":
                raise SQLParseError(f"expected an alias name, got {token.value!r}")
            return token.value
        return None

    def _parse_table_list(self) -> List[str]:
        tables = [self._parse_name()]
        while self._match_op(","):
            tables.append(self._parse_name())
        return tables

    def _parse_name(self) -> str:
        token = self._advance()
        if token.kind != "name" or token.lowered() in _KEYWORDS:
            raise SQLParseError(f"expected a name, got {token.value!r}")
        return token.value

    def _parse_column_list(self) -> List[str]:
        columns = [self._parse_column_ref()]
        while self._match_op(","):
            columns.append(self._parse_column_ref())
        return columns

    def _parse_column_ref(self) -> str:
        name = self._parse_name()
        if self._match_op("."):
            name = self._parse_name()
        return name

    def _parse_where(self) -> List["_Predicate"]:
        predicates = [self._parse_comparison()]
        while self._match_keyword("and"):
            predicates.append(self._parse_comparison())
        return predicates

    def _parse_comparison(self) -> "_Predicate":
        left = self._parse_operand()
        token = self._advance()
        if token.kind != "op" or token.value not in ("=", "<>", "!=", "<", "<=", ">", ">="):
            raise SQLParseError(f"expected a comparison operator, got {token.value!r}")
        operator = {"=": "==", "<>": "!=", "!=": "!="}.get(token.value, token.value)
        right = self._parse_operand()
        return _Predicate(operator, left, right)

    def _parse_operand(self) -> "_Operand":
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of statement in WHERE clause")
        if token.kind == "number":
            self._advance()
            return _Operand("literal", _to_number(token.value))
        if token.kind == "string":
            self._advance()
            return _Operand("literal", token.value[1:-1])
        if token.kind == "op" and token.value == "-":
            self._advance()
            number = self._advance()
            if number.kind != "number":
                raise SQLParseError("expected a number after unary '-'")
            return _Operand("literal", -_to_number(number.value))
        first = self._parse_name()
        if self._match_op("."):
            return _Operand("column", (first, self._parse_name()))
        return _Operand("column", (None, first))

    # Arithmetic expression grammar: term (('+'|'-') term)*; term: factor (('*'|'/') factor)*.
    def _parse_expression(self) -> Expression:
        expression = self._parse_term()
        while True:
            if self._match_op("+"):
                expression = expression + self._parse_term()
            elif self._match_op("-"):
                expression = expression - self._parse_term()
            else:
                return expression

    def _parse_term(self) -> Expression:
        expression = self._parse_factor()
        while True:
            if self._match_op("*"):
                expression = expression * self._parse_factor()
            elif self._match_op("/"):
                expression = expression / self._parse_factor()
            else:
                return expression

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of expression")
        if token.kind == "number":
            self._advance()
            return const(_to_number(token.value))
        if token.kind == "string":
            self._advance()
            return const(token.value[1:-1])
        if token.kind == "op" and token.value == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        name = self._parse_column_ref()
        return col(name)


@dataclass
class _SelectItem:
    alias: str
    expression: Optional[Expression]
    aggregate: Optional[str]


@dataclass
class _Operand:
    kind: str  # "column" | "literal"
    #: For columns the value is a ``(qualifier or None, column name)`` pair;
    #: for literals it is the literal itself.
    value: object

    @property
    def column_name(self) -> str:
        qualifier, name = self.value  # type: ignore[misc]
        return name

    @property
    def qualifier(self) -> Optional[str]:
        qualifier, _name = self.value  # type: ignore[misc]
        return qualifier


@dataclass
class _Predicate:
    operator: str
    left: _Operand
    right: _Operand


@dataclass
class _Statement:
    select: List[_SelectItem]
    tables: List[str]
    predicates: List[_Predicate]
    group_by: List[str]


def _default_alias(expression: Expression) -> str:
    columns = expression.columns()
    if len(columns) == 1:
        return columns[0]
    raise SQLParseError(
        "computed SELECT expressions need an explicit alias (use AS)"
    )


def _to_number(text: str):
    return float(text) if "." in text else int(text)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def parse_sql(sql: str, catalog: Catalog) -> Query:
    """Parse a SQL statement of the supported dialect into a :class:`Query`.

    ``catalog`` is consulted only for the column names of the referenced
    tables (to resolve which table each equality predicate talks about).
    """
    statement = _Parser(_tokenize(sql), sql).parse()
    if not statement.tables:
        raise SQLParseError("FROM clause must reference at least one table")

    column_owner: Dict[str, List[str]] = {}
    for table_name in statement.tables:
        table = catalog.get(table_name)
        for name in table.schema.names():
            column_owner.setdefault(name, []).append(table_name)

    def owner_of(operand: _Operand) -> str:
        column = operand.column_name
        qualifier = operand.qualifier
        owners = column_owner.get(column)
        if not owners:
            raise SQLParseError(f"column {column!r} not found in any FROM table")
        if qualifier is not None:
            if qualifier not in statement.tables:
                raise SQLParseError(
                    f"table {qualifier!r} referenced in WHERE is not in FROM"
                )
            if qualifier not in owners:
                raise SQLParseError(
                    f"table {qualifier!r} has no column {column!r}"
                )
            return qualifier
        return owners[0]

    # Partition predicates into join conditions (column = column across
    # tables) and residual filters.
    join_predicates: List[Tuple[str, str, str, str]] = []
    filters: List[_Predicate] = []
    for predicate in statement.predicates:
        if predicate.left.kind == "column":
            owner_of(predicate.left)  # validates existence
        if predicate.right.kind == "column":
            owner_of(predicate.right)
        if (
            predicate.operator == "=="
            and predicate.left.kind == "column"
            and predicate.right.kind == "column"
        ):
            left_column = predicate.left.column_name
            right_column = predicate.right.column_name
            left_table = owner_of(predicate.left)
            right_table = owner_of(predicate.right)
            if left_table != right_table:
                join_predicates.append(
                    (left_table, left_column, right_table, right_column)
                )
                continue
        filters.append(predicate)

    # Join tables in FROM order, picking up applicable join predicates.
    joined = {statement.tables[0]}
    query = Query.scan(statement.tables[0])
    available_columns = set(catalog.get(statement.tables[0]).schema.names())
    remaining = list(join_predicates)
    for table_name in statement.tables[1:]:
        on: List[Tuple[str, str]] = []
        still_remaining = []
        for left_table, left_column, right_table, right_column in remaining:
            if right_table == table_name and left_table in joined:
                on.append((left_column, right_column))
            elif left_table == table_name and right_table in joined:
                on.append((right_column, left_column))
            else:
                still_remaining.append(
                    (left_table, left_column, right_table, right_column)
                )
        remaining = still_remaining
        if not on:
            raise SQLParseError(
                f"no join condition links table {table_name!r} to the "
                "previously joined tables; cross products are not supported"
            )
        query = query.join(Query.scan(table_name), on=on)
        joined.add(table_name)
        new_columns = set(catalog.get(table_name).schema.names())
        dropped = {right for left, right in on if left == right}
        available_columns |= new_columns - dropped
    if remaining:
        raise SQLParseError(
            "some join predicates could not be applied in FROM order; "
            "reorder the FROM clause"
        )

    # Residual filters.
    for predicate in filters:
        query = query.filter(_build_filter(predicate))

    aggregates = [item for item in statement.select if item.aggregate is not None]
    plain = [item for item in statement.select if item.aggregate is None]

    if aggregates:
        keys = statement.group_by or [item.alias for item in plain]
        aggregate_specs = []
        used_names = set(keys)
        for item in aggregates:
            alias = item.alias
            if alias in used_names:
                alias = f"{alias}_agg"
            used_names.add(alias)
            aggregate_specs.append((alias, item.aggregate, item.expression))
        return query.groupby(keys, aggregate_specs)

    if statement.group_by:
        raise SQLParseError("GROUP BY without aggregates is not supported")
    return query.project([(item.alias, item.expression) for item in plain])


def _build_filter(predicate: _Predicate):
    left = (
        col(predicate.left.column_name)
        if predicate.left.kind == "column"
        else const(predicate.left.value)
    )
    right = (
        col(predicate.right.column_name)
        if predicate.right.kind == "column"
        else const(predicate.right.value)
    )
    from repro.db.expressions import Comparison

    return Comparison(predicate.operator, left, right)
