"""Scalar and boolean expressions over annotated rows.

Expressions are small immutable trees evaluated against a row's value
mapping.  Scalar expressions may produce numbers, strings **or provenance
polynomials** (when a referenced cell was instrumented); arithmetic on mixed
number/polynomial operands works because :class:`~repro.provenance.polynomial.Polynomial`
implements the numeric operators.

The public helpers :func:`col` and :func:`const` are the intended entry
points; operators ``+ - * /`` and comparisons ``== != < <= > >=`` on
expression objects build the tree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from numbers import Real
from typing import Callable, Mapping, Tuple

from repro.exceptions import QueryError, UnknownColumnError
from repro.provenance.polynomial import Polynomial


class Expression(ABC):
    """Base class of all scalar expressions."""

    @abstractmethod
    def evaluate(self, row: Mapping[str, object]):
        """Evaluate the expression against ``row`` (a column → value mapping)."""

    @abstractmethod
    def columns(self) -> Tuple[str, ...]:
        """All column names referenced by the expression."""

    # -- operator overloading builds larger expressions -----------------------

    def _coerce(self, other) -> "Expression":
        if isinstance(other, Expression):
            return other
        return Const(other)

    def __add__(self, other) -> "BinaryOp":
        return BinaryOp("+", self, self._coerce(other))

    def __radd__(self, other) -> "BinaryOp":
        return BinaryOp("+", self._coerce(other), self)

    def __sub__(self, other) -> "BinaryOp":
        return BinaryOp("-", self, self._coerce(other))

    def __rsub__(self, other) -> "BinaryOp":
        return BinaryOp("-", self._coerce(other), self)

    def __mul__(self, other) -> "BinaryOp":
        return BinaryOp("*", self, self._coerce(other))

    def __rmul__(self, other) -> "BinaryOp":
        return BinaryOp("*", self._coerce(other), self)

    def __truediv__(self, other) -> "BinaryOp":
        return BinaryOp("/", self, self._coerce(other))

    def __rtruediv__(self, other) -> "BinaryOp":
        return BinaryOp("/", self._coerce(other), self)

    # Comparisons intentionally return Comparison objects (predicates), not bools.
    def __eq__(self, other):  # type: ignore[override]
        return Comparison("==", self, self._coerce(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, self._coerce(other))

    def __lt__(self, other):
        return Comparison("<", self, self._coerce(other))

    def __le__(self, other):
        return Comparison("<=", self, self._coerce(other))

    def __gt__(self, other):
        return Comparison(">", self, self._coerce(other))

    def __ge__(self, other):
        return Comparison(">=", self, self._coerce(other))

    __hash__ = None  # type: ignore[assignment]


@dataclass(frozen=True, eq=False)
class ColumnRef(Expression):
    """A reference to a column of the current row."""

    name: str

    def evaluate(self, row: Mapping[str, object]):
        try:
            return row[self.name]
        except KeyError:
            raise UnknownColumnError(
                f"row has no column {self.name!r}; available: {sorted(row)}"
            ) from None

    def columns(self) -> Tuple[str, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(frozen=True, eq=False)
class Const(Expression):
    """A constant value."""

    value: object

    def evaluate(self, row: Mapping[str, object]):
        return self.value

    def columns(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return f"const({self.value!r})"


_ARITHMETIC: Mapping[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """An arithmetic operation over two sub-expressions."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _ARITHMETIC:
            raise QueryError(f"unsupported arithmetic operator {self.operator!r}")

    def evaluate(self, row: Mapping[str, object]):
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.operator == "/" and isinstance(right, Polynomial):
            raise QueryError("cannot divide by a symbolic (polynomial) value")
        return _ARITHMETIC[self.operator](left, right)

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.columns() + self.right.columns()))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator} {self.right!r})"


class Predicate(ABC):
    """Base class of boolean expressions (filters and join conditions)."""

    @abstractmethod
    def evaluate(self, row: Mapping[str, object]) -> bool:
        """Evaluate the predicate against ``row``."""

    @abstractmethod
    def columns(self) -> Tuple[str, ...]:
        """All column names referenced by the predicate."""

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


_COMPARISONS: Mapping[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, eq=False)
class Comparison(Predicate):
    """A comparison between two scalar expressions."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARISONS:
            raise QueryError(f"unsupported comparison operator {self.operator!r}")

    def evaluate(self, row: Mapping[str, object]) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if isinstance(left, Polynomial) or isinstance(right, Polynomial):
            raise QueryError(
                "cannot compare symbolic (polynomial) values in a predicate; "
                "parameterise only measure columns, not join/filter columns"
            )
        return _COMPARISONS[self.operator](left, right)

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.columns() + self.right.columns()))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator} {self.right!r})"


@dataclass(frozen=True, eq=False)
class And(Predicate):
    """Logical conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.columns() + self.right.columns()))


@dataclass(frozen=True, eq=False)
class Or(Predicate):
    """Logical disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.columns() + self.right.columns()))


@dataclass(frozen=True, eq=False)
class Not(Predicate):
    """Logical negation of a predicate."""

    operand: Predicate

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return not self.operand.evaluate(row)

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns()


def col(name: str) -> ColumnRef:
    """A reference to column ``name`` of the current row."""
    return ColumnRef(name)


def const(value) -> Const:
    """A constant scalar expression."""
    if isinstance(value, Expression):
        raise QueryError("const() expects a plain value, not an expression")
    if not isinstance(value, (Real, str, Polynomial)) and value is not None:
        raise QueryError(f"unsupported constant type: {type(value).__name__}")
    return Const(value)
