"""``cobra`` — a text front-end mirroring the demo's interaction flow.

The published system drives an Angular GUI; this CLI exposes the same
back-end workflow (Figure 4) from the terminal:

* ``cobra demo`` — walk through the Figure 1 running example: show the
  provenance polynomials P1/P2, the Figure 2 tree, compress under a bound
  and compare results (optionally under the "-20% in March" scenario);
* ``cobra telephony`` — the Section 4 scale experiment: generate the large
  telephony provenance, compress under one or more bounds and report sizes
  and assignment speedups;
* ``cobra batch`` — the batch what-if service: evaluate a whole sweep of
  scenarios against the telephony provenance in one vectorised pass,
  optionally comparing against the compressed provenance and the sequential
  per-scenario path;
* ``cobra sweep`` — evaluate a declarative scenario plan (a parameter grid
  or Monte Carlo sample, specified as JSON) with shared-delta factoring:
  the sweep's common operation prefix is evaluated once and only small
  per-scenario residual deltas hit the kernels;
* ``cobra tpch`` — run the reproduced TPC-H queries and compress each one;
* ``cobra compress`` — the generic entry point: read provenance (JSON) and a
  tree (JSON) from disk, compress under a bound and write the result;
* ``cobra compile`` — compile provenance once and persist the compiled form
  as a zero-copy mmap-able store file that ``cobra batch --store`` (and any
  other process) opens in O(header) time.

Every subcommand prints the numbers the demo shows its audience: provenance
size before/after, the chosen cut, number of variables, assignment speedup
and the drift of the analysis results.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.abstraction_tree import AbstractionTree
from repro.engine.scenario import Scenario
from repro.engine.session import CobraSession
from repro.provenance.backends import SEMIRING_BACKEND_NAMES, resolve_backend
from repro.provenance.serialization import (
    load_provenance_set,
    provenance_set_to_dict,
)
from repro.workloads.abstraction_trees import plans_tree
from repro.workloads.telephony import (
    TelephonyConfig,
    example2_provenance,
    generate_revenue_provenance,
    telephony_scenario_sweep,
)
from repro.workloads.tpch import TpchConfig, generate_tpch_catalog
from repro.workloads.tpch_queries import all_tpch_queries


def _print(text: str = "") -> None:
    sys.stdout.write(text + "\n")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def run_demo(args: argparse.Namespace) -> int:
    """The Figure 1 / Example 2 walk-through."""
    provenance = example2_provenance()
    tree = plans_tree()
    backend = resolve_backend(getattr(args, "semiring", None))

    _print("== COBRA demo: the telephony running example ==")
    if backend.name != "real":
        _print(f"   (evaluating in the {backend.name} semiring)")
    _print()
    _print("Provenance polynomials (Example 2):")
    for key, polynomial in provenance.items():
        _print(f"  zip {key[0]}: {polynomial.to_text()}")
    _print()
    _print("Abstraction tree (Figure 2):")
    _print(tree.to_ascii())
    _print()

    session = CobraSession(provenance, semiring=backend)
    session.set_abstraction_trees(tree)
    session.set_bound(args.bound)
    result = session.compress(keep_trace=True)

    _print(f"Bound: {args.bound}")
    _print(f"Chosen cut: {sorted(result.cut.nodes)}")
    _print(
        f"Provenance size: {result.compression.original_size} -> "
        f"{result.achieved_size} monomials"
    )
    _print(
        f"Variables: {result.compression.original_variables} -> "
        f"{result.num_variables}"
    )
    _print()

    _print("Meta-variable panel (defaults are member averages):")
    for row in session.meta_variable_panel():
        default = (
            f"{row.default_value:g}"
            if backend.name == "real"
            else backend.format_value(row.default_value)
        )
        _print(f"  {row.name:<10} members={list(row.members)} default={default}")
    _print()

    if backend.name in ("real", "tropical"):
        scenario = Scenario(
            "March discount", "decrease all prices by 20% in March"
        ).scale(lambda name: name == "m3", 0.8)
        _print("Scenario: decrease the ppm of all plans by 20% in March (m3 x 0.8)")
    else:
        # Multiplicative discounts are meaningless for set-like semirings;
        # the classic what-if there is deletion: drop the March tuples.
        scenario = Scenario(
            "March deleted", "what if the March price rows were not there?"
        ).set_value(lambda name: name == "m3", 0)
        _print("Scenario: delete the March price tuples (m3 := 0)")
    report = session.assign_scenario(scenario)
    _print(report.render_text())
    return 0


def run_telephony(args: argparse.Namespace) -> int:
    """The Section 4 scale experiment."""
    config = TelephonyConfig(
        num_customers=args.customers,
        num_zips=args.zips,
        months=tuple(range(1, args.months + 1)),
    )
    _print(
        f"Generating telephony provenance: {config.num_zips} zips x "
        f"{len(config.plans)} plans x {len(config.months)} months "
        f"({config.num_customers} customers)..."
    )
    provenance = generate_revenue_provenance(config)
    _print(f"Full provenance size: {provenance.size()} monomials")
    _print()

    session = CobraSession(provenance)
    session.set_abstraction_trees(plans_tree())
    # With --strategy incremental the whole bound sweep shares one cached
    # coarsening trajectory (compress once, then sweep).
    for bound in args.bounds:
        session.set_bound(bound)
        result = session.compress(method=args.strategy)
        report = session.assign()
        _print(
            f"bound {bound:>8}: size {result.achieved_size:>8}  "
            f"cut {sorted(result.cut.nodes)}  "
            f"speedup {report.speedup_fraction:.0%}"
        )
    return 0


def run_tpch(args: argparse.Namespace) -> int:
    """Compress the provenance of the reproduced TPC-H queries."""
    config = TpchConfig(scale=args.scale)
    _print(f"Generating TPC-H-style data at scale {args.scale}...")
    catalog = generate_tpch_catalog(config)
    _print(
        "  "
        + ", ".join(f"{table.name}: {len(table)} rows" for table in catalog)
    )
    _print()
    for item in all_tpch_queries(catalog):
        session = CobraSession(item.provenance)
        session.set_abstraction_trees(item.trees)
        full_size = item.provenance.size()
        bound = max(1, int(full_size * args.ratio))
        session.set_bound(bound)
        result = session.compress(allow_infeasible=True)
        _print(
            f"{item.name:<4} size {full_size:>6} -> {result.achieved_size:>6} "
            f"(bound {bound}, feasible={result.feasible})  "
            f"vars {result.compression.original_variables} -> "
            f"{result.num_variables}"
        )
    return 0


def _install_fault_plan(raw) -> int:
    """Arm a ``--fault-plan`` (inline JSON or a path to JSON); 0 on success.

    The same spec shape as the ``COBRA_FAULTS`` environment variable; the
    plan stays armed for the rest of the process, which for a CLI run is
    exactly the command being executed.
    """
    if not raw:
        return 0
    from repro.resilience import FaultPlanError, install_plan, plan_from_spec

    try:
        text = raw if raw.strip().startswith("{") else Path(raw).read_text()
        plan = plan_from_spec(json.loads(text))
    except (OSError, json.JSONDecodeError, FaultPlanError) as exc:
        _print(f"cobra: invalid --fault-plan: {exc}")
        return 1
    install_plan(plan)
    specs = ", ".join(
        f"{spec.site}:{spec.kind}" for spec in plan.specs
    )
    _print(f"fault injection armed (seed {plan.seed}): {specs}")
    return 0


def _print_resilience_summary() -> None:
    """One line of resilience counters, only when something degraded."""
    from repro.obs.metrics import get_registry

    counters = get_registry().snapshot_prefix("resilience.").get("counters", {})
    interesting = {
        name: value
        for name, value in counters.items()
        if value and not name.startswith("resilience.injected_faults")
    }
    if interesting:
        _print(
            "resilience: "
            + ", ".join(
                f"{name[len('resilience.'):]}={value}"
                for name, value in sorted(interesting.items())
            )
        )


def run_batch(args: argparse.Namespace) -> int:
    """Vectorised multi-scenario what-if evaluation over the telephony workload."""
    from repro.batch import BatchEvaluator
    from repro.utils.timing import Timer

    if _install_fault_plan(getattr(args, "fault_plan", None)):
        return 1
    config = TelephonyConfig(
        num_customers=args.customers,
        num_zips=args.zips,
        months=tuple(range(1, args.months + 1)),
    )
    _print(
        f"Generating telephony provenance: {config.num_zips} zips x "
        f"{len(config.plans)} plans x {len(config.months)} months..."
    )
    provenance = generate_revenue_provenance(config)
    scenarios = telephony_scenario_sweep(args.scenarios, months=config.months)
    _print(
        f"Provenance: {provenance.size()} monomials, "
        f"{provenance.num_variables()} variables; sweep: {len(scenarios)} scenarios"
    )

    session = CobraSession(provenance)
    if args.bound is not None:
        session.set_abstraction_trees(plans_tree())
        session.set_bound(args.bound)
        session.compress(method=args.strategy)
        _print(
            f"Compressed under bound {args.bound}: "
            f"{session.compressed_provenance.size()} monomials"
        )

    evaluator = BatchEvaluator(max_workers=args.workers)
    if getattr(args, "store", None):
        from repro.exceptions import SerializationError, SessionStateError

        try:
            # The session validates backend + fingerprint; the explicit
            # evaluator then adopts the same mapped arrays so sharding ships
            # the store path, not a pickled compiled set.
            mapped = session.open_from_store(args.store)
            evaluator.adopt_store(args.store)
        except (SerializationError, SessionStateError) as exc:
            _print(f"cobra batch: cannot use compiled store: {exc}")
            return 1
        _print(
            f"Using compiled store {args.store} "
            f"({mapped.size()} monomials, mmap-backed)"
        )
    _print()

    with Timer() as timer:
        report = session.evaluate_many(
            scenarios,
            evaluator=evaluator,
            mode=args.mode,
            processes=args.processes,
        )
    evaluator.close()
    per_scenario = timer.elapsed / max(1, len(scenarios))
    _print(report.render_text(max_rows=args.top))
    _print()
    _print(
        f"batch evaluation ({report.mode}): {timer.elapsed * 1e3:.1f} ms total "
        f"({per_scenario * 1e6:.0f} us/scenario)"
    )
    _print_resilience_summary()

    if args.compare_sequential:
        base = session.base_valuation
        variables = provenance.variables()
        with Timer() as sequential_timer:
            for scenario in scenarios:
                valuation = scenario.apply(base, variables)
                provenance.evaluate(valuation)
        ratio = sequential_timer.elapsed / max(timer.elapsed, 1e-12)
        _print(
            f"sequential Scenario.apply + evaluate: "
            f"{sequential_timer.elapsed * 1e3:.1f} ms total — "
            f"batch is {ratio:.1f}x faster"
        )

    if args.json:
        summary = report.summary()
        summary["batch_seconds"] = timer.elapsed
        Path(args.json).write_text(json.dumps(summary, indent=2))
        _print(f"summary written to {args.json}")
    return 0


def _default_sweep_spec(config: TelephonyConfig) -> dict:
    """The built-in `cobra sweep` plan: a plan-wide price cut crossed with
    per-month factors — the structured-sweep shape shared-delta factoring is
    built for (every point shares the plan-variable prefix)."""
    from repro.workloads.abstraction_trees import PLAN_VARIABLES

    months = [f"m{month}" for month in config.months[-2:]]
    axes = [
        {"op": "scale", "variables": [months[0]],
         "values": [0.8, 0.9, 1.0, 1.1, 1.2]},
    ]
    if len(months) > 1:
        axes.append(
            {"op": "scale", "variables": [months[1]],
             "values": [0.9, 1.0, 1.1]}
        )
    return {
        "type": "grid",
        "name": "telephony-sweep",
        "base": [
            {
                "op": "scale",
                "variables": sorted(PLAN_VARIABLES.values()),
                "amount": 0.95,
            }
        ],
        "axes": axes,
    }


def run_sweep(args: argparse.Namespace) -> int:
    """Evaluate a declarative scenario plan (grid / Monte Carlo sample)."""
    from repro.batch import BatchEvaluator
    from repro.engine.plan import plan_from_spec
    from repro.exceptions import ScenarioError
    from repro.obs.metrics import get_registry
    from repro.utils.timing import Timer

    if _install_fault_plan(getattr(args, "fault_plan", None)):
        return 1
    if args.plan and args.plan_json:
        _print("cobra sweep: pass --plan or --plan-json, not both")
        return 1
    if args.input:
        provenance = load_provenance_set(args.input)
        config = None
        source = args.input
    else:
        config = TelephonyConfig(
            num_customers=args.customers,
            num_zips=args.zips,
            months=tuple(range(1, args.months + 1)),
        )
        provenance = generate_revenue_provenance(config)
        source = (
            f"telephony ({args.customers} customers, {args.zips} zips, "
            f"{args.months} months)"
        )

    try:
        if args.plan:
            spec = json.loads(Path(args.plan).read_text())
        elif args.plan_json:
            spec = json.loads(args.plan_json)
        else:
            if config is None:
                _print(
                    "cobra sweep: --input needs an explicit plan "
                    "(--plan/--plan-json); the default plan targets the "
                    "telephony workload"
                )
                return 1
            spec = _default_sweep_spec(config)
        plan = plan_from_spec(spec)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError,
            ScenarioError) as exc:
        _print(f"cobra sweep: invalid plan spec: {exc}")
        return 1

    _print(
        f"Provenance: {source} — {provenance.size()} monomials, "
        f"{provenance.num_variables()} variables"
    )
    _print(f"Plan: {json.dumps(plan.describe())}")

    session = CobraSession(provenance)
    if args.bound is not None:
        session.set_abstraction_trees(plans_tree())
        session.set_bound(args.bound)
        session.compress(method=args.strategy)
        _print(
            f"Compressed under bound {args.bound}: "
            f"{session.compressed_provenance.size()} monomials"
        )
    _print()

    registry = get_registry()
    before = registry.snapshot()
    evaluator = BatchEvaluator()
    with Timer() as timer:
        report = session.evaluate_plan(
            plan,
            evaluator=evaluator,
            mode=args.mode,
            processes=args.processes,
        )
    evaluator.close()
    delta = registry.diff(before, registry.snapshot())
    counters = delta.get("counters", {})

    _print(report.render_text(max_rows=args.top))
    _print()
    per_scenario = timer.elapsed / max(1, len(plan))
    _print(
        f"plan evaluation ({report.mode}): {timer.elapsed * 1e3:.1f} ms total "
        f"({per_scenario * 1e6:.0f} us/scenario)"
    )
    prefix_cells = counters.get("batch.factored.prefix_cells", 0)
    residual_cells = counters.get("batch.factored.residual_cells", 0)
    hits = counters.get("batch.factored.auto_hits", 0)
    misses = counters.get("batch.factored.auto_misses", 0)
    if hits or misses:
        _print(
            f"factoring: {hits}/{hits + misses} chunks factored, "
            f"prefix cells {prefix_cells}, residual cells {residual_cells}"
        )
    _print_resilience_summary()

    if args.json:
        summary = report.summary()
        summary["plan"] = plan.describe()
        summary["plan_seconds"] = timer.elapsed
        summary["factored_chunks"] = hits
        summary["prefix_cells"] = prefix_cells
        summary["residual_cells"] = residual_cells
        Path(args.json).write_text(json.dumps(summary, indent=2))
        _print(f"summary written to {args.json}")
    return 0


def run_whatif(args: argparse.Namespace) -> int:
    """End-to-end what-if reasoning in any semiring backend.

    Picks the workload the chosen semiring is made for: min-cost call
    routing for ``tropical`` (and ``real``, where the same provenance sums
    costs), tuple-deletion/access-control on TPC-H for ``bool``, and
    witness/lineage analysis of the running example for ``why``/``lineage``.
    """
    from repro.workloads.routing import (
        RoutingConfig,
        generate_routing_provenance,
        routing_base_costs,
        routing_scenario_sweep,
        trunk_group_tree,
    )
    from repro.workloads.tpch_queries import (
        tpch_deletion_provenance,
        tpch_deletion_scenarios,
    )

    backend = resolve_backend(args.semiring)
    base_valuation = None
    if backend.name in ("real", "tropical"):
        config = RoutingConfig()
        provenance = generate_routing_provenance(config)
        trees = trunk_group_tree(config)
        scenarios = routing_scenario_sweep(args.scenarios, config)
        base_valuation = routing_base_costs(config).as_dict()
        workload = "min-cost call routing (trunk costs per route)"
    elif backend.name == "bool":
        catalog = generate_tpch_catalog(TpchConfig(scale=args.scale))
        item = tpch_deletion_provenance(catalog)
        provenance, trees = item.provenance, item.trees
        scenarios = tpch_deletion_scenarios(catalog, args.scenarios)
        workload = "TPC-H segment revenue under customer deletions"
    else:
        provenance = example2_provenance()
        trees = plans_tree()
        deletable = sorted(provenance.variables())
        scenarios = [
            Scenario(f"#{i} delete {name}").set_value([name], 0)
            for i, name in enumerate(deletable[: args.scenarios])
        ]
        workload = "witness analysis of the running example (tuple deletions)"

    _print(f"== what-if analysis in the {backend.name} semiring ==")
    _print(f"workload: {workload}")
    _print(
        f"provenance: {provenance.size()} monomials, "
        f"{provenance.num_variables()} variables, {len(provenance)} groups"
    )
    _print()

    session = CobraSession(provenance, base_valuation, semiring=backend)
    initial = session.initial_results()
    _print("initial results (identity valuation):")
    for key, value in list(initial.items())[: args.top]:
        _print(f"  {', '.join(map(str, key)):<20} {backend.format_value(value, 40)}")
    if len(initial) > args.top:
        _print(f"  ... ({len(initial) - args.top} more groups)")
    _print()

    session.set_abstraction_trees(trees)
    bound = args.bound if args.bound is not None else max(1, provenance.size() // 2)
    session.set_bound(bound)
    result = session.compress(allow_infeasible=True)
    _print(
        f"compressed under bound {bound}: {result.achieved_size} monomials, "
        f"{result.num_variables} variables (feasible={result.feasible})"
    )
    _print()

    report = session.evaluate_many(
        scenarios, mode=args.mode, processes=args.processes
    )
    _print(report.render_text(max_rows=args.top))
    _print()
    first = session.assign_scenario(scenarios[0], measure_assignment_speedup=False)
    _print(f"scenario detail: {scenarios[0].name}")
    _print(first.render_text(max_groups=args.top))
    return 0


def run_stats(args: argparse.Namespace) -> int:
    """Describe a provenance JSON file and/or a dumped runtime trace."""
    if not args.input and not args.runtime:
        _print("cobra stats: provide --input and/or --runtime")
        return 1

    if args.input:
        from repro.core.optimizer import compute_size_profile
        from repro.provenance.statistics import describe_provenance

        provenance = load_provenance_set(args.input)
        statistics = describe_provenance(provenance)
        _print("== provenance statistics ==")
        _print(statistics.render_text())

        if args.tree:
            tree = AbstractionTree.from_dict(
                json.loads(Path(args.tree).read_text())
            )
            profile = compute_size_profile(provenance, tree)
            _print("")
            _print(f"== size profile for tree rooted at {tree.root!r} ==")
            _print(f"{'variables':>10} {'min size':>10}")
            for cardinality in sorted(profile):
                _print(f"{cardinality:>10} {profile[cardinality]:>10}")

    if args.runtime:
        from repro.obs import aggregate_stages, load_trace, render_stage_table

        document = load_trace(args.runtime)
        if args.input:
            _print("")
        _print(f"== runtime stage profile ({args.runtime}) ==")
        _print(render_stage_table(aggregate_stages(document["spans"])))
        counters = document.get("metrics", {}).get("counters", {})
        if counters:
            _print("")
            _print("counters:")
            for name in sorted(counters):
                _print(f"  {name:<40} {counters[name]}")
    return 0


def run_compress(args: argparse.Namespace) -> int:
    """Generic compression of provenance + tree read from JSON files."""
    provenance = load_provenance_set(args.input)
    tree = AbstractionTree.from_dict(json.loads(Path(args.tree).read_text()))

    session = CobraSession(provenance)
    session.set_abstraction_trees(tree)
    session.set_bound(args.bound)
    result = session.compress(
        method=args.strategy, allow_infeasible=args.allow_infeasible
    )

    resolved = result.strategy or result.algorithm
    _print(f"strategy: {args.strategy} -> {resolved} (algorithm: {result.algorithm})")
    _print(f"cut: {sorted(result.cut.nodes) if result.cut else None}")
    _print(
        f"size: {result.compression.original_size} -> {result.achieved_size} "
        f"(bound {args.bound}, feasible={result.feasible})"
    )
    _print(
        f"variables: {result.compression.original_variables} -> "
        f"{result.num_variables}"
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(provenance_set_to_dict(result.compressed))
        )
        _print(f"compressed provenance written to {args.output}")
    if args.summary:
        summary = dict(result.summary())
        summary["abstraction"] = result.abstraction.to_dict()
        Path(args.summary).write_text(json.dumps(summary, indent=2))
        _print(f"compression summary written to {args.summary}")
    return 0


def run_compile(args: argparse.Namespace) -> int:
    """Compile provenance once and persist it as a mmap-able store file."""
    from repro.provenance.store import read_store_header
    from repro.utils.timing import Timer

    if args.input:
        provenance = load_provenance_set(args.input)
        source = args.input
    else:
        config = TelephonyConfig(
            num_customers=args.customers,
            num_zips=args.zips,
            months=tuple(range(1, args.months + 1)),
        )
        provenance = generate_revenue_provenance(config)
        source = (
            f"telephony ({args.customers} customers, {args.zips} zips, "
            f"{args.months} months)"
        )

    session = CobraSession(provenance, semiring=args.semiring)
    _print(
        f"Compiling {source}: {provenance.size()} monomials, "
        f"{provenance.num_variables()} variables, {len(provenance)} groups"
    )
    with Timer() as timer:
        compiled = session.compile_to_store(args.output)
    header = read_store_header(args.output)
    size_bytes = Path(args.output).stat().st_size
    _print(
        f"Compiled in {timer.elapsed * 1000:.1f} ms "
        f"(backend={compiled.backend_name})"
    )
    _print(
        f"Store written to {args.output} "
        f"({size_bytes / 1e6:.2f} MB, fingerprint {header['fingerprint'][:16]})"
    )
    _print(
        "Open it from any process with `cobra batch --store "
        f"{args.output}` or `open_store({args.output!r})`."
    )
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


#: Compression strategies the CLI exposes (``session.compress(method=...)``):
#: ``incremental`` is the kernel-backed greedy with trajectory reuse across
#: bound sweeps, ``legacy`` the full-rescan greedy baseline; ``greedy`` /
#: ``dp`` / ``exact`` force the respective algorithms (``greedy`` picks its
#: engine automatically); ``auto`` picks per instance.
_STRATEGY_CHOICES = ("auto", "incremental", "legacy", "greedy", "dp", "exact")


def _add_semiring_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--semiring",
        choices=SEMIRING_BACKEND_NAMES,
        default="real",
        help="evaluation backend / semiring (default: real, the float pipeline)",
    )


def _add_batch_mode_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|PATH",
        help="arm deterministic fault injection for this run: inline JSON or "
        "a path to a JSON fault plan (same shape as COBRA_FAULTS); the "
        "report's degradation summary shows what was recovered",
    )
    parser.add_argument(
        "--mode",
        choices=("auto", "dense", "sparse", "factored"),
        default="auto",
        help="evaluation pipeline: dense matrix, sparse baseline-once deltas, "
        "factored shared-prefix deltas, or auto-select by touched-variable "
        "fraction and prefix sharing (default: auto)",
    )
    parser.add_argument(
        "--processes",
        type=_positive_int,
        default=None,
        help="shard scenario rows across this many worker processes "
        "(default: evaluate in-process)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="record a span trace of the run and print it as a tree",
    )
    parser.add_argument(
        "--trace-json", metavar="PATH",
        help="record a span trace and write it (with the metric counters) "
        "as JSON; inspect it later with `cobra stats --runtime PATH`",
    )


def _add_strategy_argument(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--strategy",
        choices=_STRATEGY_CHOICES,
        default=default,
        help=f"abstraction-selection strategy (default: {default})",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``cobra`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="cobra",
        description="COBRA: compression via abstraction of provenance "
        "for hypothetical reasoning (ICDE 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")

    demo = subparsers.add_parser("demo", help="run the Figure 1 running example")
    demo.add_argument("--bound", type=int, default=4, help="monomial bound")
    _add_semiring_argument(demo)
    _add_trace_arguments(demo)
    demo.set_defaults(func=run_demo)

    whatif = subparsers.add_parser(
        "whatif",
        help="end-to-end what-if reasoning in any semiring backend "
        "(tropical routing costs, Boolean deletions, Why witnesses, ...)",
    )
    _add_semiring_argument(whatif)
    whatif.add_argument("--scenarios", type=_positive_int, default=12, help="sweep size")
    whatif.add_argument(
        "--bound", type=int, default=None,
        help="monomial bound (default: half the provenance size)",
    )
    whatif.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor (bool backend's workload)",
    )
    whatif.add_argument("--top", type=int, default=8, help="rows to print")
    _add_batch_mode_arguments(whatif)
    _add_trace_arguments(whatif)
    whatif.set_defaults(func=run_whatif)

    telephony = subparsers.add_parser(
        "telephony", help="run the Section 4 scale experiment"
    )
    telephony.add_argument("--customers", type=int, default=50_000)
    telephony.add_argument("--zips", type=int, default=1_055)
    telephony.add_argument("--months", type=int, default=12)
    telephony.add_argument(
        "--bounds",
        type=int,
        nargs="+",
        default=[94_600, 38_600],
        help="monomial bounds to try (paper: 94600 and 38600)",
    )
    _add_strategy_argument(telephony, default="auto")
    _add_trace_arguments(telephony)
    telephony.set_defaults(func=run_telephony)

    batch = subparsers.add_parser(
        "batch",
        help="evaluate a whole what-if scenario sweep in one vectorised batch",
    )
    batch.add_argument("--scenarios", type=int, default=100, help="sweep size")
    batch.add_argument("--customers", type=_positive_int, default=5_000)
    batch.add_argument("--zips", type=_positive_int, default=100)
    batch.add_argument("--months", type=_positive_int, default=12)
    batch.add_argument(
        "--bound", type=int, default=None,
        help="also compress under this bound and report abstraction error",
    )
    batch.add_argument(
        "--workers", type=_positive_int, default=None,
        help="thread-pool size for chunked mega-batches (default: serial)",
    )
    _add_batch_mode_arguments(batch)
    batch.add_argument("--top", type=int, default=10, help="rows to print")
    batch.add_argument(
        "--compare-sequential", action="store_true",
        help="also time the sequential per-scenario path and print the speedup",
    )
    batch.add_argument("--json", help="where to write a JSON summary")
    batch.add_argument(
        "--store", metavar="PATH",
        help="open a compiled store written by `cobra compile` instead of "
        "recompiling; worker processes mmap it instead of unpickling",
    )
    _add_strategy_argument(batch, default="auto")
    _add_trace_arguments(batch)
    batch.set_defaults(func=run_batch)

    sweep = subparsers.add_parser(
        "sweep",
        help="evaluate a declarative scenario plan (grid / Monte Carlo "
        "sample as JSON) with shared-delta factoring",
    )
    sweep.add_argument(
        "--plan", metavar="PATH",
        help="plan spec JSON file (see repro.engine.plan.plan_from_spec)",
    )
    sweep.add_argument(
        "--plan-json", metavar="JSON",
        help="plan spec as an inline JSON string",
    )
    sweep.add_argument(
        "--input", metavar="PATH",
        help="provenance JSON file (default: generate the telephony workload)",
    )
    sweep.add_argument("--customers", type=_positive_int, default=5_000)
    sweep.add_argument("--zips", type=_positive_int, default=100)
    sweep.add_argument("--months", type=_positive_int, default=12)
    sweep.add_argument(
        "--bound", type=int, default=None,
        help="also compress under this bound and report abstraction error",
    )
    _add_batch_mode_arguments(sweep)
    sweep.add_argument("--top", type=int, default=10, help="rows to print")
    sweep.add_argument("--json", help="where to write a JSON summary")
    _add_strategy_argument(sweep, default="auto")
    _add_trace_arguments(sweep)
    sweep.set_defaults(func=run_sweep)

    tpch = subparsers.add_parser("tpch", help="run the TPC-H workload")
    tpch.add_argument("--scale", type=float, default=0.001)
    tpch.add_argument(
        "--ratio", type=float, default=0.5,
        help="bound as a fraction of the full provenance size",
    )
    tpch.set_defaults(func=run_tpch)

    stats = subparsers.add_parser(
        "stats", help="describe a provenance JSON file (and its size profile)"
    )
    stats.add_argument("--input", help="provenance JSON file")
    stats.add_argument("--tree", help="optional tree JSON file for the size profile")
    stats.add_argument(
        "--runtime", metavar="PATH",
        help="trace JSON written by --trace-json; print its per-stage "
        "runtime profile and metric counters",
    )
    stats.set_defaults(func=run_stats)

    compress = subparsers.add_parser(
        "compress", help="compress provenance JSON under a tree and bound"
    )
    compress.add_argument("--input", required=True, help="provenance JSON file")
    compress.add_argument("--tree", required=True, help="tree JSON file")
    compress.add_argument("--bound", type=int, required=True)
    compress.add_argument("--output", help="where to write the compressed provenance")
    compress.add_argument(
        "--summary",
        help="where to write a JSON summary (sizes, chosen cut, abstraction groups)",
    )
    compress.add_argument("--allow-infeasible", action="store_true")
    _add_strategy_argument(compress, default="auto")
    _add_trace_arguments(compress)
    compress.set_defaults(func=run_compress)

    compile_cmd = subparsers.add_parser(
        "compile",
        help="compile provenance once and persist it as a mmap-able store",
    )
    compile_cmd.add_argument(
        "--input",
        help="provenance JSON file (default: generate the telephony workload)",
    )
    compile_cmd.add_argument("--customers", type=_positive_int, default=5_000)
    compile_cmd.add_argument("--zips", type=_positive_int, default=100)
    compile_cmd.add_argument("--months", type=_positive_int, default=12)
    compile_cmd.add_argument(
        "--semiring",
        choices=("real", "tropical", "bool"),
        default="real",
        help="compiled backend to persist (default: real)",
    )
    compile_cmd.add_argument(
        "--output", required=True, help="where to write the store file"
    )
    _add_trace_arguments(compile_cmd)
    compile_cmd.set_defaults(func=run_compile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``cobra`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 1
    if not (getattr(args, "trace", False) or getattr(args, "trace_json", None)):
        return args.func(args)

    from repro.obs import (
        disable_tracing,
        enable_tracing,
        get_registry,
        get_tracer,
        render_span_tree,
        write_trace,
    )

    enable_tracing()
    try:
        status = args.func(args)
    finally:
        spans = get_tracer().drain()
        metrics = get_registry().snapshot()
        disable_tracing()
    if getattr(args, "trace", False):
        _print()
        _print("== trace ==")
        _print(render_span_tree(spans))
    if getattr(args, "trace_json", None):
        write_trace(args.trace_json, spans, metrics)
        _print(f"trace written to {args.trace_json}")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
