"""The command-line front-end of the COBRA reproduction."""

from repro.cli.main import main

__all__ = ["main"]
