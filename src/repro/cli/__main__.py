"""Allow ``python -m repro.cli <subcommand>`` as an entry point."""

from repro.cli.main import main

raise SystemExit(main())
