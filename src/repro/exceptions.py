"""Exception hierarchy for the COBRA reproduction.

Every error raised intentionally by this package derives from
:class:`CobraError`, so callers can catch a single exception type at API
boundaries.  Sub-hierarchies mirror the package layout: provenance-level
errors, database-engine errors, abstraction/compression errors, and
engine/session errors.
"""

from __future__ import annotations


class CobraError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Provenance layer
# ---------------------------------------------------------------------------


class ProvenanceError(CobraError):
    """Base class for errors in the provenance substrate."""


class InvalidVariableNameError(ProvenanceError):
    """Raised when a provenance variable name is empty or malformed."""


class InvalidMonomialError(ProvenanceError):
    """Raised when constructing a monomial from invalid exponents."""


class InvalidPolynomialError(ProvenanceError):
    """Raised when constructing a polynomial from invalid terms."""


class PolynomialParseError(ProvenanceError):
    """Raised when a textual polynomial cannot be parsed."""


class MissingValuationError(ProvenanceError):
    """Raised when evaluating a polynomial under an incomplete valuation."""

    def __init__(self, missing):
        self.missing = tuple(sorted(missing))
        super().__init__(
            "valuation does not cover variables: " + ", ".join(self.missing)
        )


class SemiringError(ProvenanceError):
    """Raised for misuse of the semiring framework."""


class SerializationError(ProvenanceError):
    """Raised when a persisted provenance file is malformed or has an
    unsupported format version."""


# ---------------------------------------------------------------------------
# Database engine
# ---------------------------------------------------------------------------


class DatabaseError(CobraError):
    """Base class for errors in the in-memory database engine."""


class SchemaError(DatabaseError):
    """Raised when a schema definition or a row violates the schema."""


class UnknownTableError(DatabaseError):
    """Raised when referencing a table that is not in the catalog."""


class UnknownColumnError(DatabaseError):
    """Raised when referencing a column that does not exist."""


class QueryError(DatabaseError):
    """Raised when a logical query is malformed."""


class SQLParseError(DatabaseError):
    """Raised when the miniature SQL dialect cannot parse a statement."""


# ---------------------------------------------------------------------------
# Abstraction / compression core
# ---------------------------------------------------------------------------


class AbstractionError(CobraError):
    """Base class for abstraction-tree and compression errors."""


class InvalidTreeError(AbstractionError):
    """Raised when an abstraction tree is structurally invalid."""


class InvalidCutError(AbstractionError):
    """Raised when a set of nodes is not a valid cut of the tree."""


class InfeasibleBoundError(AbstractionError):
    """Raised when no cut can satisfy the requested size bound."""

    def __init__(self, bound, best_achievable):
        self.bound = bound
        self.best_achievable = best_achievable
        super().__init__(
            f"no abstraction satisfies bound {bound}; the coarsest "
            f"abstraction still has {best_achievable} monomials"
        )


class UnsupportedPolynomialError(AbstractionError):
    """Raised when the exact optimizer's preconditions do not hold.

    The single-tree dynamic program requires every monomial to contain at
    most one variable from the abstraction tree (the setting described in
    the demo paper).  Polynomials that violate this precondition can still
    be compressed with :mod:`repro.core.greedy`.
    """


# ---------------------------------------------------------------------------
# Engine / session layer
# ---------------------------------------------------------------------------


class EngineError(CobraError):
    """Base class for errors in the COBRA session engine."""


class SessionStateError(EngineError):
    """Raised when session operations are invoked out of order."""


class ScenarioError(EngineError):
    """Raised when a hypothetical scenario is malformed."""
