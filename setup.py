"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e .`` without the ``wheel``
package available, e.g. on air-gapped machines) keep working.
"""

from setuptools import setup

setup()
