"""Property-based tests of the polynomial algebra (hypothesis).

The provenance polynomial layer must behave as a commutative semiring (in
fact a commutative ring once negative coefficients are allowed) and its
rename operation must commute with evaluation.  These are the invariants
everything above (compression, valuation, the engine) relies on.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial

VARIABLE_NAMES = ["x", "y", "z", "w", "v"]


@st.composite
def monomials(draw, max_degree=3):
    variables = draw(
        st.dictionaries(
            st.sampled_from(VARIABLE_NAMES),
            st.integers(min_value=1, max_value=max_degree),
            max_size=3,
        )
    )
    return Monomial(variables)


@st.composite
def polynomials(draw, max_terms=6):
    terms = draw(
        st.dictionaries(
            monomials(),
            st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
            max_size=max_terms,
        )
    )
    return Polynomial(terms)


@st.composite
def valuations(draw):
    return {
        name: draw(
            st.floats(min_value=-3, max_value=3, allow_nan=False, allow_infinity=False)
        )
        for name in VARIABLE_NAMES
    }


@st.composite
def renamings(draw):
    targets = VARIABLE_NAMES + ["g1", "g2"]
    return {
        name: draw(st.sampled_from(targets))
        for name in draw(st.sets(st.sampled_from(VARIABLE_NAMES), max_size=5))
    }


class TestRingAxioms:
    @given(polynomials(), polynomials())
    def test_addition_commutes(self, p, q):
        assert p + q == q + p

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associates(self, p, q, r):
        assert ((p + q) + r).almost_equal(p + (q + r), tolerance=1e-6)

    @given(polynomials())
    def test_zero_is_additive_identity(self, p):
        assert p + Polynomial.zero() == p

    @given(polynomials())
    def test_additive_inverse(self, p):
        assert (p + (-p)).is_zero()

    @given(polynomials(), polynomials())
    def test_multiplication_commutes(self, p, q):
        assert (p * q).almost_equal(q * p, tolerance=1e-6)

    @settings(max_examples=30)
    @given(polynomials(max_terms=4), polynomials(max_terms=4), polynomials(max_terms=4))
    def test_multiplication_associates(self, p, q, r):
        assert ((p * q) * r).almost_equal(p * (q * r), tolerance=1e-4)

    @given(polynomials())
    def test_one_is_multiplicative_identity(self, p):
        assert p * Polynomial.one() == p

    @given(polynomials())
    def test_zero_annihilates(self, p):
        assert (p * Polynomial.zero()).is_zero()

    @settings(max_examples=40)
    @given(polynomials(max_terms=4), polynomials(max_terms=4), polynomials(max_terms=4))
    def test_distributivity(self, p, q, r):
        assert (p * (q + r)).almost_equal(p * q + p * r, tolerance=1e-4)


class TestEvaluationHomomorphism:
    @given(polynomials(), polynomials(), valuations())
    def test_evaluation_of_sum(self, p, q, valuation):
        left = (p + q).evaluate(valuation)
        right = p.evaluate(valuation) + q.evaluate(valuation)
        assert left == pytest.approx(right, rel=1e-6, abs=1e-6)

    @settings(max_examples=40)
    @given(polynomials(max_terms=4), polynomials(max_terms=4), valuations())
    def test_evaluation_of_product(self, p, q, valuation):
        left = (p * q).evaluate(valuation)
        right = p.evaluate(valuation) * q.evaluate(valuation)
        assert left == pytest.approx(right, rel=1e-5, abs=1e-5)

    @given(polynomials(), valuations())
    def test_substitute_all_matches_evaluate(self, p, valuation):
        assert p.substitute(valuation).constant_term() == pytest.approx(
            p.evaluate(valuation), rel=1e-6, abs=1e-6
        )

    @given(polynomials(), valuations())
    def test_scaling_scales_evaluation(self, p, valuation):
        assert (p * 3.0).evaluate(valuation) == pytest.approx(
            3.0 * p.evaluate(valuation), rel=1e-6, abs=1e-6
        )


class TestRenameInvariants:
    @given(polynomials(), renamings())
    def test_rename_never_increases_size(self, p, renaming):
        assert p.rename(renaming).num_monomials() <= p.num_monomials()

    @given(polynomials(), renamings(), valuations())
    def test_rename_commutes_with_evaluation(self, p, renaming, valuation):
        """Evaluating the renamed polynomial with the target values equals
        evaluating the original with each variable reading its target's value."""
        target_valuation = dict(valuation)
        target_valuation.update({"g1": 1.7, "g2": -0.3})
        pulled_back = {
            name: target_valuation[renaming.get(name, name)]
            for name in VARIABLE_NAMES
        }
        left = p.rename(renaming).evaluate(target_valuation)
        right = p.evaluate(pulled_back)
        assert left == pytest.approx(right, rel=1e-6, abs=1e-6)

    @given(
        polynomials(),
        st.dictionaries(
            st.sampled_from(VARIABLE_NAMES), st.sampled_from(["g1", "g2"]), max_size=5
        ),
    )
    def test_rename_into_fresh_targets_is_idempotent(self, p, renaming):
        """Renaming into names outside the original variable set is idempotent."""
        renamed = p.rename(renaming)
        assert renamed.rename(renaming) == renamed

    @given(polynomials())
    def test_identity_rename_is_identity(self, p):
        assert p.rename({}) == p
        assert p.rename({name: name for name in VARIABLE_NAMES}) == p
