"""Property tests: evaluating from a mmap-loaded store is bit-identical.

The store round trip (compile → ``write_store`` → ``open_store``) must be
invisible to evaluation: the mapped arrays are float64 views over the same
values the in-memory compiled set holds, and both the dense
``evaluate_matrix`` and sparse ``evaluate_deltas`` pipelines run the exact
same kernels over them — so results are compared with ``np.array_equal``
(bit-identical), not within a tolerance, for every backend that has a store
form (real, tropical, bool).  Scenario programs include ``set 0`` / ``scale
0`` operations and zero-valued bases so the real kernel's zero-crossing
fallback is on the tested path.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

import numpy as np
import pytest

from repro.batch import BatchEvaluator
from repro.engine.scenario import Scenario
from repro.provenance.backends import resolve_backend
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.store import write_store
from repro.provenance.valuation import Valuation

VARIABLE_NAMES = ["a", "b", "c", "d", "e"]
SELECTOR_POOL = VARIABLE_NAMES + ["ghost"]

STORE_BACKENDS = ("real", "tropical", "bool")


@st.composite
def polynomials(draw, max_terms=5):
    terms = {}
    for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
        exponents = draw(
            st.dictionaries(
                st.sampled_from(VARIABLE_NAMES),
                st.integers(min_value=1, max_value=3),
                max_size=3,
            )
        )
        coefficient = draw(
            st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
        )
        monomial = Monomial(exponents)
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


@st.composite
def provenance_sets(draw, max_groups=3):
    result = ProvenanceSet()
    for index in range(draw(st.integers(min_value=1, max_value=max_groups))):
        result[(f"g{index}",)] = draw(polynomials())
    return result


@st.composite
def scenarios(draw, max_operations=3):
    scenario = Scenario(f"s{draw(st.integers(min_value=0, max_value=10**6))}")
    for _ in range(draw(st.integers(min_value=0, max_value=max_operations))):
        selector = draw(
            st.one_of(
                st.sampled_from(SELECTOR_POOL),
                st.lists(st.sampled_from(SELECTOR_POOL), max_size=2),
            )
        )
        amount = draw(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            )
        )
        if draw(st.booleans()):
            scenario = scenario.scale(selector, amount)
        else:
            scenario = scenario.set_value(selector, amount)
    return scenario


@st.composite
def base_valuations(draw):
    return Valuation(
        {
            name: draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                )
            )
            for name in draw(
                st.lists(st.sampled_from(VARIABLE_NAMES), unique=True)
            )
        }
    )


def _store_matches_direct(provenance, scenario_list, base, semiring):
    direct = BatchEvaluator()
    mapped = BatchEvaluator()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "roundtrip.cps"
        write_store(resolve_backend(semiring).compile(provenance), path)
        mapped.adopt_store(path)
        for mode in ("dense", "sparse"):
            expected = direct.evaluate(
                provenance, scenario_list, base_valuation=base,
                semiring=semiring, mode=mode,
            )
            stored = mapped.evaluate(
                provenance, scenario_list, base_valuation=base,
                semiring=semiring, mode=mode,
            )
            assert stored.mode == expected.mode
            assert np.array_equal(
                np.asarray(stored.full_results),
                np.asarray(expected.full_results),
            ), f"{semiring}/{mode} diverged after the store round trip"


@pytest.mark.parametrize("semiring", STORE_BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=st.lists(scenarios(), min_size=1, max_size=4),
    base=base_valuations(),
)
def test_store_round_trip_is_bit_identical(
    semiring, provenance, scenario_list, base
):
    _store_matches_direct(provenance, scenario_list, base, semiring)
