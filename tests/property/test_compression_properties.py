"""Property-based tests of the compression semantics.

Two invariants matter for the soundness of hypothetical reasoning over
compressed provenance:

* compression never increases the provenance size, and coarser cuts never
  yield larger provenance than finer ones;
* whenever a valuation assigns the same value to all variables grouped under
  a meta-variable, evaluating the compressed provenance (with the
  meta-variable bound to that shared value) gives exactly the same result as
  evaluating the full provenance — i.e. compression only removes degrees of
  freedom, never accuracy for the scenarios it still supports.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.compression import apply_abstraction
from repro.core.cut import enumerate_cuts, leaf_cut
from repro.workloads.random_polynomials import random_single_tree_instance


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=500))
    num_leaves = draw(st.integers(min_value=2, max_value=6))
    provenance, tree = random_single_tree_instance(
        num_leaves=num_leaves,
        num_groups=draw(st.integers(min_value=1, max_value=3)),
        monomials_per_group=draw(st.integers(min_value=3, max_value=12)),
        seed=seed,
    )
    return provenance, tree


@settings(max_examples=25, deadline=None)
@given(instances())
def test_compression_is_monotone_in_the_cut(instance):
    provenance, tree = instance
    full_size = provenance.size()
    for cut in enumerate_cuts(tree):
        result = apply_abstraction(provenance, cut)
        assert result.compressed_size <= full_size
        # Coarsening the cut at any inner node cannot increase the size.
        for node in tree.inner_nodes():
            if node in cut.nodes:
                continue
            try:
                coarser = cut.coarsen(node)
            except Exception:
                continue
            coarser_size = apply_abstraction(provenance, coarser).compressed_size
            assert coarser_size <= result.compressed_size


@settings(max_examples=25, deadline=None)
@given(instances(), st.floats(min_value=0.1, max_value=2.0, allow_nan=False))
def test_group_uniform_valuations_are_lossless(instance, shared_value):
    provenance, tree = instance
    for cut in list(enumerate_cuts(tree))[:8]:
        result = apply_abstraction(provenance, cut)
        mapping = result.abstraction.mapping
        full_valuation = {}
        for name in provenance.variables():
            if name in mapping:
                # all members of a group share the group's value
                full_valuation[name] = shared_value
            else:
                full_valuation[name] = 0.7
        compressed_valuation = {}
        for name in result.compressed.variables():
            compressed_valuation[name] = (
                shared_value if name in set(mapping.values()) else 0.7
            )
        full_results = provenance.evaluate(full_valuation)
        compressed_results = result.compressed.evaluate(compressed_valuation)
        for key, value in full_results.items():
            assert compressed_results[key] == pytest.approx(value, rel=1e-6, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(instances())
def test_variable_counts_follow_the_cut(instance):
    provenance, tree = instance
    tree_leaves = set(tree.leaves())
    non_tree = {v for v in provenance.variables() if v not in tree_leaves}
    for cut in list(enumerate_cuts(tree))[:10]:
        result = apply_abstraction(provenance, cut)
        compressed_vars = set(result.compressed.variables())
        # Non-tree variables survive untouched.
        assert non_tree <= compressed_vars
        # Every other variable is a cut node.
        assert compressed_vars - non_tree <= set(cut.nodes)


@settings(max_examples=25, deadline=None)
@given(instances())
def test_leaf_cut_is_identity(instance):
    provenance, tree = instance
    result = apply_abstraction(provenance, leaf_cut(tree))
    assert result.compressed == provenance
