"""Property-based tests for abstraction trees and their cuts."""

from hypothesis import given, settings, strategies as st

from repro.core.cut import Cut, count_cuts, enumerate_cuts, leaf_cut, root_cut
from repro.workloads.random_polynomials import random_tree


@st.composite
def trees(draw):
    num_leaves = draw(st.integers(min_value=1, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    max_children = draw(st.integers(min_value=2, max_value=4))
    return random_tree(num_leaves, max_children=max_children, seed=seed)


class TestTreeInvariants:
    @given(trees())
    def test_every_leaf_reaches_the_root(self, tree):
        for leaf in tree.leaves():
            assert tree.ancestors(leaf)[-1] == tree.root or leaf == tree.root

    @given(trees())
    def test_leaves_under_root_is_all_leaves(self, tree):
        assert set(tree.leaves_under(tree.root)) == set(tree.leaves())

    @given(trees())
    def test_subtree_sizes_add_up(self, tree):
        assert tree.subtree_size(tree.root) == len(tree)

    @given(trees())
    def test_children_partition_leaves(self, tree):
        for name in tree.inner_nodes():
            child_leaves = [
                leaf for child in tree.children(name) for leaf in tree.leaves_under(child)
            ]
            assert sorted(child_leaves) == sorted(tree.leaves_under(name))


class TestCutInvariants:
    @settings(max_examples=30)
    @given(trees())
    def test_enumeration_count_matches_formula(self, tree):
        cuts = list(enumerate_cuts(tree))
        assert len(cuts) == count_cuts(tree)
        assert len({cut.nodes for cut in cuts}) == len(cuts)

    @settings(max_examples=30)
    @given(trees())
    def test_every_cut_mapping_partitions_the_leaves(self, tree):
        for cut in enumerate_cuts(tree):
            mapping = cut.mapping()
            assert set(mapping) == set(tree.leaves())
            # Each leaf maps to a node that is itself or one of its ancestors.
            for leaf, meta in mapping.items():
                assert meta == leaf or meta in tree.ancestors(leaf)

    @settings(max_examples=30)
    @given(trees())
    def test_extreme_cuts_bound_the_variable_count(self, tree):
        finest = leaf_cut(tree).num_variables()
        coarsest = root_cut(tree).num_variables()
        for cut in enumerate_cuts(tree):
            assert coarsest <= cut.num_variables() <= finest

    @settings(max_examples=30)
    @given(trees(), st.integers(min_value=0, max_value=10_000))
    def test_coarsening_reduces_or_keeps_variable_count(self, tree, seed):
        cut = leaf_cut(tree)
        inner = list(tree.inner_nodes())
        if not inner:
            return
        node = inner[seed % len(inner)]
        coarsened = cut.coarsen(node)
        assert coarsened.num_variables() <= cut.num_variables()
        # Re-validating by constructing a fresh Cut must succeed.
        Cut(tree, coarsened.nodes)
