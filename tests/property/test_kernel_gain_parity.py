"""Property test: the kernel's delta-updated gain table never drifts.

The incremental kernel's entire claim is that its per-candidate merge-gain
counters — updated only for the monomials a coarsening actually touches —
always equal what a naive full recompute (the legacy greedy's
``_renamed_size`` scan over every monomial) would produce.  This test
replays random coarsening sequences over random forests and random
provenance and checks the full gain table (``saved``, ``lost`` and the
selection ``ratio``) after **every** step, including the running size the
kernel predicts.
"""

from hypothesis import given, settings, strategies as st

from repro.core.abstraction_tree import AbstractionForest
from repro.core.greedy import _renamed_size
from repro.core.kernel.greedy import IncrementalGreedyKernel
from repro.workloads.random_polynomials import random_provenance, random_tree


@st.composite
def forest_instances(draw):
    """A random forest (1–2 trees) plus random provenance over its leaves.

    Monomials may combine variables of both trees and free "extra"
    variables, so the general (multi-variable-per-monomial) update paths are
    exercised, not just the single-tree case.
    """
    seed = draw(st.integers(min_value=0, max_value=10_000))
    trees = [
        random_tree(
            draw(st.integers(min_value=2, max_value=7)),
            seed=seed,
            leaf_prefix="x",
            inner_prefix="gx",
            root="RX",
        )
    ]
    extra = ["e1", "e2"]
    if draw(st.booleans()):
        trees.append(
            random_tree(
                draw(st.integers(min_value=2, max_value=5)),
                seed=seed + 1,
                leaf_prefix="y",
                inner_prefix="gy",
                root="RY",
            )
        )
        extra = list(trees[1].leaves()) + extra
    forest = AbstractionForest(trees)
    provenance = random_provenance(
        trees[0].leaves(),
        num_groups=draw(st.integers(min_value=1, max_value=3)),
        monomials_per_group=draw(st.integers(min_value=2, max_value=12)),
        extra_variables=extra,
        max_degree=draw(st.integers(min_value=1, max_value=3)),
        seed=seed + 2,
    )
    return provenance, forest


def _naive_gain_table(forest, cuts, current, current_size):
    """The legacy greedy's per-candidate (saved, lost) by full rescan."""
    table = {}
    for index, tree in enumerate(forest.trees()):
        cut_nodes = cuts[index]
        for candidate in tree.inner_nodes():
            if candidate in cut_nodes:
                continue
            replaced = {
                name
                for name in cut_nodes
                if name == candidate or candidate in tree.ancestors(name)
            }
            if not replaced:
                continue
            rename = {name: candidate for name in replaced}
            saved = current_size - _renamed_size(current, rename)
            table[candidate] = {"saved": saved, "lost": len(replaced) - 1}
    return table


@settings(max_examples=30, deadline=None)
@given(forest_instances(), st.randoms(use_true_random=False))
def test_gain_table_matches_naive_recompute_after_every_step(instance, rng):
    provenance, forest = instance
    kernel = IncrementalGreedyKernel(provenance, forest)

    # The naive mirror replays exactly what the legacy greedy maintains:
    # the renamed provenance and the *predicted* running size.
    cuts = [set(tree.leaves()) for tree in forest.trees()]
    current = provenance
    current_size = provenance.size()

    while True:
        naive = _naive_gain_table(forest, cuts, current, current_size)
        kernel_table = kernel.gain_table()
        assert set(kernel_table) == set(naive)
        for name, entry in naive.items():
            assert kernel_table[name]["saved"] == entry["saved"], name
            assert kernel_table[name]["lost"] == entry["lost"], name
        assert kernel.current_size == current_size

        if not naive:
            break
        # Step somewhere arbitrary (not just the greedy's choice), so the
        # delta updates are exercised off the greedy trajectory too.
        choice = rng.choice(sorted(naive))
        for index, tree in enumerate(forest.trees()):
            if choice in tree.inner_nodes():
                replaced = {
                    name
                    for name in cuts[index]
                    if name == choice or choice in tree.ancestors(name)
                }
                rename = {name: choice for name in replaced}
                new_size = _renamed_size(current, rename)
                current = current.rename(rename)
                current_size = new_size
                cuts[index] = (cuts[index] - replaced) | {choice}
                break
        kernel.apply(choice)
