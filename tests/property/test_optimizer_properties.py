"""Property-based tests: the exact DP agrees with brute force, greedy is sound."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.exceptions import InfeasibleBoundError
from repro.core.brute_force import optimize_brute_force
from repro.core.compression import apply_abstraction
from repro.core.greedy import optimize_greedy
from repro.core.optimizer import build_load_model, optimize_single_tree
from repro.core.cut import enumerate_cuts
from repro.workloads.random_polynomials import random_single_tree_instance


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=300))
    provenance, tree = random_single_tree_instance(
        num_leaves=draw(st.integers(min_value=2, max_value=6)),
        num_groups=draw(st.integers(min_value=1, max_value=3)),
        monomials_per_group=draw(st.integers(min_value=4, max_value=12)),
        num_extra_variables=draw(st.integers(min_value=0, max_value=3)),
        seed=seed,
    )
    return provenance, tree


@st.composite
def instances_with_bounds(draw):
    provenance, tree = draw(instances())
    full = provenance.size()
    fraction = draw(st.floats(min_value=0.05, max_value=1.1))
    bound = max(0, int(full * fraction))
    return provenance, tree, bound


@settings(max_examples=30, deadline=None)
@given(instances())
def test_load_model_predicts_exact_sizes(instance):
    provenance, tree = instance
    model = build_load_model(provenance, tree)
    for cut in enumerate_cuts(tree):
        predicted = model.cut_size(cut)
        actual = apply_abstraction(provenance, cut).compressed_size
        assert predicted == actual


@settings(max_examples=30, deadline=None)
@given(instances_with_bounds())
def test_dp_matches_brute_force(instance):
    provenance, tree, bound = instance
    try:
        dp = optimize_single_tree(provenance, tree, bound)
    except InfeasibleBoundError:
        with pytest.raises(InfeasibleBoundError):
            optimize_brute_force(provenance, tree, bound)
        return
    bf = optimize_brute_force(provenance, tree, bound)
    assert dp.achieved_size <= bound
    assert bf.achieved_size <= bound
    assert dp.cut.num_variables() == bf.cut.num_variables()
    assert dp.predicted_size == dp.achieved_size


@settings(max_examples=30, deadline=None)
@given(instances_with_bounds())
def test_greedy_is_feasible_whenever_dp_is(instance):
    provenance, tree, bound = instance
    try:
        dp = optimize_single_tree(provenance, tree, bound)
    except InfeasibleBoundError:
        return
    greedy = optimize_greedy(provenance, tree, bound)
    assert greedy.achieved_size <= bound
    assert greedy.num_variables <= dp.num_variables + len(tree.leaves())


@settings(max_examples=30, deadline=None)
@given(instances())
def test_infeasible_flag_consistency(instance):
    provenance, tree = instance
    # A bound of 0 is infeasible unless the provenance itself is empty.
    if provenance.size() == 0:
        return
    result = optimize_single_tree(provenance, tree, 0, allow_infeasible=True)
    assert not result.feasible
    # The infeasible fallback is the smallest achievable abstraction.
    brute = optimize_brute_force(provenance, tree, 0, allow_infeasible=True)
    assert result.achieved_size == brute.achieved_size
