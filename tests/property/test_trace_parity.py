"""Property tests: tracing never changes evaluation results.

The observability layer must be a pure observer — running the exact same
batch evaluation with the tracer on and off has to produce bit-identical
results for the numeric backends (the float pipeline's arrays compare as
raw bytes) and equal results for the set-valued ones, in every evaluation
mode.  Generators mirror ``test_sparse_delta_parity``: scenario programs
include ``set 0`` / ``scale 0`` and bases with zeros so the instrumented
sparse kernels run their fallback paths too.
"""

from hypothesis import given, settings, strategies as st

import numpy as np
import pytest

from repro.batch import BatchEvaluator
from repro.engine.scenario import Scenario
from repro.obs import disable_tracing, enable_tracing, get_tracer
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation

VARIABLE_NAMES = ["a", "b", "c", "d", "e"]


@st.composite
def polynomials(draw, max_terms=5):
    terms = {}
    for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
        exponents = draw(
            st.dictionaries(
                st.sampled_from(VARIABLE_NAMES),
                st.integers(min_value=1, max_value=3),
                max_size=3,
            )
        )
        coefficient = draw(
            st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
        )
        monomial = Monomial(exponents)
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


@st.composite
def provenance_sets(draw, max_groups=3):
    result = ProvenanceSet()
    for index in range(draw(st.integers(min_value=1, max_value=max_groups))):
        result[(f"g{index}",)] = draw(polynomials())
    return result


@st.composite
def scenarios(draw, max_operations=3):
    scenario = Scenario(f"s{draw(st.integers(min_value=0, max_value=10**6))}")
    for _ in range(draw(st.integers(min_value=0, max_value=max_operations))):
        selector = draw(
            st.one_of(
                st.sampled_from(VARIABLE_NAMES),
                st.lists(st.sampled_from(VARIABLE_NAMES), max_size=2),
            )
        )
        amount = draw(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            )
        )
        if draw(st.booleans()):
            scenario = scenario.scale(selector, amount)
        else:
            scenario = scenario.set_value(selector, amount)
    return scenario


@st.composite
def base_valuations(draw):
    return Valuation(
        {
            name: draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                )
            )
            for name in draw(
                st.lists(st.sampled_from(VARIABLE_NAMES), unique=True)
            )
        }
    )


def _traced_and_untraced(provenance, scenario_list, base, semiring, mode):
    """The same evaluation twice: tracing off, then tracing on."""

    def run():
        return BatchEvaluator().evaluate(
            provenance,
            scenario_list,
            base_valuation=base,
            semiring=semiring,
            mode=mode,
        )

    tracer = get_tracer()
    was_enabled = tracer.enabled
    disable_tracing()
    try:
        untraced = run()
    finally:
        tracer.enabled = was_enabled
    enable_tracing()
    try:
        traced = run()
    finally:
        tracer.reset()
        tracer.enabled = was_enabled
    return untraced, traced


@settings(max_examples=25, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=st.lists(scenarios(), min_size=1, max_size=4),
    base=base_valuations(),
)
@pytest.mark.parametrize("semiring", ["real", "tropical", "bool"])
@pytest.mark.parametrize("mode", ["dense", "sparse"])
def test_tracing_is_invisible_to_numeric_backends(
    mode, semiring, provenance, scenario_list, base
):
    untraced, traced = _traced_and_untraced(
        provenance, scenario_list, base, semiring, mode
    )
    assert traced.mode == untraced.mode
    assert np.asarray(traced.baseline).tobytes() == np.asarray(
        untraced.baseline
    ).tobytes()
    assert np.asarray(traced.full_results).tobytes() == np.asarray(
        untraced.full_results
    ).tobytes()


@settings(max_examples=10, deadline=None)
@given(
    provenance=provenance_sets(max_groups=2),
    scenario_list=st.lists(scenarios(max_operations=2), min_size=1, max_size=3),
)
@pytest.mark.parametrize("semiring", ["why", "lineage"])
def test_tracing_is_invisible_to_set_valued_backends(
    semiring, provenance, scenario_list
):
    untraced, traced = _traced_and_untraced(
        provenance, scenario_list, None, semiring, "auto"
    )
    assert traced.mode == untraced.mode == "generic"
    assert np.array_equal(traced.full_results, untraced.full_results)
