"""Property-based tests: the compiled evaluators agree with naive evaluation."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import (
    CompiledPolynomial,
    CompiledProvenanceSet,
    Valuation,
)

VARIABLE_NAMES = ["a", "b", "c", "d", "e", "f"]


@st.composite
def polynomials(draw, max_terms=8):
    terms = {}
    for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
        exponents = draw(
            st.dictionaries(
                st.sampled_from(VARIABLE_NAMES),
                st.integers(min_value=1, max_value=3),
                max_size=3,
            )
        )
        coefficient = draw(
            st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
        )
        monomial = Monomial(exponents)
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


@st.composite
def provenance_sets(draw, max_groups=4):
    result = ProvenanceSet()
    for index in range(draw(st.integers(min_value=1, max_value=max_groups))):
        result[(f"g{index}",)] = draw(polynomials())
    return result


@st.composite
def valuations(draw):
    return Valuation(
        {
            name: draw(
                st.floats(
                    min_value=-2.5, max_value=2.5, allow_nan=False, allow_infinity=False
                )
            )
            for name in VARIABLE_NAMES
        }
    )


class TestCompiledPolynomial:
    @settings(max_examples=60)
    @given(polynomials(), valuations())
    def test_matches_naive_evaluation(self, polynomial, valuation):
        compiled = CompiledPolynomial(polynomial)
        assert compiled.evaluate(valuation) == pytest.approx(
            polynomial.evaluate(valuation), rel=1e-6, abs=1e-6
        )

    @given(polynomials())
    def test_monomial_count_preserved(self, polynomial):
        assert CompiledPolynomial(polynomial).num_monomials() == polynomial.num_monomials()


class TestCompiledProvenanceSet:
    @settings(max_examples=40)
    @given(provenance_sets(), valuations())
    def test_matches_naive_evaluation(self, provenance, valuation):
        compiled = CompiledProvenanceSet(provenance)
        naive = provenance.evaluate(valuation)
        fast = compiled.evaluate(valuation)
        assert set(fast) == set(naive)
        for key in naive:
            assert fast[key] == pytest.approx(naive[key], rel=1e-6, abs=1e-6)

    @given(provenance_sets())
    def test_size_preserved(self, provenance):
        assert CompiledProvenanceSet(provenance).size() == provenance.size()

    @settings(max_examples=40)
    @given(provenance_sets(), valuations())
    def test_vector_and_mapping_agree(self, provenance, valuation):
        compiled = CompiledProvenanceSet(provenance)
        vector = compiled.evaluate_vector(valuation)
        mapping = compiled.evaluate(valuation)
        for index, key in enumerate(compiled.keys):
            assert vector[index] == pytest.approx(mapping[key], rel=1e-9, abs=1e-9)
