"""Chaos properties: evaluation under injected faults is bit-identical.

The resilience contract: a sweep that encounters transient faults —
flaky compiles, failing shards, corrupt stores, stalled workers, broken
pools — must *recover* to exactly the results of a clean run, never
silently degrade them.  Fault injection is seeded and deterministic
(:mod:`repro.resilience.faults`), so each property pins a plan and
asserts element-for-element equality against an undisturbed evaluator,
across every numeric semiring × pipeline mode combination.
"""

import numpy as np
import pytest

from repro.batch import BatchEvaluator
from repro.engine.scenario import Scenario
from repro.obs.metrics import get_registry
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    clear_plan,
    fault_plan,
)

SEMIRINGS = ("real", "tropical", "bool")
MODES = ("dense", "sparse", "factored")

#: A fast retry posture for tests: immediate retries, no jittered waits.
FAST_RETRY = RetryPolicy(attempts=3, backoff=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _disarmed():
    clear_plan()
    yield
    clear_plan()


def _provenance(seed=0):
    rng = np.random.default_rng(seed)
    names = [f"v{i}" for i in range(6)]
    result = ProvenanceSet()
    for g in range(2):
        terms = {}
        for _ in range(8):
            width = int(rng.integers(1, 3))
            chosen = rng.choice(6, size=width, replace=False)
            monomial = Monomial({names[v]: int(rng.integers(1, 3)) for v in chosen})
            terms[monomial] = terms.get(monomial, 0.0) + float(rng.uniform(0.5, 3))
        terms[Monomial.unit()] = 1.0
        result[(f"g{g}",)] = Polynomial(terms)
    return result


def _scenarios():
    # A shared two-operation prefix (so the factored pipeline has something
    # to factor) plus one residual operation per scenario.
    return [
        Scenario(f"s{i}")
        .scale(["v0"], 1.5)
        .set_value(["v1"], 0.5)
        .scale([f"v{i % 6}"], 0.75 + 0.05 * i)
        for i in range(8)
    ]


def _counter(name):
    return get_registry().counter(name).value


class TestChaosParity:
    """Faults at every site; results must match a clean run exactly."""

    @pytest.mark.parametrize("semiring", SEMIRINGS)
    @pytest.mark.parametrize("mode", MODES)
    def test_shard_and_compile_faults_recover_bit_identically(
        self, semiring, mode
    ):
        provenance = _provenance()
        scenarios = _scenarios()
        clean = BatchEvaluator().evaluate(
            provenance, scenarios, semiring=semiring, mode=mode
        )
        plan = FaultPlan(
            [
                FaultSpec(site="batch.compile", kind="io", times=(0,)),
                FaultSpec(site="batch.shard", kind="io", times=(0,)),
            ],
            seed=1,
        )
        salvaged_before = _counter("resilience.salvaged_shards")
        with fault_plan(plan):
            chaotic = BatchEvaluator(
                chunk_size=2, retry_policy=FAST_RETRY
            ).evaluate(
                provenance, scenarios, semiring=semiring, mode=mode, processes=2
            )
        assert plan.fire_counts().get("batch.compile") == 1
        np.testing.assert_array_equal(chaotic.baseline, clean.baseline)
        np.testing.assert_array_equal(chaotic.full_results, clean.full_results)
        assert chaotic.degraded
        # Shards that completed before the injected failures must have been
        # salvaged, not recomputed (2 workers fail their first task each;
        # everything else lands in round one).
        assert _counter("resilience.salvaged_shards") > salvaged_before

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_rate_faults_over_a_seed_matrix(self, seed):
        provenance = _provenance(seed)
        scenarios = _scenarios()
        clean = BatchEvaluator().evaluate(provenance, scenarios)
        plan = FaultPlan(
            [
                FaultSpec(
                    site="batch.compile", kind="io", rate=0.5, max_fires=2
                )
            ],
            seed=seed,
        )
        # max_fires=2 < attempts=4: convergence is guaranteed, not lucky.
        policy = RetryPolicy(attempts=4, backoff=0.0, jitter=0.0)
        with fault_plan(plan):
            chaotic = BatchEvaluator(retry_policy=policy).evaluate(
                provenance, scenarios
            )
        np.testing.assert_array_equal(chaotic.full_results, clean.full_results)

    def test_corruption_faults_escalate_to_serial_and_recover(self):
        provenance = _provenance()
        scenarios = _scenarios()
        clean = BatchEvaluator().evaluate(provenance, scenarios, mode="sparse")
        plan = FaultPlan(
            [
                FaultSpec(
                    site="batch.shard", kind="corruption", times=(0, 1), max_fires=2
                )
            ]
        )
        with fault_plan(plan):
            chaotic = BatchEvaluator(retry_policy=FAST_RETRY).evaluate(
                provenance, scenarios, mode="sparse", processes=2
            )
        np.testing.assert_array_equal(chaotic.full_results, clean.full_results)
        assert any("batch.shard" in event for event in chaotic.degradations)


class TestStoreChaos:
    def test_corrupt_open_quarantines_and_recompiles(self, tmp_path):
        provenance = _provenance()
        scenarios = _scenarios()
        clean = BatchEvaluator().evaluate(provenance, scenarios)
        from repro.provenance.store import clear_store_cache, write_store
        from repro.provenance.valuation import CompiledProvenanceSet

        path = tmp_path / "chaos.cps"
        write_store(CompiledProvenanceSet(provenance), path)
        clear_store_cache()
        quarantines_before = _counter("resilience.quarantines")
        plan = FaultPlan(
            [FaultSpec(site="store.read_block", kind="corruption", times=(0,))]
        )
        with fault_plan(plan):
            evaluator = BatchEvaluator(retry_policy=FAST_RETRY)
            evaluator.adopt_store(path, provenance)
            report = evaluator.evaluate(provenance, scenarios)
        assert _counter("resilience.quarantines") == quarantines_before + 1
        assert not path.exists()  # quarantined out of the way
        np.testing.assert_array_equal(report.full_results, clean.full_results)

    def test_transient_open_faults_are_retried(self, tmp_path):
        provenance = _provenance()
        from repro.provenance.store import clear_store_cache, write_store
        from repro.provenance.valuation import CompiledProvenanceSet

        path = tmp_path / "flaky.cps"
        write_store(CompiledProvenanceSet(provenance), path)
        clear_store_cache()
        retries_before = _counter("resilience.retries.store.open")
        plan = FaultPlan([FaultSpec(site="store.open", kind="io", times=(0,))])
        with fault_plan(plan):
            compiled = BatchEvaluator(retry_policy=FAST_RETRY).adopt_store(path)
        assert compiled.store_path == str(path)  # mapped, not recompiled
        assert _counter("resilience.retries.store.open") == retries_before + 1

    def test_store_sharded_chaos_parity(self, tmp_path):
        provenance = _provenance()
        scenarios = _scenarios()
        clean = BatchEvaluator().evaluate(provenance, scenarios, mode="sparse")
        from repro.provenance.store import clear_store_cache, write_store
        from repro.provenance.valuation import CompiledProvenanceSet

        path = tmp_path / "sharded.cps"
        write_store(CompiledProvenanceSet(provenance), path)
        clear_store_cache()
        plan = FaultPlan(
            [FaultSpec(site="batch.shard", kind="io", times=(0,))]
        )
        with BatchEvaluator(retry_policy=FAST_RETRY) as evaluator:
            evaluator.adopt_store(path)
            with fault_plan(plan):
                report = evaluator.evaluate(
                    provenance, scenarios, mode="sparse", processes=2
                )
        np.testing.assert_array_equal(report.full_results, clean.full_results)
        assert report.degraded


class TestStallChaos:
    def test_stalled_shards_trip_the_deadline_and_recover(self):
        provenance = _provenance()
        scenarios = _scenarios()
        clean = BatchEvaluator().evaluate(provenance, scenarios, mode="sparse")
        plan = FaultPlan(
            [
                FaultSpec(
                    site="batch.shard", kind="stall", times=(0,), seconds=1.0
                )
            ]
        )
        policy = RetryPolicy(
            attempts=2, backoff=0.0, jitter=0.0, shard_timeout=0.2
        )
        timeouts_before = _counter("resilience.timeouts")
        with fault_plan(plan):
            report = BatchEvaluator(retry_policy=policy).evaluate(
                provenance, scenarios, mode="sparse", processes=2
            )
        np.testing.assert_array_equal(report.full_results, clean.full_results)
        assert _counter("resilience.timeouts") > timeouts_before
        assert any("deadline" in event for event in report.degradations)
