"""Property tests: the factored pipeline equals the sparse and dense paths.

Shared-delta factoring applies a sweep's common operation prefix once to a
factored baseline and evaluates only per-scenario residuals.  The residual
rows are produced by the same sequential float operations the unfactored
lowering applies, so for every numeric backend the factored results must be
indistinguishable from the other pipelines: within fp tolerance for the
real semiring (whose delta kernel rescales against a different baseline),
exactly equal for the idempotent tropical/bool kernels (which recompute the
affected contributions from the rows themselves).  Scenario programs are
drawn as composed sweeps — a random shared base prefix plus small random
residuals, including ``set 0`` / ``scale 0`` operations — so the factored
row genuinely differs from the plain baseline in most examples.
"""

from hypothesis import given, settings, strategies as st

import numpy as np
import pytest

from repro.batch import BatchEvaluator, factor_batch, ScenarioBatch
from repro.engine.plan import compose
from repro.engine.scenario import Scenario
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation

VARIABLE_NAMES = ["a", "b", "c", "d", "e", "f"]
#: Selectors deliberately include names outside the provenance universe.
SELECTOR_POOL = VARIABLE_NAMES + ["ghost1", "ghost2"]


@st.composite
def polynomials(draw, max_terms=6):
    terms = {}
    for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
        exponents = draw(
            st.dictionaries(
                st.sampled_from(VARIABLE_NAMES),
                st.integers(min_value=1, max_value=3),
                max_size=3,
            )
        )
        coefficient = draw(
            st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
        )
        monomial = Monomial(exponents)
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


@st.composite
def provenance_sets(draw, max_groups=3):
    result = ProvenanceSet()
    for index in range(draw(st.integers(min_value=1, max_value=max_groups))):
        result[(f"g{index}",)] = draw(polynomials())
    return result


def _amounts(draw):
    # Zero amounts are drawn often: they are the zero-crossing updates the
    # real kernel's ratio path must hand off to its fallback.
    return draw(
        st.one_of(
            st.just(0.0),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        )
    )


def _extend(draw, scenario):
    selector = draw(
        st.one_of(
            st.sampled_from(SELECTOR_POOL),
            st.lists(st.sampled_from(SELECTOR_POOL), max_size=3),
        )
    )
    amount = _amounts(draw)
    if draw(st.booleans()):
        return scenario.scale(selector, amount)
    return scenario.set_value(selector, amount)


@st.composite
def composed_sweeps(draw, max_prefix=3, max_residual=2, max_variants=6):
    """A sweep whose scenarios share a random base prefix (possibly empty)."""
    base = Scenario("base")
    for _ in range(draw(st.integers(min_value=0, max_value=max_prefix))):
        base = _extend(draw, base)
    variants = []
    for index in range(draw(st.integers(min_value=1, max_value=max_variants))):
        variant = Scenario(f"v{index}")
        for _ in range(draw(st.integers(min_value=0, max_value=max_residual))):
            variant = _extend(draw, variant)
        variants.append(variant)
    return compose(base, variants).scenarios()


@st.composite
def base_valuations(draw):
    return Valuation(
        {
            name: draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                )
            )
            for name in draw(
                st.lists(st.sampled_from(VARIABLE_NAMES), unique=True)
            )
        }
    )


def _reports(provenance, scenario_list, base, semiring):
    evaluator = BatchEvaluator()
    return {
        mode: evaluator.evaluate(
            provenance, scenario_list, base_valuation=base,
            semiring=semiring, mode=mode,
        )
        for mode in ("dense", "sparse", "factored")
    }


@settings(max_examples=50, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=composed_sweeps(),
    base=base_valuations(),
)
def test_real_factored_matches_dense_and_sparse(
    provenance, scenario_list, base
):
    reports = _reports(provenance, scenario_list, base, semiring="real")
    assert reports["factored"].mode == "factored"
    for other in ("dense", "sparse"):
        np.testing.assert_allclose(
            reports["factored"].baseline, reports[other].baseline,
            rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            reports["factored"].full_results, reports[other].full_results,
            rtol=1e-9, atol=1e-9,
        )


@settings(max_examples=40, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=composed_sweeps(),
    base=base_valuations(),
)
@pytest.mark.parametrize("semiring", ["tropical", "bool"])
def test_idempotent_factored_matches_dense_exactly(
    semiring, provenance, scenario_list, base
):
    reports = _reports(provenance, scenario_list, base, semiring=semiring)
    assert np.array_equal(
        reports["factored"].baseline, reports["dense"].baseline
    )
    assert np.array_equal(
        reports["factored"].full_results, reports["dense"].full_results
    )
    assert np.array_equal(
        reports["factored"].full_results, reports["sparse"].full_results
    )


@settings(max_examples=50, deadline=None)
@given(scenario_list=composed_sweeps(), base=base_valuations())
def test_residual_rows_equal_unfactored_rows_bitwise(scenario_list, base):
    """Row-level invariant: factored row + residual == base row + full delta,
    bit for bit — independent of any provenance."""
    batch = ScenarioBatch(scenario_list, VARIABLE_NAMES)
    flat = batch.delta_plan(base)
    factoring = factor_batch(batch, base)
    for (cols_a, vals_a), (cols_b, vals_b) in zip(
        flat.changes, factoring.residual_plan.changes
    ):
        row_a = flat.base_row.copy()
        row_a[cols_a] = vals_a
        row_b = factoring.factored_row.copy()
        row_b[cols_b] = vals_b
        np.testing.assert_array_equal(row_a, row_b)
