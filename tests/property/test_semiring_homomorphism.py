"""Property tests: backend evaluation is the N[X] homomorphism, and
compression commutes with it the way the paper promises.

Two families of properties:

* **Homomorphism parity** — for every shipped backend, the compiled
  evaluator (numpy kernels for real/tropical/bool, the pure-Python fallback
  for why/lineage) agrees with the reference
  :func:`~repro.provenance.semiring.evaluate_in_semiring` on random
  provenance and random valuations, using the backend's own coefficient
  embedding on both sides.

* **Compression commutation** — abstraction only renames variables, so for
  backends whose coefficient embedding is the canonical N → K map (real,
  bool, why, lineage) a valuation that is constant on every abstracted group
  evaluates the compressed provenance to *exactly* the full result; and for
  every backend the per-group abstraction error is consistent with (never
  exceeds) the summary ``compute_error_metrics`` reports.  (The tropical
  backend embeds coefficients as costs — not a homomorphism from ``(N, +)``
  to ``(R, min)`` — so only the consistency half applies to it.)
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compression import Abstraction, apply_abstraction
from repro.core.defaults import default_meta_valuation
from repro.core.metrics import compute_error_metrics
from repro.provenance.backends import SEMIRING_BACKEND_NAMES, resolve_backend
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.semiring import evaluate_in_semiring

VARIABLES = ["x0", "x1", "x2", "x3", "x4", "x5"]

#: Backends whose coefficient embedding is the canonical N -> K homomorphism
#: (c |-> 1 + ... + 1), for which compression is exact on group-uniform
#: valuations.  The tropical cost embedding deliberately is not one.
HOMOMORPHIC_BACKENDS = ("real", "bool", "why", "lineage")


@st.composite
def provenances(draw, max_keys=3, max_terms=5):
    """Random N[X] provenance with natural coefficients."""
    provenance = ProvenanceSet()
    num_keys = draw(st.integers(min_value=1, max_value=max_keys))
    for key_index in range(num_keys):
        terms = {}
        for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
            exponents = draw(
                st.dictionaries(
                    st.sampled_from(VARIABLES),
                    st.integers(min_value=1, max_value=2),
                    max_size=3,
                )
            )
            coefficient = draw(st.integers(min_value=1, max_value=4))
            monomial = Monomial(exponents)
            terms[monomial] = terms.get(monomial, 0.0) + float(coefficient)
        provenance[(f"g{key_index}",)] = Polynomial(terms)
    return provenance


def value_strategy(name):
    """A strategy for one variable's value in the given backend's carrier."""
    if name == "real":
        return st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
    if name == "tropical":
        return st.one_of(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            st.just(float("inf")),
        )
    if name == "bool":
        return st.booleans()
    if name == "why":
        return st.frozensets(
            st.frozensets(st.sampled_from(VARIABLES), max_size=2), max_size=2
        )
    if name == "lineage":
        return st.one_of(
            st.none(), st.frozensets(st.sampled_from(VARIABLES), max_size=3)
        )
    raise AssertionError(name)


def valuations(name):
    return st.fixed_dictionaries({v: value_strategy(name) for v in VARIABLES})


def assert_value_equal(got, want):
    if isinstance(want, float):
        if np.isinf(want):
            assert got == want
        else:
            assert got == pytest.approx(want, abs=1e-9)
    else:
        assert got == want


class TestHomomorphismParity:
    @pytest.mark.parametrize("name", SEMIRING_BACKEND_NAMES)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_backend_matches_reference_evaluation(self, name, data):
        backend = resolve_backend(name)
        provenance = data.draw(provenances())
        valuation = data.draw(valuations(name))
        compiled = backend.compile(provenance)
        results = compiled.evaluate(valuation)
        for key, polynomial in provenance.items():
            want = evaluate_in_semiring(
                polynomial,
                backend.semiring,
                valuation,
                coefficient_embedding=backend.embed_coefficient,
            )
            assert_value_equal(results[key], want)

    @pytest.mark.parametrize("name", ["tropical", "bool"])
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matrix_kernel_matches_per_valuation(self, name, data):
        backend = resolve_backend(name)
        provenance = data.draw(provenances())
        rows = data.draw(st.lists(valuations(name), min_size=1, max_size=4))
        compiled = backend.compile(provenance)
        if not compiled.variables:
            return
        matrix = np.array(
            [[float(row[v]) for v in compiled.variables] for row in rows]
        )
        batch = compiled.evaluate_matrix(matrix)
        for i, row in enumerate(rows):
            single = compiled.evaluate(row)
            for j, key in enumerate(compiled.keys):
                assert_value_equal(float(batch[i, j]), float(single[key]))


@st.composite
def abstractions(draw):
    """A random 2-group partition of a subset of the variable universe."""
    shuffled = draw(st.permutations(VARIABLES))
    cut_a = draw(st.integers(min_value=1, max_value=3))
    cut_b = draw(st.integers(min_value=cut_a + 1, max_value=min(cut_a + 3, 6)))
    return Abstraction.from_groups(
        {"gA": shuffled[:cut_a], "gB": shuffled[cut_a:cut_b]}
    )


class TestCompressionCommutation:
    @pytest.mark.parametrize("name", HOMOMORPHIC_BACKENDS)
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_group_uniform_valuations_are_exact(self, name, data):
        """Abstraction commutes with evaluation when the valuation is
        constant on every abstracted group (the paper's exactness case)."""
        backend = resolve_backend(name)
        provenance = data.draw(provenances())
        abstraction = data.draw(abstractions())
        shared = {
            meta: data.draw(value_strategy(name), label=f"value for {meta}")
            for meta in abstraction.meta_variables()
        }
        full_valuation = {}
        for variable in VARIABLES:
            meta = abstraction.mapping.get(variable)
            if meta is not None:
                full_valuation[variable] = shared[meta]
            else:
                full_valuation[variable] = data.draw(
                    value_strategy(name), label=f"value for {variable}"
                )
        compressed = apply_abstraction(provenance, abstraction).compressed
        compressed_valuation = dict(
            {v: full_valuation[v] for v in full_valuation
             if v not in abstraction.mapping},
            **shared,
        )
        full_results = backend.compile(provenance).evaluate(full_valuation)
        compressed_results = backend.compile(compressed).evaluate(
            compressed_valuation
        )
        zero = backend.semiring.zero
        for key in provenance.keys():
            assert backend.error(
                full_results[key], compressed_results.get(key, zero)
            ) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("name", SEMIRING_BACKEND_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_per_group_error_within_reported_error(self, name, data):
        """Compress-then-evaluate stays within the reported abstraction
        error: no group's error exceeds the summary's max_abs_error."""
        backend = resolve_backend(name)
        provenance = data.draw(provenances())
        abstraction = data.draw(abstractions())
        full_valuation = data.draw(valuations(name))
        compressed = apply_abstraction(provenance, abstraction).compressed
        meta_valuation = default_meta_valuation(
            abstraction,
            full_valuation,
            on_missing="skip",
            semiring=backend,
        )
        missing = [
            v for v in compressed.variables() if v not in meta_valuation
        ]
        if missing:
            meta_valuation = meta_valuation.updated(
                {v: backend.default_value(v) for v in missing}
            )
        full_results = backend.compile(provenance).evaluate(full_valuation)
        compressed_results = backend.compile(compressed).evaluate(meta_valuation)
        report = compute_error_metrics(
            full_results, compressed_results, semiring=backend
        )
        zero = backend.semiring.zero
        for key in provenance.keys():
            error = backend.error(
                full_results[key], compressed_results.get(key, zero)
            )
            assert error <= report["max_abs_error"] + 1e-9
