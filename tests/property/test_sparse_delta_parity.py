"""Property tests: sparse delta evaluation equals the dense matrix path.

The sparse pipeline (baseline-once + per-scenario deltas through the
inverted variable→monomial index) must be indistinguishable from the dense
``scenarios × variables`` pipeline for every registered backend: element-wise
equal within fp tolerance for the real semiring (whose deltas are additive
corrections), exactly equal for the idempotent tropical/bool kernels (which
recompute the same contributions), and trivially equal for the set-valued
backends (whose sparse mode degrades to the same generic loop).  Scenario
programs deliberately include ``set 0`` / ``scale 0`` operations and bases
containing zeros, so the real kernel's zero-crossing fallback is on the
tested path.
"""

from hypothesis import given, settings, strategies as st

import numpy as np
import pytest

from repro.batch import BatchEvaluator
from repro.engine.scenario import Scenario
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation

VARIABLE_NAMES = ["a", "b", "c", "d", "e", "f"]
#: Selectors deliberately include names outside the provenance universe.
SELECTOR_POOL = VARIABLE_NAMES + ["ghost1", "ghost2"]


@st.composite
def polynomials(draw, max_terms=6):
    terms = {}
    for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
        exponents = draw(
            st.dictionaries(
                st.sampled_from(VARIABLE_NAMES),
                st.integers(min_value=1, max_value=3),
                max_size=3,
            )
        )
        coefficient = draw(
            st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
        )
        monomial = Monomial(exponents)
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


@st.composite
def provenance_sets(draw, max_groups=3):
    result = ProvenanceSet()
    for index in range(draw(st.integers(min_value=1, max_value=max_groups))):
        result[(f"g{index}",)] = draw(polynomials())
    return result


@st.composite
def scenarios(draw, max_operations=3):
    scenario = Scenario(f"s{draw(st.integers(min_value=0, max_value=10**6))}")
    for _ in range(draw(st.integers(min_value=0, max_value=max_operations))):
        selector = draw(
            st.one_of(
                st.sampled_from(SELECTOR_POOL),
                st.lists(st.sampled_from(SELECTOR_POOL), max_size=2),
            )
        )
        # Zero amounts are drawn often: they are the zero-crossing updates
        # the real kernel's ratio path must hand off to its fallback.
        amount = draw(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            )
        )
        if draw(st.booleans()):
            scenario = scenario.scale(selector, amount)
        else:
            scenario = scenario.set_value(selector, amount)
    return scenario


@st.composite
def base_valuations(draw):
    return Valuation(
        {
            name: draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                )
            )
            for name in draw(
                st.lists(st.sampled_from(VARIABLE_NAMES), unique=True)
            )
        }
    )


def _reports(provenance, scenario_list, base, semiring):
    evaluator = BatchEvaluator()
    dense = evaluator.evaluate(
        provenance, scenario_list, base_valuation=base,
        semiring=semiring, mode="dense",
    )
    sparse = evaluator.evaluate(
        provenance, scenario_list, base_valuation=base,
        semiring=semiring, mode="sparse",
    )
    return dense, sparse


@settings(max_examples=50, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=st.lists(scenarios(), min_size=1, max_size=5),
    base=base_valuations(),
)
def test_real_sparse_matches_dense_within_tolerance(
    provenance, scenario_list, base
):
    dense, sparse = _reports(provenance, scenario_list, base, semiring="real")
    assert dense.mode == "dense" and sparse.mode == "sparse"
    np.testing.assert_allclose(
        sparse.baseline, dense.baseline, rtol=1e-9, atol=1e-9
    )
    np.testing.assert_allclose(
        sparse.full_results, dense.full_results, rtol=1e-9, atol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=st.lists(scenarios(), min_size=1, max_size=5),
    base=base_valuations(),
)
@pytest.mark.parametrize("semiring", ["tropical", "bool"])
def test_idempotent_sparse_matches_dense_exactly(
    semiring, provenance, scenario_list, base
):
    dense, sparse = _reports(provenance, scenario_list, base, semiring=semiring)
    assert np.array_equal(sparse.baseline, dense.baseline)
    assert np.array_equal(sparse.full_results, dense.full_results)


@settings(max_examples=20, deadline=None)
@given(
    provenance=provenance_sets(max_groups=2),
    scenario_list=st.lists(scenarios(max_operations=2), min_size=1, max_size=3),
)
@pytest.mark.parametrize("semiring", ["why", "lineage"])
def test_generic_backends_are_mode_independent(
    semiring, provenance, scenario_list
):
    evaluator = BatchEvaluator()
    reports = [
        evaluator.evaluate(
            provenance, scenario_list, semiring=semiring, mode=mode
        )
        for mode in ("dense", "sparse", "auto")
    ]
    assert all(report.mode == "generic" for report in reports)
    reference = reports[0]
    for report in reports[1:]:
        assert np.array_equal(report.full_results, reference.full_results)
