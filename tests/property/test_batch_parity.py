"""Property tests: batch evaluation agrees with the sequential scenario path.

The batch subsystem lowers scenarios into matrices and evaluates them with
vectorised kernels; the reference semantics is the one-at-a-time path the
interactive engine uses — ``Scenario.apply`` followed by
``Polynomial.evaluate``.  These properties assert the two paths agree over
random provenance, random scenario programs (including set-then-scale
operation orderings and selectors that match nothing) and random bases.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.batch import BatchEvaluator, ScenarioBatch
from repro.engine.scenario import Scenario
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import Valuation

VARIABLE_NAMES = ["a", "b", "c", "d", "e"]
#: Selectors deliberately include names outside the provenance universe.
SELECTOR_POOL = VARIABLE_NAMES + ["ghost1", "ghost2"]


@st.composite
def polynomials(draw, max_terms=6):
    terms = {}
    for _ in range(draw(st.integers(min_value=0, max_value=max_terms))):
        exponents = draw(
            st.dictionaries(
                st.sampled_from(VARIABLE_NAMES),
                st.integers(min_value=1, max_value=3),
                max_size=3,
            )
        )
        coefficient = draw(
            st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)
        )
        monomial = Monomial(exponents)
        terms[monomial] = terms.get(monomial, 0.0) + coefficient
    return Polynomial(terms)


@st.composite
def provenance_sets(draw, max_groups=3):
    result = ProvenanceSet()
    for index in range(draw(st.integers(min_value=1, max_value=max_groups))):
        result[(f"g{index}",)] = draw(polynomials())
    return result


@st.composite
def scenarios(draw, max_operations=3):
    scenario = Scenario(f"s{draw(st.integers(min_value=0, max_value=10**6))}")
    for _ in range(draw(st.integers(min_value=0, max_value=max_operations))):
        selector = draw(
            st.one_of(
                st.sampled_from(SELECTOR_POOL),
                st.lists(st.sampled_from(SELECTOR_POOL), max_size=3),
            )
        )
        amount = draw(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
        )
        if draw(st.booleans()):
            scenario = scenario.scale(selector, amount)
        else:
            scenario = scenario.set_value(selector, amount)
    return scenario


@st.composite
def base_valuations(draw):
    return Valuation(
        {
            name: draw(
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
            )
            for name in draw(
                st.lists(st.sampled_from(VARIABLE_NAMES), unique=True)
            )
        }
    )


def _sequential_results(provenance, scenario, base):
    filled = base.updated(
        {name: 1.0 for name in base.missing(provenance.variables())}
    )
    valuation = scenario.apply(filled, provenance.variables())
    return {
        key: polynomial.evaluate(valuation)
        for key, polynomial in provenance.items()
    }


@settings(max_examples=60, deadline=None)
@given(
    provenance=provenance_sets(),
    scenario_list=st.lists(scenarios(), min_size=1, max_size=6),
    base=base_valuations(),
)
def test_batch_matches_sequential_apply_evaluate(provenance, scenario_list, base):
    report = BatchEvaluator().evaluate(provenance, scenario_list, base_valuation=base)
    for index, scenario in enumerate(scenario_list):
        expected = _sequential_results(provenance, scenario, base)
        outcome = report.outcome(index)
        for key, value in expected.items():
            assert outcome.results[key] == pytest.approx(
                value, rel=1e-6, abs=1e-6
            )


@settings(max_examples=60, deadline=None)
@given(
    scenario_list=st.lists(scenarios(), min_size=1, max_size=5),
    base=base_valuations(),
)
def test_valuation_matrix_rows_match_scenario_apply(scenario_list, base):
    batch = ScenarioBatch(scenario_list, VARIABLE_NAMES)
    matrix = batch.valuation_matrix(base)
    filled = Valuation(
        {name: base.get(name, 1.0) for name in batch.variables}
    )
    for row, scenario in enumerate(scenario_list):
        applied = scenario.apply(filled, batch.variables)
        for column, name in enumerate(batch.variables):
            assert matrix[row, column] == pytest.approx(
                applied[name], rel=1e-12, abs=1e-12
            )


def test_set_then_scale_ordering_parity():
    provenance = ProvenanceSet(
        {("g",): Polynomial({Monomial.of("a"): 2.0, Monomial.of("b"): 3.0})}
    )
    scenario = (
        Scenario("ordered")
        .set_value(["a"], 10.0)
        .scale(["a"], 0.5)
        .scale(["b"], 2.0)
        .set_value(["b"], 7.0)
    )
    report = BatchEvaluator().evaluate(provenance, [scenario])
    expected = _sequential_results(provenance, scenario, Valuation())
    assert report.outcome(0).results[("g",)] == pytest.approx(expected[("g",)])
    # set after scale wins: b ends at 7, a at 5.
    assert report.outcome(0).results[("g",)] == pytest.approx(2.0 * 5.0 + 3.0 * 7.0)


def test_empty_selector_parity():
    provenance = ProvenanceSet(
        {("g",): Polynomial({Monomial.of("a"): 1.0})}
    )
    scenario = Scenario("ghost").scale(["missing"], 99.0).set_value([], 5.0)
    report = BatchEvaluator().evaluate(provenance, [scenario])
    assert report.outcome(0).results[("g",)] == pytest.approx(1.0)
    assert report.outcome(0).total_delta == pytest.approx(0.0)
