"""Unit tests for abstractions and the compression step."""

import pytest

from repro.exceptions import AbstractionError
from repro.core.compression import Abstraction, CompressionResult, apply_abstraction
from repro.core.cut import Cut
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


class TestAbstraction:
    def test_identity(self):
        abstraction = Abstraction.identity()
        assert abstraction.is_identity()
        assert abstraction.meta_variables() == ()

    def test_from_cut(self, simple_tree):
        abstraction = Abstraction.from_cut(Cut.of(simple_tree, "A", "B"))
        assert abstraction.mapping["a1"] == "A"
        assert abstraction.mapping["b1"] == "B"
        assert set(abstraction.meta_variables()) == {"A", "B"}

    def test_from_cuts_multiple_trees(self, simple_tree):
        from repro.core.abstraction_tree import AbstractionTree

        other = AbstractionTree.flat("M", ["m1", "m2"])
        abstraction = Abstraction.from_cuts(
            [Cut.of(simple_tree, "A", "B"), Cut.of(other, "M")]
        )
        assert abstraction.mapping["m1"] == "M"
        assert abstraction.mapping["a2"] == "A"

    def test_from_groups(self):
        abstraction = Abstraction.from_groups({"SB": ["b1", "b2"], "F": ["f1", "f2"]})
        assert abstraction.grouped_variables() == {
            "SB": ("b1", "b2"),
            "F": ("f1", "f2"),
        }

    def test_from_groups_rejects_overlap(self):
        with pytest.raises(AbstractionError):
            Abstraction.from_groups({"A": ["x"], "B": ["x"]})

    def test_degrees_of_freedom(self):
        abstraction = Abstraction.from_groups({"G": ["a", "b"]})
        assert abstraction.degrees_of_freedom(["a", "b", "c"]) == 2  # G and c

    def test_grouped_variables_sorted(self):
        abstraction = Abstraction.from_groups({"G": ["z", "a"]})
        assert abstraction.grouped_variables()["G"] == ("a", "z")


class TestApplyAbstraction:
    def test_example4_s1_on_p1(self, example2, fig2_tree):
        """Example 4: S1 compresses P1 to 4 monomials over 4 variables."""
        p1 = example2[("10001",)]
        result = apply_abstraction(p1, Cut.of(fig2_tree, "Business", "Special", "Standard"))
        compressed = result.compressed[(0,)]
        assert compressed.num_monomials() == 4
        assert len(compressed.variables()) == 4  # Special, Standard, m1, m3
        assert compressed.coefficient(Monomial.of("Special", "m1")) == pytest.approx(245.3)
        assert compressed.coefficient(Monomial.of("Special", "m3")) == pytest.approx(211.15)
        assert compressed.coefficient(Monomial.of("Standard", "m1")) == pytest.approx(208.8)
        assert compressed.coefficient(Monomial.of("Standard", "m3")) == pytest.approx(240.0)

    def test_example4_s5_on_p1(self, example2, fig2_tree):
        """Example 4: S5 (the root) compresses P1 to 2 monomials over 3 variables."""
        p1 = example2[("10001",)]
        result = apply_abstraction(p1, Cut.of(fig2_tree, "Plans"))
        compressed = result.compressed[(0,)]
        assert compressed.num_monomials() == 2
        assert len(compressed.variables()) == 3  # Plans, m1, m3
        # The m1 coefficient is the sum of P1's m1 coefficients:
        # 208.8 + 127.4 + 75.9 + 42 = 454.1.  (The paper prints 466.1, which
        # does not match its own P1; see EXPERIMENTS.md.)  The m3 coefficient
        # matches the paper exactly.
        assert compressed.coefficient(Monomial.of("Plans", "m1")) == pytest.approx(454.1)
        assert compressed.coefficient(Monomial.of("Plans", "m3")) == pytest.approx(451.15)

    def test_accepts_mapping_cut_or_abstraction(self, simple_provenance, simple_tree):
        cut = Cut.of(simple_tree, "R")
        by_cut = apply_abstraction(simple_provenance, cut)
        by_abstraction = apply_abstraction(simple_provenance, Abstraction.from_cut(cut))
        by_mapping = apply_abstraction(simple_provenance, cut.mapping())
        assert by_cut.compressed == by_abstraction.compressed == by_mapping.compressed

    def test_accepts_polynomial_and_sequence(self):
        p = Polynomial.from_terms([(1, ["a"]), (2, ["b"])])
        result = apply_abstraction([p, p], {"a": "g", "b": "g"})
        assert len(result.compressed) == 2
        assert result.compressed_size == 2

    def test_rejects_non_polynomial_sequence(self):
        with pytest.raises(AbstractionError):
            apply_abstraction([1, 2], {})

    def test_statistics(self, simple_provenance, simple_tree):
        result = apply_abstraction(simple_provenance, Cut.of(simple_tree, "A", "B"))
        assert result.original_size == simple_provenance.size()
        assert result.compressed_size == result.compressed.size()
        assert result.original_variables == simple_provenance.num_variables()
        assert result.compressed_variables == result.compressed.num_variables()
        assert result.size_reduction == result.original_size - result.compressed_size
        assert 0.0 < result.compression_ratio <= 1.0
        assert 0.0 < result.variable_retention <= 1.0

    def test_identity_abstraction_changes_nothing(self, simple_provenance):
        result = apply_abstraction(simple_provenance, Abstraction.identity())
        assert result.compressed == simple_provenance
        assert result.compression_ratio == 1.0

    def test_summary_keys(self, simple_provenance, simple_tree):
        summary = apply_abstraction(
            simple_provenance, Cut.of(simple_tree, "R")
        ).summary()
        assert {
            "original_size",
            "compressed_size",
            "compression_ratio",
            "original_variables",
            "compressed_variables",
            "variable_retention",
            "size_reduction",
        } <= set(summary)

    def test_compression_never_increases_size(self, simple_provenance, simple_tree):
        from repro.core.cut import enumerate_cuts

        for cut in enumerate_cuts(simple_tree):
            result = apply_abstraction(simple_provenance, cut)
            assert result.compressed_size <= result.original_size

    def test_evaluation_agrees_when_groups_share_values(self, example2, fig2_tree):
        """If all grouped variables get the same value, compression is lossless."""
        cut = Cut.of(fig2_tree, "Business", "Special", "Standard")
        result = apply_abstraction(example2, cut)
        full_valuation = {name: 1.0 for name in example2.variables()}
        # Scenario: all Special plans change by the same factor.
        for name in fig2_tree.leaves_under("Special"):
            if name in full_valuation:
                full_valuation[name] = 1.1
        compressed_valuation = {
            name: 1.0 for name in result.compressed.variables()
        }
        compressed_valuation["Special"] = 1.1
        full_results = example2.evaluate(full_valuation)
        compressed_results = result.compressed.evaluate(compressed_valuation)
        for key in full_results:
            assert compressed_results[key] == pytest.approx(full_results[key])
