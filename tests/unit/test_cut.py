"""Unit tests for cuts of abstraction trees."""

import pytest

from repro.exceptions import InvalidCutError
from repro.core.cut import Cut, count_cuts, enumerate_cuts, leaf_cut, root_cut
from repro.workloads.abstraction_trees import plans_tree


class TestValidation:
    def test_valid_cut(self, simple_tree):
        cut = Cut.of(simple_tree, "A", "C", "b1")
        assert len(cut) == 3
        assert "A" in cut

    def test_root_is_a_cut(self, simple_tree):
        assert root_cut(simple_tree).is_root_cut()

    def test_leaf_cut(self, simple_tree):
        cut = leaf_cut(simple_tree)
        assert cut.is_leaf_cut()
        assert cut.num_variables() == 5

    def test_uncovered_leaf_rejected(self, simple_tree):
        with pytest.raises(InvalidCutError):
            Cut.of(simple_tree, "A", "C")  # b1 uncovered

    def test_doubly_covered_leaf_rejected(self, simple_tree):
        with pytest.raises(InvalidCutError):
            Cut.of(simple_tree, "R", "A")  # a1 covered twice

    def test_unknown_node_rejected(self, simple_tree):
        with pytest.raises(InvalidCutError):
            Cut.of(simple_tree, "A", "B", "zzz")

    def test_empty_cut_rejected(self, simple_tree):
        with pytest.raises(InvalidCutError):
            Cut(simple_tree, [])


class TestSemantics:
    def test_mapping_groups_leaves(self, simple_tree):
        cut = Cut.of(simple_tree, "A", "B")
        mapping = cut.mapping()
        assert mapping == {
            "a1": "A", "a2": "A", "c1": "B", "c2": "B", "b1": "B",
        }

    def test_mapping_keeps_leaf_nodes_fixed(self, simple_tree):
        mapping = leaf_cut(simple_tree).mapping()
        assert all(key == value for key, value in mapping.items())

    def test_grouped_leaves(self, simple_tree):
        grouped = Cut.of(simple_tree, "A", "C", "b1").grouped_leaves()
        assert grouped["A"] == ("a1", "a2")
        assert grouped["C"] == ("c1", "c2")
        assert grouped["b1"] == ("b1",)

    def test_coarsen(self, simple_tree):
        cut = leaf_cut(simple_tree).coarsen("C")
        assert cut.nodes == frozenset({"a1", "a2", "C", "b1"})
        coarser = cut.coarsen("R")
        assert coarser.is_root_cut()

    def test_coarsen_noop_region_rejected(self, simple_tree):
        cut = Cut.of(simple_tree, "A", "B")
        with pytest.raises(InvalidCutError):
            cut.coarsen("C")  # C is below the existing cut node B? -> replaced set empty
        with pytest.raises(InvalidCutError):
            cut.coarsen("zzz")

    def test_coarsen_at_cut_node_returns_same_nodes(self, simple_tree):
        cut = Cut.of(simple_tree, "A", "B")
        assert cut.coarsen("A").nodes == cut.nodes

    def test_iteration_in_preorder(self, simple_tree):
        cut = Cut.of(simple_tree, "b1", "A", "C")
        assert list(cut) == ["A", "C", "b1"]

    def test_equality_and_hash(self, simple_tree):
        assert Cut.of(simple_tree, "A", "B") == Cut.of(simple_tree, "B", "A")
        assert hash(Cut.of(simple_tree, "A", "B")) == hash(Cut.of(simple_tree, "B", "A"))
        assert Cut.of(simple_tree, "A", "B") != leaf_cut(simple_tree)


class TestTrustedFastPath:
    """``Cut.trusted`` skips revalidation for internally-derived cuts, while
    the public constructor must keep rejecting malformed user cuts."""

    def test_trusted_equals_validated(self, simple_tree):
        trusted = Cut.trusted(simple_tree, ["A", "C", "b1"])
        assert trusted == Cut.of(simple_tree, "A", "C", "b1")
        assert hash(trusted) == hash(Cut.of(simple_tree, "A", "C", "b1"))
        assert trusted.mapping() == Cut.of(simple_tree, "A", "C", "b1").mapping()

    def test_coarsen_uses_fast_path_but_stays_valid(self, simple_tree):
        coarsened = leaf_cut(simple_tree).coarsen("C").coarsen("B")
        # Re-validating the derived node set must succeed.
        assert Cut(simple_tree, coarsened.nodes) == coarsened

    def test_leaf_and_root_cuts_stay_valid(self, simple_tree):
        assert Cut(simple_tree, leaf_cut(simple_tree).nodes).is_leaf_cut()
        assert Cut(simple_tree, root_cut(simple_tree).nodes).is_root_cut()

    def test_validating_constructor_still_rejects_malformed_cuts(self, simple_tree):
        # Regression: the fast path must not weaken the public constructor.
        with pytest.raises(InvalidCutError):
            Cut(simple_tree, [])  # empty
        with pytest.raises(InvalidCutError):
            Cut(simple_tree, ["A", "C"])  # b1 uncovered
        with pytest.raises(InvalidCutError):
            Cut(simple_tree, ["R", "A"])  # a1 covered twice (not an antichain)
        with pytest.raises(InvalidCutError):
            Cut(simple_tree, ["A", "B", "zzz"])  # unknown node


class TestEnumeration:
    def test_enumerate_simple_tree(self, simple_tree):
        cuts = list(enumerate_cuts(simple_tree))
        # R: 1 + (#cuts of A) * (#cuts of B); A: 1+1=2; B: 1 + (C:2 * b1:1) = 3
        assert len(cuts) == 1 + 2 * 3
        assert len({cut.nodes for cut in cuts}) == len(cuts)

    def test_count_matches_enumeration(self, simple_tree):
        assert count_cuts(simple_tree) == len(list(enumerate_cuts(simple_tree)))

    def test_every_enumerated_cut_is_valid(self, simple_tree):
        for cut in enumerate_cuts(simple_tree):
            # Constructing a Cut re-validates; also the mapping must cover all leaves.
            assert set(cut.mapping()) == set(simple_tree.leaves())

    def test_paper_cuts_are_enumerated(self):
        tree = plans_tree()
        enumerated = {frozenset(cut.nodes) for cut in enumerate_cuts(tree)}
        s1 = frozenset({"Business", "Special", "Standard"})
        s2 = frozenset({"SB", "e", "f1", "f2", "Y", "v", "Standard"})
        s3 = frozenset({"b1", "b2", "e", "Special", "Standard"})
        s4 = frozenset({"SB", "e", "F", "Y", "v", "p1", "p2"})
        s5 = frozenset({"Plans"})
        for cut in (s1, s2, s3, s4, s5):
            assert cut in enumerated

    def test_plans_tree_cut_count(self):
        tree = plans_tree()
        assert count_cuts(tree) == len(list(enumerate_cuts(tree)))
