"""Tests for the cobralint static-analysis suite (tools/cobralint).

Per rule: a fixture snippet that must fire (positive), one that must not
(negative), and one where an inline suppression silences the finding.  Plus
the meta-gates: the checked-in tree lints clean, every suppression in the
tree carries a justification, and the strict-typing ratchet holds.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.cobralint import lint_paths  # noqa: E402
from tools.cobralint.engine import Suppressions  # noqa: E402
from tools.cobralint.ratchet import (  # noqa: E402
    annotation_gaps,
    check_lock_superset,
    load_lock,
    load_strict_modules,
    modules_for_patterns,
)


def run_rule(tmp_path, files, select=None):
    """Write ``{relative_path: source}`` fixtures and lint their roots."""
    roots = set()
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        roots.add(rel.split("/")[0])
    return lint_paths(sorted(roots), root=str(tmp_path), select=select)


def active(findings, rule=None):
    return [
        f
        for f in findings
        if not f.suppressed and (rule is None or f.rule == rule)
    ]


def suppressed(findings, rule=None):
    return [
        f for f in findings if f.suppressed and (rule is None or f.rule == rule)
    ]


# ---------------------------------------------------------------------------
# CL001 — memmap mutation
# ---------------------------------------------------------------------------


class TestMemmapMutation:
    def test_write_into_store_backed_array_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/mod.py": """
                from repro.provenance.store import open_store

                def bad(path):
                    compiled = open_store(path)
                    compiled._constant[0] = 1.0
                """
            },
            select=["CL001"],
        )
        assert len(active(findings, "CL001")) == 1

    def test_augmented_write_through_taint_chain_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def bad(store_path):
                    compiled = open_store(store_path)
                    arr = compiled.coefficients
                    arr[3] += 2.0
                """
            },
            select=["CL001"],
        )
        assert len(active(findings, "CL001")) == 1

    def test_mutating_method_and_scatter_fire(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/mod.py": """
                import numpy as np

                def bad(path):
                    compiled = open_store(path)
                    compiled.indices.sort()
                    np.add.at(compiled.exponents, [0], 1.0)
                """
            },
            select=["CL001"],
        )
        assert len(active(findings, "CL001")) == 2

    def test_laundered_copy_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/mod.py": """
                def good(path):
                    compiled = open_store(path)
                    scratch = compiled._constant.copy()
                    scratch[0] = 1.0
                    scratch.sort()
                """
            },
            select=["CL001"],
        )
        assert active(findings, "CL001") == []

    def test_builder_filling_own_array_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/mod.py": """
                import numpy as np

                class Compiled:
                    def __init__(self, rows):
                        self._constant = np.zeros(rows)
                        self._constant[0] += 1.0
                """
            },
            select=["CL001"],
        )
        assert active(findings, "CL001") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/mod.py": """
                def bad(path):
                    compiled = open_store(path)
                    compiled._constant[0] = 1.0  # cobralint: disable=CL001 -- fixture
                """
            },
            select=["CL001"],
        )
        assert active(findings, "CL001") == []
        (finding,) = suppressed(findings, "CL001")
        assert finding.justification == "fixture"


# ---------------------------------------------------------------------------
# CL002 — unpicklable worker payloads
# ---------------------------------------------------------------------------


class TestWorkerPayload:
    def test_lambda_payload_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def run(items):
                    return _process_map(lambda x: x + 1, items)
                """
            },
            select=["CL002"],
        )
        assert len(active(findings, "CL002")) == 1

    def test_nested_function_payload_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def run(items):
                    def task(x):
                        return x + 1
                    return _process_map(task, items)
                """
            },
            select=["CL002"],
        )
        assert len(active(findings, "CL002")) == 1

    def test_singleton_in_initargs_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                from repro.obs.tracer import get_tracer

                def run():
                    return _bringup_pool(
                        2, initializer=_init, initargs=(get_tracer(),)
                    )
                """
            },
            select=["CL002"],
        )
        assert len(active(findings, "CL002")) == 1

    def test_pool_method_with_singleton_name_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def run(task):
                    tracer = get_tracer()
                    pool = _bringup_pool(2)
                    pool.map(task, tracer)
                """
            },
            select=["CL002"],
        )
        assert len(active(findings, "CL002")) == 1

    def test_module_level_function_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def worker(x):
                    return x + 1

                def run(items):
                    return _process_map(worker, items)
                """
            },
            select=["CL002"],
        )
        assert active(findings, "CL002") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def run(items):
                    return _process_map(lambda x: x, items)  # cobralint: disable=CL002 -- fixture
                """
            },
            select=["CL002"],
        )
        assert active(findings, "CL002") == []
        assert len(suppressed(findings, "CL002")) == 1


# ---------------------------------------------------------------------------
# CL003 — hot-path allocation
# ---------------------------------------------------------------------------


class TestHotPathAllocation:
    def test_copy_under_loop_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/valuation.py": """
                import numpy as np

                def evaluate_matrix(matrix):
                    totals = np.zeros(4)
                    for s in range(3):
                        row = totals.copy()
                    return totals
                """
            },
            select=["CL003"],
        )
        assert len(active(findings, "CL003")) == 1

    def test_dtype_constructor_under_loop_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/backends/numeric.py": """
                import numpy as np

                def evaluate_deltas(base, plans):
                    for columns, values in plans:
                        columns = np.asarray(columns, dtype=int)
                    return base
                """
            },
            select=["CL003"],
        )
        assert len(active(findings, "CL003")) == 1

    def test_python_loop_over_ndarray_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/kernel/greedy.py": """
                import numpy as np

                def run(state):
                    weights = np.arange(10)
                    for w in weights:
                        state += w
                    return state
                """
            },
            select=["CL003"],
        )
        assert len(active(findings, "CL003")) == 1

    def test_entry_normalisation_outside_loop_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/valuation.py": """
                import numpy as np

                def evaluate_matrix(matrix):
                    matrix = np.asarray(matrix, dtype=np.float64)
                    scratch = matrix.copy()
                    for s in range(3):
                        scratch[s] = 0.0
                    return scratch
                """
            },
            select=["CL003"],
        )
        assert active(findings, "CL003") == []

    def test_factor_batch_copy_under_loop_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/factored.py": """
                import numpy as np

                def factor_batch(batch):
                    factored_row = np.ones(8)
                    for operations in batch:
                        values = factored_row.copy()
                    return factored_row
                """
            },
            select=["CL003"],
        )
        assert len(active(findings, "CL003")) == 1

    def test_factor_batch_fancy_indexing_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/factored.py": """
                import numpy as np

                def factor_batch(batch):
                    factored_row = np.ones(8)
                    for touched in batch:
                        values = factored_row[touched] * 2.0
                    return factored_row
                """
            },
            select=["CL003"],
        )
        assert active(findings, "CL003") == []

    def test_non_kernel_function_is_exempt(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/valuation.py": """
                import numpy as np

                def helper(matrix):
                    for s in range(3):
                        row = matrix.copy()
                    return row
                """
            },
            select=["CL003"],
        )
        assert active(findings, "CL003") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/valuation.py": """
                import numpy as np

                def evaluate_deltas(base, plans):
                    for s in range(3):
                        row = base.copy()  # cobralint: disable=CL003 -- fixture
                    return base
                """
            },
            select=["CL003"],
        )
        assert active(findings, "CL003") == []
        assert len(suppressed(findings, "CL003")) == 1


# ---------------------------------------------------------------------------
# CL004 — tracer discipline
# ---------------------------------------------------------------------------


class TestTracerDiscipline:
    def test_trace_outside_with_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                from repro.obs.tracer import trace

                def bad():
                    span = trace("step")
                    return span
                """
            },
            select=["CL004"],
        )
        assert len(active(findings, "CL004")) == 1

    def test_unsafe_attribute_on_span_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                from repro.obs.tracer import trace

                def bad():
                    with trace("step") as span:
                        return span.duration
                """
            },
            select=["CL004"],
        )
        assert len(active(findings, "CL004")) == 1

    def test_with_and_safe_writers_are_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                from repro.obs.tracer import current_span, trace

                def good(n):
                    with trace("step", size=n) as span:
                        span.set("mode", "fast")
                        span.update({"rows": n})
                    current_span().set("note", 1)
                """
            },
            select=["CL004"],
        )
        assert active(findings, "CL004") == []

    def test_span_name_does_not_leak_across_functions(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                from repro.obs.tracer import trace

                def traced():
                    with trace("step") as span:
                        span.set("k", 1)

                def drainer(tracer):
                    return [span.to_dict() for span in tracer.drain()]
                """
            },
            select=["CL004"],
        )
        assert active(findings, "CL004") == []

    def test_obs_package_is_exempt(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/obs/mod.py": """
                from repro.obs.tracer import trace

                def internals():
                    span = trace("step")
                    return span.children
                """
            },
            select=["CL004"],
        )
        assert active(findings, "CL004") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                from repro.obs.tracer import trace

                def bad():
                    span = trace("step")  # cobralint: disable=CL004 -- fixture
                    return span
                """
            },
            select=["CL004"],
        )
        assert active(findings, "CL004") == []
        assert len(suppressed(findings, "CL004")) == 1


# ---------------------------------------------------------------------------
# CL005 — broad exceptions
# ---------------------------------------------------------------------------


class TestBroadException:
    def test_bare_except_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                def f(g):
                    try:
                        g()
                    except:
                        pass
                """
            },
            select=["CL005"],
        )
        assert len(active(findings, "CL005")) == 1

    def test_swallowed_broad_except_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                def f(g):
                    try:
                        g()
                    except Exception:
                        return None
                """
            },
            select=["CL005"],
        )
        assert len(active(findings, "CL005")) == 1

    def test_narrow_or_reraising_handlers_are_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                def f(g):
                    try:
                        g()
                    except ValueError:
                        return None
                    except Exception as exc:
                        raise RuntimeError("wrapped") from exc
                """
            },
            select=["CL005"],
        )
        assert active(findings, "CL005") == []

    def test_tests_are_exempt(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "tests/unit/test_mod.py": """
                def test_probe(g):
                    try:
                        g()
                    except:
                        pass
                """
            },
            select=["CL005"],
        )
        assert active(findings, "CL005") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                def f(g):
                    try:
                        g()
                    except Exception:  # cobralint: disable=CL005 -- fixture
                        pass
                """
            },
            select=["CL005"],
        )
        assert active(findings, "CL005") == []
        assert len(suppressed(findings, "CL005")) == 1


# ---------------------------------------------------------------------------
# CL006 — layering
# ---------------------------------------------------------------------------


class TestLayering:
    def test_lower_layer_importing_higher_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/bad.py": """
                from repro.batch.evaluator import BatchEvaluator
                """,
                "src/repro/batch/evaluator.py": """
                class BatchEvaluator:
                    pass
                """,
            },
            select=["CL006"],
        )
        assert len(active(findings, "CL006")) == 1
        assert "provenance" in active(findings, "CL006")[0].message

    def test_module_level_cycle_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/a.py": """
                from repro.core.b import beta
                alpha = 1
                """,
                "src/repro/core/b.py": """
                from repro.core.a import alpha
                beta = 2
                """,
            },
            select=["CL006"],
        )
        cycle = active(findings, "CL006")
        assert len(cycle) == 1
        assert "cycle" in cycle[0].message

    def test_obs_must_stay_pure_even_lazily(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/obs/bad.py": """
                def render():
                    from repro.core.compression import compress
                    return compress
                """
            },
            select=["CL006"],
        )
        assert len(active(findings, "CL006")) == 1

    def test_workloads_must_never_import_cli(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/workloads/gen.py": """
                def main():
                    from repro.cli.main import main as cli_main
                    return cli_main
                """
            },
            select=["CL006"],
        )
        assert len(active(findings, "CL006")) == 1

    def test_lazy_and_type_checking_imports_are_sanctioned(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/session.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.batch.evaluator import BatchEvaluator

                def sweep():
                    from repro.batch.evaluator import BatchEvaluator
                    return BatchEvaluator
                """,
                "src/repro/batch/evaluator.py": """
                from repro.engine.scenario import Scenario
                """,
                "src/repro/engine/scenario.py": """
                class Scenario:
                    pass
                """,
            },
            select=["CL006"],
        )
        assert active(findings, "CL006") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/provenance/bad.py": """
                from repro.batch.evaluator import BatchEvaluator  # cobralint: disable=CL006 -- fixture
                """,
                "src/repro/batch/evaluator.py": """
                class BatchEvaluator:
                    pass
                """,
            },
            select=["CL006"],
        )
        assert active(findings, "CL006") == []
        assert len(suppressed(findings, "CL006")) == 1


# ---------------------------------------------------------------------------
# CL007 — retry discipline
# ---------------------------------------------------------------------------


class TestRetryDiscipline:
    def test_sleep_in_loop_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                import time

                def f(g):
                    for item in g:
                        time.sleep(0.1)
                """
            },
            select=["CL007"],
        )
        assert len(active(findings, "CL007")) == 1
        assert "time.sleep" in active(findings, "CL007")[0].message

    def test_ad_hoc_retry_loop_fires(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                def f(g):
                    for attempt in range(5):
                        try:
                            return g()
                        except OSError:
                            continue
                """
            },
            select=["CL007"],
        )
        assert len(active(findings, "CL007")) == 1
        assert "RetryPolicy" in active(findings, "CL007")[0].message

    def test_while_retry_with_sleep_fires_both(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                import time

                def f(g):
                    while True:
                        try:
                            return g()
                        except OSError:
                            time.sleep(1.0)
                """
            },
            select=["CL007"],
        )
        assert len(active(findings, "CL007")) == 2

    def test_per_item_error_isolation_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/batch/mod.py": """
                def harvest(futures, results):
                    for index, future in futures:
                        try:
                            results[index] = future.result()
                        except OSError:
                            results[index] = None
                """
            },
            select=["CL007"],
        )
        assert active(findings, "CL007") == []

    def test_bounded_escape_handlers_are_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                def f(g):
                    for attempt in range(5):
                        try:
                            return g()
                        except OSError:
                            if attempt == 4:
                                raise
                    while True:
                        try:
                            return g()
                        except ValueError:
                            break
                """
            },
            select=["CL007"],
        )
        assert active(findings, "CL007") == []

    def test_retry_policy_module_is_exempt(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/resilience/retry.py": """
                import time

                def run(func, delays):
                    for attempt, delay in enumerate(delays):
                        try:
                            return func()
                        except OSError:
                            time.sleep(delay)
                """
            },
            select=["CL007"],
        )
        assert active(findings, "CL007") == []

    def test_suppression_silences(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/engine/mod.py": """
                def f(g):
                    while True:
                        try:  # cobralint: disable=CL007 -- fixture
                            return g()
                        except OSError:
                            continue
                """
            },
            select=["CL007"],
        )
        assert active(findings, "CL007") == []
        assert len(suppressed(findings, "CL007")) == 1


# ---------------------------------------------------------------------------
# The engine itself
# ---------------------------------------------------------------------------


class TestEngine:
    def test_unparseable_file_produces_cl000(self, tmp_path):
        findings = run_rule(
            tmp_path, {"src/repro/core/broken.py": "def f(:\n"}
        )
        assert [f.rule for f in findings] == ["CL000"]

    def test_standalone_suppression_covers_next_code_line(self):
        source = (
            "x = 1\n"
            "# cobralint: disable=CL001 -- reason here\n"
            "y = 2\n"
            "z = 3\n"
        )
        sup = Suppressions.parse(source)
        assert sup.lookup("CL001", 3) == (True, "reason here")
        assert sup.lookup("CL001", 4) == (False, None)

    def test_disable_all(self):
        sup = Suppressions.parse("x = 1  # cobralint: disable=all\n")
        assert sup.lookup("CL003", 1)[0] is True

    def test_select_limits_rules(self, tmp_path):
        findings = run_rule(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                def f(g):
                    try:
                        g()
                    except:
                        pass
                """
            },
            select=["CL001"],
        )
        assert findings == []

    def test_cli_exit_codes_and_json(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(g):\n    try:\n        g()\n    except:\n        pass\n")
        report = tmp_path / "report.json"
        proc = subprocess.run(
            [sys.executable, "-m", "tools.cobralint", "src", "--json", str(report)],
            cwd=str(tmp_path),
            env={"PYTHONPATH": str(REPO_ROOT), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "CL005" in proc.stdout
        payload = report.read_text()
        assert '"tool": "cobralint"' in payload
        assert '"CL005"' in payload


# ---------------------------------------------------------------------------
# The checked-in tree
# ---------------------------------------------------------------------------


class TestTreeIsClean:
    def test_checked_in_tree_has_no_active_findings(self):
        findings = lint_paths(
            ["src", "tests", "benchmarks"], root=str(REPO_ROOT)
        )
        offenders = [f.render() for f in findings if not f.suppressed]
        assert offenders == [], "\n".join(offenders)

    def test_every_suppression_carries_a_justification(self):
        findings = lint_paths(
            ["src", "tests", "benchmarks"], root=str(REPO_ROOT)
        )
        unjustified = [
            f.render() for f in findings if f.suppressed and not f.justification
        ]
        assert unjustified == [], "\n".join(unjustified)


# ---------------------------------------------------------------------------
# The strict-typing ratchet
# ---------------------------------------------------------------------------


class TestRatchet:
    def test_lock_is_covered_by_pyproject(self):
        assert check_lock_superset(load_strict_modules(), load_lock()) == []

    def test_shrinking_the_strict_list_is_detected(self):
        missing = check_lock_superset(["repro.obs.*"], load_lock())
        assert "repro.provenance.store" in missing

    def test_patterns_expand_to_real_modules(self):
        modules = modules_for_patterns(load_lock())
        assert "repro.provenance.store" in modules
        assert "repro.obs.tracer" in modules
        assert "repro.provenance.backends.numeric" in modules
        assert "repro.batch.evaluator" not in modules

    def test_ratcheted_modules_are_fully_annotated(self):
        gaps = {
            module: annotation_gaps(path)
            for module, path in modules_for_patterns(load_lock()).items()
        }
        assert {m: g for m, g in gaps.items() if g} == {}

    def test_annotation_gaps_detects_missing_annotations(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(x):\n    return x\n\ndef g(y: int) -> int:\n    return y\n"
        )
        gaps = annotation_gaps(str(path))
        assert len(gaps) == 2  # parameter x + missing return on f
        assert all("f()" in message for _line, message in gaps)

    def test_ratchet_cli_passes_on_the_tree(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.cobralint.ratchet", "--skip-mypy"],
            cwd=str(REPO_ROOT),
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
