"""Unit tests for the forest optimiser and its method dispatch."""

import pytest

from repro.exceptions import InfeasibleBoundError, UnsupportedPolynomialError
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.core.multi_tree import optimize_forest
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


@pytest.fixture
def two_tree_instance():
    plans = AbstractionTree("P", {"P": ["p1", "p2", "p3"]})
    months = AbstractionTree("M", {"M": ["Q1", "Q2"], "Q1": ["m1", "m2"], "Q2": ["m3", "m4"]})
    forest = AbstractionForest([plans, months])
    provenance = ProvenanceSet()
    terms = {}
    for plan in ("p1", "p2", "p3"):
        for month in ("m1", "m2", "m3", "m4"):
            terms[Monomial.of(plan, month)] = 1.0 + len(terms)
    provenance[("g",)] = Polynomial(terms)
    return provenance, forest


class TestDispatch:
    def test_single_tree_auto_uses_dp(self, simple_provenance, simple_tree):
        result = optimize_forest(simple_provenance, simple_tree, bound=8)
        assert result.algorithm == "dynamic-programming"

    def test_method_dp_forced(self, simple_provenance, simple_tree):
        result = optimize_forest(simple_provenance, simple_tree, bound=8, method="dp")
        assert result.algorithm == "dynamic-programming"

    def test_method_dp_raises_on_unsupported_polynomials(self):
        tree = AbstractionTree("R", {"R": ["x", "y"]})
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial({Monomial.of("x", "y"): 1.0})
        with pytest.raises(UnsupportedPolynomialError):
            optimize_forest(provenance, tree, bound=1, method="dp")

    def test_auto_falls_back_when_dp_unsupported(self):
        tree = AbstractionTree("R", {"R": ["x", "y"]})
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial({Monomial.of("x", "y"): 1.0, Monomial.of("x"): 1.0})
        result = optimize_forest(provenance, tree, bound=2, method="auto")
        assert result.feasible
        assert result.algorithm in ("exhaustive-forest", "greedy")

    def test_method_exact(self, two_tree_instance):
        provenance, forest = two_tree_instance
        result = optimize_forest(provenance, forest, bound=6, method="exact")
        assert result.algorithm == "exhaustive-forest"
        assert result.achieved_size <= 6

    def test_method_greedy(self, two_tree_instance):
        provenance, forest = two_tree_instance
        result = optimize_forest(provenance, forest, bound=6, method="greedy")
        assert result.algorithm == "greedy"
        assert result.achieved_size <= 6

    def test_exact_refuses_huge_forests(self, two_tree_instance):
        provenance, forest = two_tree_instance
        with pytest.raises(ValueError):
            optimize_forest(
                provenance, forest, bound=6, method="exact", max_combinations=2
            )

    def test_auto_switches_to_greedy_for_huge_forests(self, two_tree_instance):
        provenance, forest = two_tree_instance
        result = optimize_forest(
            provenance, forest, bound=6, method="auto", max_combinations=2
        )
        assert result.algorithm == "greedy"

    def test_unknown_method_rejected(self, two_tree_instance):
        provenance, forest = two_tree_instance
        with pytest.raises(ValueError):
            optimize_forest(provenance, forest, bound=6, method="magic")

    def test_negative_bound_rejected(self, two_tree_instance):
        provenance, forest = two_tree_instance
        with pytest.raises(ValueError):
            optimize_forest(provenance, forest, bound=-1)


class TestExhaustiveForest:
    def test_optimises_across_both_trees(self, two_tree_instance):
        provenance, forest = two_tree_instance
        # Full size is 12.  Bound 6: either collapsing months to quarters
        # (3 plans x 2 quarters = 6 monomials) or collapsing the plans tree
        # (1 x 4 months = 4 monomials) retains 5 variables, which is optimal.
        result = optimize_forest(provenance, forest, bound=6, method="exact")
        assert result.achieved_size <= 6
        total_vars = sum(cut.num_variables() for cut in result.cuts)
        assert total_vars == 5

    def test_bound_one_collapses_everything(self, two_tree_instance):
        provenance, forest = two_tree_instance
        result = optimize_forest(provenance, forest, bound=1, method="exact")
        assert result.achieved_size == 1
        assert all(cut.is_root_cut() for cut in result.cuts)

    def test_infeasible_raises(self, two_tree_instance):
        provenance, forest = two_tree_instance
        with pytest.raises(InfeasibleBoundError):
            optimize_forest(provenance, forest, bound=0, method="exact")

    def test_infeasible_allowed(self, two_tree_instance):
        provenance, forest = two_tree_instance
        result = optimize_forest(
            provenance, forest, bound=0, method="exact", allow_infeasible=True
        )
        assert not result.feasible
        assert result.achieved_size == 1

    def test_greedy_matches_exact_on_this_instance(self, two_tree_instance):
        provenance, forest = two_tree_instance
        for bound in (12, 6, 4, 3, 1):
            exact = optimize_forest(provenance, forest, bound=bound, method="exact")
            greedy = optimize_forest(provenance, forest, bound=bound, method="greedy")
            assert greedy.achieved_size <= bound
            assert exact.achieved_size <= bound
            total_exact = sum(cut.num_variables() for cut in exact.cuts)
            total_greedy = sum(cut.num_variables() for cut in greedy.cuts)
            assert total_greedy <= total_exact
