"""Unit tests for the TPC-H-style generator and its provenance queries."""

import pytest

from repro.core.multi_tree import optimize_forest
from repro.workloads.abstraction_trees import (
    market_segment_tree,
    nation_variable,
    region_nation_tree,
    segment_variable,
)
from repro.workloads.tpch import (
    MARKET_SEGMENTS,
    NATIONS_BY_REGION,
    TpchConfig,
    generate_tpch_catalog,
)
from repro.workloads.tpch_queries import (
    all_tpch_queries,
    q1_pricing_summary,
    q3_segment_revenue,
    q5_local_supplier_volume,
    q6_forecast_revenue,
    q10_returned_items,
)


class TestGenerator:
    def test_reference_tables(self, tiny_tpch_catalog):
        assert len(tiny_tpch_catalog.get("REGION")) == 5
        assert len(tiny_tpch_catalog.get("NATION")) == 25

    def test_row_counts_follow_config(self, tiny_tpch_catalog):
        config = TpchConfig(scale=0.0003, orders_per_customer=4)
        assert len(tiny_tpch_catalog.get("CUSTOMER")) == config.num_customers
        assert len(tiny_tpch_catalog.get("ORDERS")) == config.num_orders
        assert len(tiny_tpch_catalog.get("SUPPLIER")) == config.num_suppliers
        assert len(tiny_tpch_catalog.get("LINEITEM")) >= config.num_orders

    def test_foreign_keys_resolve(self, tiny_tpch_catalog):
        nation_keys = set(tiny_tpch_catalog.get("NATION").column_values("N_NATIONKEY"))
        customer_nations = set(
            tiny_tpch_catalog.get("CUSTOMER").column_values("C_NATIONKEY")
        )
        assert customer_nations <= nation_keys

        order_keys = set(tiny_tpch_catalog.get("ORDERS").column_values("O_ORDERKEY"))
        lineitem_orders = set(
            tiny_tpch_catalog.get("LINEITEM").column_values("L_ORDERKEY")
        )
        assert lineitem_orders <= order_keys

    def test_dates_and_months_consistent(self, tiny_tpch_catalog):
        for row in tiny_tpch_catalog.get("LINEITEM"):
            month_from_date = int(str(row["L_SHIPDATE"]).split("-")[1])
            assert month_from_date == row["L_SHIPMONTH"]

    def test_deterministic(self):
        config = TpchConfig(scale=0.0002)
        first = generate_tpch_catalog(config)
        second = generate_tpch_catalog(config)
        assert first.get("LINEITEM").rows() == second.get("LINEITEM").rows()

    def test_segments_within_official_list(self, tiny_tpch_catalog):
        segments = set(tiny_tpch_catalog.get("CUSTOMER").column_values("C_MKTSEGMENT"))
        assert segments <= set(MARKET_SEGMENTS)


class TestTrees:
    def test_region_nation_tree_structure(self):
        tree = region_nation_tree(NATIONS_BY_REGION)
        assert len(tree.leaves()) == 25
        assert set(tree.children("World")) == {
            region.replace(" ", "_") for region in NATIONS_BY_REGION
        }
        assert nation_variable("UNITED STATES") in tree.leaves()
        assert set(tree.leaves_under("MIDDLE_EAST")) == {
            nation_variable(n) for n in NATIONS_BY_REGION["MIDDLE EAST"]
        }

    def test_market_segment_tree_structure(self):
        tree = market_segment_tree(MARKET_SEGMENTS)
        assert len(tree.leaves()) == len(MARKET_SEGMENTS)
        assert segment_variable("AUTOMOBILE") in tree.leaves_under("Consumer")
        assert segment_variable("MACHINERY") in tree.leaves_under("BusinessSegments")


class TestQueries:
    def test_q1_shape(self, tiny_tpch_catalog):
        item = q1_pricing_summary(tiny_tpch_catalog)
        assert item.name == "Q1"
        assert len(item.provenance) >= 1
        variables = item.provenance.variables()
        assert variables <= {f"m{month}" for month in range(1, 13)}

    def test_q3_uses_two_trees(self, tiny_tpch_catalog):
        item = q3_segment_revenue(tiny_tpch_catalog)
        variables = item.provenance.variables()
        assert any(name.startswith("seg_") for name in variables)
        assert any(name.startswith("m") and not name.startswith("seg") for name in variables)
        assert len(item.trees.trees()) == 2

    def test_q5_nation_variables(self, tiny_tpch_catalog):
        item = q5_local_supplier_volume(tiny_tpch_catalog)
        variables = item.provenance.variables()
        assert all(name.startswith("n_") for name in variables)
        # One polynomial per order year; each has at most 25 monomials.
        for _key, polynomial in item.provenance.items():
            assert polynomial.num_monomials() <= 25

    def test_q6_single_polynomial_over_months(self, tiny_tpch_catalog):
        item = q6_forecast_revenue(tiny_tpch_catalog)
        assert len(item.provenance) == 1
        assert item.provenance.size() <= 12

    def test_q10_groups_by_nation(self, tiny_tpch_catalog):
        item = q10_returned_items(tiny_tpch_catalog)
        assert len(item.provenance) <= 25
        assert item.provenance.variables() <= {f"m{m}" for m in range(1, 13)}

    def test_all_queries_compress_under_their_trees(self, tiny_tpch_catalog):
        for item in all_tpch_queries(tiny_tpch_catalog):
            full = item.provenance.size()
            if full < 2:
                continue
            bound = max(1, full // 2)
            result = optimize_forest(
                item.provenance, item.trees, bound, allow_infeasible=True
            )
            assert result.achieved_size <= full
            if result.feasible:
                assert result.achieved_size <= bound
