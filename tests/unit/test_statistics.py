"""Unit tests for provenance statistics."""

import pytest

from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.statistics import describe_provenance


@pytest.fixture
def provenance():
    result = ProvenanceSet()
    result[("a",)] = Polynomial(
        {
            Monomial.of("x", "m1"): 2.0,
            Monomial.of("y", "m1"): -3.0,
            Monomial({"x": 2}): 1.0,
        }
    )
    result[("b",)] = Polynomial({Monomial.of("x"): 4.0, Monomial.unit(): 1.0})
    return result


class TestDescribeProvenance:
    def test_scalar_fields(self, provenance):
        stats = describe_provenance(provenance)
        assert stats.num_groups == 2
        assert stats.size == 5
        assert stats.num_variables == 3
        assert stats.min_monomials_per_group == 2
        assert stats.max_monomials_per_group == 3
        assert stats.mean_monomials_per_group == pytest.approx(2.5)

    def test_degree_histogram(self, provenance):
        stats = describe_provenance(provenance)
        assert stats.degree_histogram == {0: 1, 1: 1, 2: 3}

    def test_variable_occurrences(self, provenance):
        stats = describe_provenance(provenance)
        assert stats.variable_occurrences["x"] == 3
        assert stats.variable_occurrences["m1"] == 2
        assert stats.variable_occurrences["y"] == 1

    def test_variable_mass_uses_absolute_values(self, provenance):
        stats = describe_provenance(provenance)
        assert stats.variable_mass["y"] == pytest.approx(3.0)
        assert stats.variable_mass["x"] == pytest.approx(2.0 + 1.0 + 4.0)

    def test_top_variables(self, provenance):
        stats = describe_provenance(provenance)
        assert stats.top_variables_by_occurrence(1)[0][0] == "x"
        assert stats.top_variables_by_mass(1)[0][0] == "x"
        assert len(stats.top_variables_by_occurrence(2)) == 2

    def test_empty_provenance(self):
        stats = describe_provenance(ProvenanceSet())
        assert stats.num_groups == 0
        assert stats.size == 0
        assert stats.min_monomials_per_group == 0
        assert stats.mean_monomials_per_group == 0.0

    def test_as_dict_and_render(self, provenance):
        stats = describe_provenance(provenance)
        data = stats.as_dict()
        assert data["size"] == 5
        text = stats.render_text()
        assert "groups: 2" in text
        assert "x" in text

    def test_on_running_example(self, example2):
        stats = describe_provenance(example2)
        assert stats.size == 14
        assert stats.num_variables == 9
        # Every monomial of the running example is a product of two variables.
        assert stats.degree_histogram == {2: 14}
        # The month variables appear in the most monomials (7 each).
        top = dict(stats.top_variables_by_occurrence(2))
        assert top == {"m1": 7, "m3": 7}
