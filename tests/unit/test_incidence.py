"""Unit tests for the shared inverted incidence indexes (repro.provenance.incidence)."""

import numpy as np
import pytest

from repro.provenance.incidence import (
    ProvenanceIncidence,
    VariableIncidence,
    clear_provenance_incidence_cache,
    expand_segment_rows,
    provenance_incidence,
    ragged_ranges,
)
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


class TestRaggedRanges:
    def test_concatenates_ranges(self):
        positions, local_starts = ragged_ranges(
            np.array([0, 5, 9]), np.array([2, 8, 10])
        )
        assert list(positions) == [0, 1, 5, 6, 7, 9]
        assert list(local_starts) == [0, 2, 5]

    def test_empty_input(self):
        positions, local_starts = ragged_ranges(np.zeros(0), np.zeros(0))
        assert positions.size == 0
        assert local_starts.size == 0

    def test_zero_length_range(self):
        positions, local_starts = ragged_ranges(np.array([3, 4]), np.array([3, 6]))
        assert list(positions) == [4, 5]
        assert list(local_starts) == [0, 0]


class TestExpandSegmentRows:
    def test_repeats_rows_over_segment_lengths(self):
        rows = expand_segment_rows(
            np.array([0, 3, 4]), np.array([1, 4, 7]), total=6
        )
        assert list(rows) == [1, 1, 1, 4, 7, 7]


class TestVariableIncidence:
    def _index(self):
        # 4 monomials over 3 variables:  m0=v0*v2, m1=v2^2, m2=v0*v1, m3=v1
        indices = np.array([[0, 2], [2, 2], [0, 1], [1, 1]], dtype=np.intp)
        exponents = np.array(
            [[1, 1], [1, 1], [1, 2], [1, 1]], dtype=np.float64
        )
        return VariableIncidence.from_factor_arrays(3, indices, exponents)

    def test_rows_for_each_column(self):
        index = self._index()
        assert list(index.rows_for(0)) == [0, 2]
        assert list(index.rows_for(1)) == [2, 3, 3]
        assert list(index.rows_for(2)) == [0, 1, 1]

    def test_rows_for_any_unions_and_dedups(self):
        index = self._index()
        assert list(index.rows_for_any(np.array([0, 2]))) == [0, 1, 2]
        assert index.rows_for_any(np.zeros(0, dtype=np.intp)).size == 0

    def test_occurrences_align_exponents_with_positions(self):
        index = self._index()
        positions, exponents, counts = index.occurrences(np.array([1, 0]))
        assert list(positions) == [2, 3, 3, 0, 2]
        assert list(exponents) == [2.0, 1.0, 1.0, 1.0, 1.0]
        assert list(counts) == [3, 2]

    def test_matches_bruteforce_on_random_factors(self):
        rng = np.random.default_rng(5)
        # Canonical factors: distinct variables per monomial row.
        indices = np.stack(
            [rng.choice(10, size=3, replace=False) for _ in range(50)]
        ).astype(np.intp)
        exponents = rng.integers(1, 4, size=(50, 3)).astype(np.float64)
        index = VariableIncidence.from_factor_arrays(10, indices, exponents)
        for column in range(10):
            expected = sorted(np.flatnonzero((indices == column).any(axis=1)))
            assert list(index.rows_for_any(np.array([column]))) == expected
            assert list(index.rows_for_any(np.array([column, column]))) == expected


class TestProvenanceIncidence:
    @pytest.fixture
    def provenance(self):
        result = ProvenanceSet()
        result[("g1",)] = Polynomial(
            {Monomial.of("x", "y"): 2.0, Monomial.of("z"): 3.0, Monomial.unit(): 1.0}
        )
        result[("g2",)] = Polynomial({Monomial.of("x"): 4.0})
        return result

    def test_name_keyed_rows(self, provenance):
        incidence = ProvenanceIncidence(provenance)
        assert incidence.num_rows() == 4
        # Canonical term order per group: the unit monomial first, then the
        # sorted monomials — so g1 flattens to [1, x*y, z] and g2 to [x].
        assert list(incidence.rows_for("x")) == [1, 3]
        assert list(incidence.rows_for("z")) == [2]
        assert incidence.rows_for("ghost").size == 0

    def test_cached_by_fingerprint(self, provenance):
        clear_provenance_incidence_cache()
        first = provenance_incidence(provenance)
        clone = ProvenanceSet({key: poly for key, poly in provenance.items()})
        assert provenance_incidence(clone) is first
        provenance[("g3",)] = Polynomial({Monomial.of("w"): 1.0})
        assert provenance_incidence(provenance) is not first


class TestKernelIndexUnification:
    def test_kernel_index_reuses_shared_incidence(self):
        from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
        from repro.core.kernel.index import MonomialIncidenceIndex

        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial(
            {Monomial.of("a", "b"): 1.0, Monomial.of("b"): 2.0}
        )
        tree = AbstractionTree("R", {"R": ["a", "b"]})
        index = MonomialIncidenceIndex(provenance, AbstractionForest([tree]))
        shared = provenance_incidence(provenance)
        assert list(index.variable_rows["b"]) == list(shared.rows_for("b"))
        assert list(index.rows_under("R")) == [0, 1]
