"""Unit tests for the batch what-if subsystem (repro.batch)."""

import numpy as np
import pytest

from repro.batch import BatchEvaluator, BatchReport, ScenarioBatch
from repro.batch.evaluator import lower_meta_matrix
from repro.core.compression import Abstraction
from repro.engine.scenario import Scenario
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import CompiledProvenanceSet, Valuation


@pytest.fixture
def provenance():
    result = ProvenanceSet()
    result[("g1",)] = Polynomial(
        {Monomial.of("x", "y"): 2.0, Monomial.of("z"): 3.0, Monomial.unit(): 1.0}
    )
    result[("g2",)] = Polynomial({Monomial.of("x"): 4.0, Monomial.of("y", "z"): 5.0})
    return result


class TestScenarioBatch:
    def test_columns_are_sorted_variable_universe(self):
        batch = ScenarioBatch([], ["b", "a", "c", "a"])
        assert batch.variables == ("a", "b", "c")
        assert list(batch.columns_for(["c", "a"])) == [2, 0]

    def test_valuation_matrix_rows_match_scenario_apply(self):
        variables = ("a", "b", "c")
        scenarios = [
            Scenario("noop"),
            Scenario("scale").scale(["b"], 0.5),
            Scenario("set-then-scale").set_value(["a"], 4.0).scale(["a"], 0.5),
            Scenario("predicate").scale(lambda n: n != "b", 2.0),
        ]
        batch = ScenarioBatch(scenarios, variables)
        base = Valuation({"a": 1.0, "b": 2.0, "c": 3.0})
        matrix = batch.valuation_matrix(base)
        for row, scenario in enumerate(scenarios):
            applied = scenario.apply(base, variables)
            expected = [applied[name] for name in batch.variables]
            assert matrix[row] == pytest.approx(expected)

    def test_missing_base_variables_default_to_one(self):
        batch = ScenarioBatch([Scenario("s").scale(["a"], 3.0)], ["a", "b"])
        matrix = batch.valuation_matrix(Valuation({"b": 5.0}))
        assert matrix[0] == pytest.approx([3.0, 5.0])

    def test_empty_selector_is_a_noop(self):
        batch = ScenarioBatch(
            [Scenario("ghost").scale(["not-there"], 9.0)], ["a", "b"]
        )
        matrix = batch.valuation_matrix()
        assert matrix[0] == pytest.approx([1.0, 1.0])

    def test_names_preserve_row_order(self):
        batch = ScenarioBatch([Scenario("one"), Scenario("two")], ["a"])
        assert batch.names == ("one", "two")
        assert len(batch) == 2

    def test_touched_fraction_empty_universe(self):
        # An empty variable universe (or an empty batch) must report 0.0,
        # not divide by zero — the mode heuristic runs on every batch.
        scenarios = [Scenario("s").scale(["a"], 2.0)]
        assert ScenarioBatch(scenarios, []).touched_fraction() == 0.0
        assert ScenarioBatch([], ["a"]).touched_fraction() == 0.0
        assert ScenarioBatch([], []).touched_fraction() == 0.0


class TestEvaluateMatrix:
    def test_matches_per_valuation_evaluate(self, provenance):
        compiled = CompiledProvenanceSet(provenance)
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0.0, 2.0, size=(7, len(compiled.variables)))
        results = compiled.evaluate_matrix(matrix)
        for row in range(matrix.shape[0]):
            valuation = dict(zip(compiled.variables, matrix[row]))
            expected = compiled.evaluate(valuation)
            for column, key in enumerate(compiled.keys):
                assert results[row, column] == pytest.approx(expected[key])

    def test_shape_validation(self, provenance):
        compiled = CompiledProvenanceSet(provenance)
        with pytest.raises(ValueError):
            compiled.evaluate_matrix(np.ones((2, len(compiled.variables) + 1)))
        with pytest.raises(ValueError):
            compiled.evaluate_matrix(np.ones(len(compiled.variables)))

    def test_evaluate_many_mappings(self, provenance):
        compiled = CompiledProvenanceSet(provenance)
        valuations = [
            {name: 1.0 for name in compiled.variables},
            {name: 0.5 for name in compiled.variables},
        ]
        results = compiled.evaluate_many(valuations)
        assert results.shape == (2, len(compiled.keys))
        assert compiled.evaluate_many([]).shape == (0, len(compiled.keys))


class TestBatchEvaluatorCache:
    def test_compile_is_cached_by_fingerprint(self, provenance):
        evaluator = BatchEvaluator(cache_size=2)
        first = evaluator.compile(provenance)
        second = evaluator.compile(provenance)
        assert first is second
        assert evaluator.cache_info()["hits"] == 1
        assert evaluator.cache_info()["misses"] == 1

    def test_structurally_equal_sets_share_a_compilation(self, provenance):
        clone = ProvenanceSet({key: poly for key, poly in provenance.items()})
        evaluator = BatchEvaluator()
        assert evaluator.compile(provenance) is evaluator.compile(clone)

    def test_mutation_invalidates_fingerprint(self, provenance):
        evaluator = BatchEvaluator()
        first = evaluator.compile(provenance)
        provenance[("g3",)] = Polynomial({Monomial.of("w"): 1.0})
        second = evaluator.compile(provenance)
        assert first is not second
        assert evaluator.cache_info()["misses"] == 2

    def test_lru_eviction(self):
        evaluator = BatchEvaluator(cache_size=1)
        a = ProvenanceSet({("a",): Polynomial({Monomial.of("x"): 1.0})})
        b = ProvenanceSet({("b",): Polynomial({Monomial.of("y"): 1.0})})
        evaluator.compile(a)
        evaluator.compile(b)
        assert evaluator.cache_info()["entries"] == 1
        evaluator.compile(a)  # evicted, so recompiled
        assert evaluator.cache_info()["misses"] == 3

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BatchEvaluator(cache_size=0)
        with pytest.raises(ValueError):
            BatchEvaluator(max_workers=0)
        with pytest.raises(ValueError):
            BatchEvaluator(chunk_size=0)


class TestBatchEvaluatorEvaluate:
    def test_chunked_and_threaded_paths_agree(self, provenance):
        scenarios = [
            Scenario(f"s{i}").scale(["x"], 1.0 + i * 0.1) for i in range(10)
        ]
        plain = BatchEvaluator().evaluate(provenance, scenarios)
        chunked = BatchEvaluator(chunk_size=3).evaluate(provenance, scenarios)
        threaded = BatchEvaluator(chunk_size=3, max_workers=4).evaluate(
            provenance, scenarios
        )
        np.testing.assert_allclose(chunked.full_results, plain.full_results)
        np.testing.assert_allclose(threaded.full_results, plain.full_results)

    def test_baseline_uses_base_valuation(self, provenance):
        evaluator = BatchEvaluator()
        report = evaluator.evaluate(
            provenance, [Scenario("noop")], base_valuation={"x": 2.0}
        )
        expected = provenance.evaluate(
            Valuation.identity_for(provenance).updated({"x": 2.0})
        )
        for column, key in enumerate(report.keys):
            assert report.baseline[column] == pytest.approx(expected[key])
            assert report.full_results[0, column] == pytest.approx(expected[key])

    def test_compressed_requires_abstraction(self, provenance):
        with pytest.raises(ValueError):
            BatchEvaluator().evaluate(
                provenance, [Scenario("s")], compressed=provenance
            )

    def test_empty_scenario_list(self, provenance):
        report = BatchEvaluator().evaluate(provenance, [])
        assert len(report) == 0
        assert report.full_results.shape == (0, len(provenance))


class TestLowerMetaMatrix:
    def test_meta_columns_average_members(self):
        abstraction = Abstraction.from_groups({"M": ["x", "y"]})
        batch = ScenarioBatch([Scenario("s")], ["x", "y", "z"])
        matrix = np.array([[2.0, 4.0, 7.0]])
        lowered = lower_meta_matrix(abstraction, batch, matrix, ["M", "z"])
        assert lowered[0] == pytest.approx([3.0, 7.0])

    def test_unknown_variables_default_to_one(self):
        abstraction = Abstraction.from_groups({"M": ["absent1", "absent2"]})
        batch = ScenarioBatch([Scenario("s")], ["x"])
        lowered = lower_meta_matrix(
            abstraction, batch, np.array([[5.0]]), ["M", "other"]
        )
        assert lowered[0] == pytest.approx([1.0, 1.0])


class TestBatchReport:
    def _report(self):
        return BatchReport(
            scenario_names=("up", "down"),
            keys=(("g1",), ("g2",)),
            baseline=np.array([10.0, 20.0]),
            full_results=np.array([[12.0, 21.0], [9.0, 18.0]]),
            compressed_results=np.array([[12.5, 21.0], [9.0, 17.0]]),
            full_size=100,
            compressed_size=40,
        )

    def test_deltas_and_ranking(self):
        report = self._report()
        np.testing.assert_allclose(report.total_deltas, [3.0, -3.0])
        assert report.ranked_by_total_delta() == (0, 1)
        outcome = report.outcome(1)
        assert outcome.total_delta == pytest.approx(-3.0)
        assert outcome.deltas[("g2",)] == pytest.approx(-2.0)

    def test_abstraction_errors(self):
        report = self._report()
        assert report.max_absolute_error == pytest.approx(1.0)
        assert report.mean_absolute_error == pytest.approx(0.375)
        assert report.max_relative_error == pytest.approx(1.0 / 18.0)

    def test_errors_without_compressed_results(self):
        report = BatchReport(
            scenario_names=("s",),
            keys=(("g",),),
            baseline=np.array([1.0]),
            full_results=np.array([[2.0]]),
        )
        assert report.absolute_errors is None
        assert report.max_absolute_error == 0.0
        assert report.max_relative_error == 0.0

    def test_render_and_summary(self):
        report = self._report()
        text = report.render_text(max_rows=1)
        assert "2 scenarios x 2 result groups" in text
        assert "more scenarios" in text
        summary = report.summary()
        assert summary["scenarios"] == 2
        assert summary["compressed_size"] == 40
        assert report.outcome(0).as_dict()["name"] == "up"
