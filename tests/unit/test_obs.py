"""Unit tests for the observability layer (``repro.obs``).

Covers the span tracer (nesting, attributes, the disabled no-op fast path),
the metrics registry (counters/gauges/histograms, snapshot arithmetic, the
reset/scope lifecycle), cache-stat unification on the registry, trace
rendering/serialisation, and worker→parent aggregation under the process
pool.
"""

import json
import time

import pytest

from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    Span,
    aggregate_stages,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    load_trace,
    render_span_tree,
    render_stage_table,
    trace,
    tracing_enabled,
    current_span,
    write_trace,
)
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import FingerprintCache


@pytest.fixture
def traced():
    """Clean tracer + registry, tracing on; restores the prior state after."""
    tracer = get_tracer()
    registry = get_registry()
    was_enabled, was_cpu = tracer.enabled, tracer.cpu
    tracer.reset()
    registry.reset()
    enable_tracing()
    yield tracer
    tracer.reset()
    tracer.enabled, tracer.cpu = was_enabled, was_cpu
    registry.reset()


class TestSpans:
    def test_nesting_and_attributes(self, traced):
        with trace("outer", scenarios=3) as outer:
            with trace("inner") as inner:
                inner.set("rows", 7)
            outer.set("mode", "sparse")
        roots = traced.drain()
        assert [span.name for span in roots] == ["outer"]
        (outer,) = roots
        assert outer.attributes == {"scenarios": 3, "mode": "sparse"}
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.children[0].attributes == {"rows": 7}
        assert outer.duration >= outer.children[0].duration >= 0.0

    def test_sibling_roots_collect_in_order(self, traced):
        with trace("first"):
            pass
        with trace("second"):
            pass
        assert [span.name for span in traced.drain()] == ["first", "second"]

    def test_exception_is_recorded_and_propagates(self, traced):
        with pytest.raises(ValueError):
            with trace("boom"):
                raise ValueError("no")
        (span,) = traced.drain()
        assert span.attributes["error"] == "ValueError"

    def test_current_span_annotates_the_open_span(self, traced):
        with trace("outer"):
            current_span().set("note", "hi")
        (span,) = traced.drain()
        assert span.attributes["note"] == "hi"

    def test_cpu_time_sampling(self, traced):
        enable_tracing(cpu=True)
        with trace("busy"):
            sum(range(1000))
        (span,) = traced.drain()
        assert span.cpu_time is not None and span.cpu_time >= 0.0

    def test_roundtrip_through_dicts(self, traced):
        with trace("outer", n=1):
            with trace("inner"):
                pass
        (span,) = traced.drain()
        rebuilt = Span.from_dict(span.to_dict())
        assert rebuilt.name == "outer"
        assert rebuilt.attributes == {"n": 1}
        assert [child.name for child in rebuilt.children] == ["inner"]
        assert rebuilt.duration == span.duration

    def test_attach_grafts_under_the_current_span(self, traced):
        subtree = {"name": "batch.shard", "duration": 0.5, "children": []}
        with trace("parent"):
            traced.attach([subtree], shard=3)
        (parent,) = traced.drain()
        (grafted,) = parent.children
        assert grafted.name == "batch.shard"
        assert grafted.attributes["shard"] == 3

    def test_reset_clears_roots_and_open_stack(self, traced):
        span = trace("dangling")
        span.__enter__()
        traced.reset()
        assert traced.drain() == []
        assert traced.current() is None


class TestDisabledFastPath:
    def test_returns_the_noop_singleton(self, traced):
        disable_tracing()
        assert trace("anything", heavy=1) is NOOP_SPAN
        assert current_span() is NOOP_SPAN
        assert not tracing_enabled()
        with trace("ignored") as span:
            span.set("k", "v").update({"x": 1})
        assert traced.drain() == []

    def test_disabled_overhead_is_bounded(self, traced):
        """A disabled trace() costs about one call + one attribute check."""
        disable_tracing()

        def noop():
            return None

        rounds = 20_000
        start = time.perf_counter()
        for _ in range(rounds):
            noop()
        baseline = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(rounds):
            trace("hot.path")
        traced_cost = time.perf_counter() - start
        # Generous bound: the point is "no allocation, no locking, no I/O",
        # not a micro-benchmark — CI boxes are noisy.
        assert traced_cost < max(baseline, 1e-4) * 50


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.set_gauge("depth", 4.5)
        registry.observe("latency", 2.0)
        registry.observe("latency", 6.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 4.5}
        assert snapshot["histograms"]["latency"] == {
            "count": 2, "sum": 8.0, "min": 2.0, "max": 6.0, "mean": 4.0,
        }

    def test_reset_zeroes_but_keeps_names(self):
        """The counter-lifecycle regression: stats must be scopeable per run."""
        registry = MetricsRegistry()
        registry.inc("hits", 5)
        registry.observe("latency", 1.0)
        registry.set_gauge("depth", 2.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 0}
        assert snapshot["gauges"] == {"depth": 0.0}
        assert snapshot["histograms"]["latency"]["count"] == 0
        registry.inc("hits")  # still usable after reset
        assert registry.snapshot()["counters"]["hits"] == 1

    def test_diff_and_merge_are_inverse_ish(self):
        registry = MetricsRegistry()
        registry.inc("hits", 2)
        before = registry.snapshot()
        registry.inc("hits", 3)
        registry.inc("misses")
        registry.observe("latency", 4.0)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["counters"] == {"hits": 3, "misses": 1}
        assert delta["histograms"]["latency"]["count"] == 1

        other = MetricsRegistry()
        other.inc("hits", 10)
        other.merge(delta)
        snapshot = other.snapshot()
        assert snapshot["counters"] == {"hits": 13, "misses": 1}
        assert snapshot["histograms"]["latency"]["sum"] == 4.0

    def test_scope_reports_the_delta_of_the_block(self):
        registry = MetricsRegistry()
        registry.inc("hits", 7)
        with registry.scope() as run:
            registry.inc("hits", 2)
        assert run.metrics["counters"] == {"hits": 2}
        with registry.scope() as quiet:
            pass
        assert quiet.metrics["counters"] == {}


class TestCacheStatUnification:
    def test_fingerprint_cache_reports_into_the_registry(self):
        registry = get_registry()
        cache = FingerprintCache(capacity=2, metrics="test.obs_cache")
        base = registry.snapshot()["counters"]
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        counters = registry.snapshot()["counters"]
        assert counters["test.obs_cache.misses"] - base.get("test.obs_cache.misses", 0) == 1
        assert counters["test.obs_cache.hits"] - base.get("test.obs_cache.hits", 0) == 1
        # The per-instance stats stay intact (existing callers rely on them).
        assert cache.info()["hits"] == 1 and cache.info()["misses"] == 1

    def test_reset_stats_zeroes_the_instance_only(self):
        registry = get_registry()
        cache = FingerprintCache(capacity=2, metrics="test.obs_cache2")
        cache.get("missing")
        cache.reset_stats()
        assert cache.info()["hits"] == 0 and cache.info()["misses"] == 0
        # The registry keeps the process-wide total.
        assert registry.snapshot()["counters"]["test.obs_cache2.misses"] >= 1

    def test_deprecated_cache_stats_views_still_work(self):
        from repro.batch import BatchEvaluator
        from repro.core.compression import Compressor

        stats = BatchEvaluator().cache_stats
        assert stats["entries"] == 0 and stats["hits"] == 0 and stats["misses"] == 0
        stats = Compressor().cache_stats
        assert stats["entries"] == 0 and stats["hits"] == 0


class TestRendering:
    def _spans(self):
        with trace("outer", scenarios=2):
            with trace("inner"):
                pass
        return get_tracer().drain()

    def test_render_span_tree(self, traced):
        text = render_span_tree(self._spans())
        assert "outer" in text and "inner" in text
        assert "scenarios=2" in text

    def test_stage_table_and_aggregation(self, traced):
        stages = aggregate_stages(self._spans())
        assert set(stages) == {"outer", "inner"}
        assert stages["outer"]["count"] == 1
        assert stages["outer"]["self_seconds"] <= stages["outer"]["total_seconds"]
        table = render_stage_table(stages)
        assert "outer" in table and "self" in table

    def test_write_and_load_trace(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(path, self._spans(), get_registry().snapshot())
        document = load_trace(path)
        assert document["version"] == 1
        assert document["spans"][0]["name"] == "outer"
        json.dumps(document)  # plain-JSON all the way down

    def test_load_trace_rejects_unknown_versions(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "spans": []}))
        with pytest.raises(ValueError):
            load_trace(path)


def _tiny_provenance(num_groups=4, num_variables=12):
    provenance = ProvenanceSet()
    names = [f"x{i}" for i in range(num_variables)]
    for group in range(num_groups):
        terms = {}
        for k in range(6):
            a = names[(group + k) % num_variables]
            b = names[(group + 2 * k + 1) % num_variables]
            if a == b:
                monomial = Monomial({a: 2})
            else:
                monomial = Monomial({a: 1, b: 1})
            terms[monomial] = terms.get(monomial, 0.0) + 1.0 + k
        provenance[(f"g{group}",)] = Polynomial(terms)
    return provenance


class TestBatchIntegration:
    def test_evaluate_records_stage_spans_and_counters(self, traced):
        from repro.batch import BatchEvaluator
        from repro.engine.scenario import Scenario

        provenance = _tiny_provenance()
        scenarios = [
            Scenario(f"#{i}").scale([f"x{i}"], 0.5) for i in range(4)
        ]
        report = BatchEvaluator().evaluate(provenance, scenarios)
        names = {
            span.name
            for root in traced.drain()
            for span in root.walk()
        }
        assert "batch.evaluate" in names
        assert "batch.compile" in names
        assert "batch.lower" in names
        assert any(name.startswith("batch.kernel.") for name in names)
        assert "batch.reduce" in names
        counters = get_registry().snapshot()["counters"]
        assert counters["batch.evaluations"] == 1
        assert counters["batch.scenarios"] == len(scenarios)
        assert counters[f"batch.mode.{report.mode}"] == 1

    def test_worker_spans_ship_back_from_the_pool(self, traced):
        from repro.batch import BatchEvaluator
        from repro.engine.scenario import Scenario

        provenance = _tiny_provenance(num_groups=6, num_variables=16)
        scenarios = [
            Scenario(f"#{i}").scale([f"x{i % 16}"], 0.25) for i in range(16)
        ]
        BatchEvaluator().evaluate(
            provenance, scenarios, mode="sparse", processes=2
        )
        shard_spans = [
            span
            for root in traced.drain()
            for span in root.walk()
            if span.name == "batch.shard"
        ]
        # Pool or serial fallback, the shard spans must cover every row.
        assert shard_spans
        assert sum(s.attributes.get("rows", 0) for s in shard_spans) == len(
            scenarios
        )
