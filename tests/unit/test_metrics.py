"""Unit tests for the provenance metrics."""

import pytest

from repro.core.metrics import (
    compression_ratio,
    num_variables,
    provenance_size,
    result_distortion,
    variable_retention,
)
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


@pytest.fixture
def full():
    provenance = ProvenanceSet()
    provenance[("a",)] = Polynomial(
        {Monomial.of("x", "m1"): 2.0, Monomial.of("y", "m1"): 3.0}
    )
    provenance[("b",)] = Polynomial({Monomial.of("x", "m2"): 4.0})
    return provenance


@pytest.fixture
def compressed(full):
    return full.rename({"x": "g", "y": "g"})


class TestSizes:
    def test_provenance_size(self, full):
        assert provenance_size(full) == 3
        assert provenance_size(full[("a",)]) == 2

    def test_num_variables(self, full):
        assert num_variables(full) == 4
        assert num_variables(full[("a",)]) == 3

    def test_compression_ratio(self, full, compressed):
        assert compression_ratio(full, compressed) == pytest.approx(2 / 3)
        assert compression_ratio(ProvenanceSet(), ProvenanceSet()) == 1.0

    def test_variable_retention(self, full, compressed):
        assert variable_retention(full, compressed) == pytest.approx(3 / 4)
        assert variable_retention(ProvenanceSet(), ProvenanceSet()) == 1.0


class TestDistortion:
    def test_zero_distortion_when_groups_share_values(self, full, compressed):
        full_valuation = {"x": 1.2, "y": 1.2, "m1": 1.0, "m2": 0.5}
        compressed_valuation = {"g": 1.2, "m1": 1.0, "m2": 0.5}
        errors = result_distortion(full, compressed, full_valuation, compressed_valuation)
        assert errors["max_abs_error"] == pytest.approx(0.0)
        assert errors["mean_rel_error"] == pytest.approx(0.0)

    def test_distortion_when_defaults_average(self, full, compressed):
        full_valuation = {"x": 2.0, "y": 1.0, "m1": 1.0, "m2": 1.0}
        compressed_valuation = {"g": 1.5, "m1": 1.0, "m2": 1.0}
        errors = result_distortion(full, compressed, full_valuation, compressed_valuation)
        # group a: full 2*2 + 3*1 = 7, compressed (2+3)*1.5 = 7.5
        # group b: full 4*2 = 8, compressed 4*1.5 = 6
        assert errors["max_abs_error"] == pytest.approx(2.0)
        assert errors["mean_abs_error"] == pytest.approx(1.25)
        assert errors["max_rel_error"] == pytest.approx(0.25)
        assert errors["mean_rel_error"] == pytest.approx((0.5 / 7 + 0.25) / 2)

    def test_empty_provenance(self):
        errors = result_distortion(ProvenanceSet(), ProvenanceSet(), {}, {})
        assert errors["max_abs_error"] == 0.0
        assert errors["mean_abs_error"] == 0.0
