"""Unit tests for the provenance metrics."""

import pytest

from repro.core.metrics import (
    compression_ratio,
    compute_error_metrics,
    num_variables,
    provenance_size,
    result_distortion,
    variable_retention,
)
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


@pytest.fixture
def full():
    provenance = ProvenanceSet()
    provenance[("a",)] = Polynomial(
        {Monomial.of("x", "m1"): 2.0, Monomial.of("y", "m1"): 3.0}
    )
    provenance[("b",)] = Polynomial({Monomial.of("x", "m2"): 4.0})
    return provenance


@pytest.fixture
def compressed(full):
    return full.rename({"x": "g", "y": "g"})


class TestSizes:
    def test_provenance_size(self, full):
        assert provenance_size(full) == 3
        assert provenance_size(full[("a",)]) == 2

    def test_num_variables(self, full):
        assert num_variables(full) == 4
        assert num_variables(full[("a",)]) == 3

    def test_compression_ratio(self, full, compressed):
        assert compression_ratio(full, compressed) == pytest.approx(2 / 3)
        assert compression_ratio(ProvenanceSet(), ProvenanceSet()) == 1.0

    def test_variable_retention(self, full, compressed):
        assert variable_retention(full, compressed) == pytest.approx(3 / 4)
        assert variable_retention(ProvenanceSet(), ProvenanceSet()) == 1.0


class TestDistortion:
    def test_zero_distortion_when_groups_share_values(self, full, compressed):
        full_valuation = {"x": 1.2, "y": 1.2, "m1": 1.0, "m2": 0.5}
        compressed_valuation = {"g": 1.2, "m1": 1.0, "m2": 0.5}
        errors = result_distortion(full, compressed, full_valuation, compressed_valuation)
        assert errors["max_abs_error"] == pytest.approx(0.0)
        assert errors["mean_rel_error"] == pytest.approx(0.0)

    def test_distortion_when_defaults_average(self, full, compressed):
        full_valuation = {"x": 2.0, "y": 1.0, "m1": 1.0, "m2": 1.0}
        compressed_valuation = {"g": 1.5, "m1": 1.0, "m2": 1.0}
        errors = result_distortion(full, compressed, full_valuation, compressed_valuation)
        # group a: full 2*2 + 3*1 = 7, compressed (2+3)*1.5 = 7.5
        # group b: full 4*2 = 8, compressed 4*1.5 = 6
        assert errors["max_abs_error"] == pytest.approx(2.0)
        assert errors["mean_abs_error"] == pytest.approx(1.25)
        assert errors["max_rel_error"] == pytest.approx(0.25)
        assert errors["mean_rel_error"] == pytest.approx((0.5 / 7 + 0.25) / 2)

    def test_empty_provenance(self):
        errors = result_distortion(ProvenanceSet(), ProvenanceSet(), {}, {})
        assert errors["max_abs_error"] == 0.0
        assert errors["mean_abs_error"] == 0.0

    def test_corrupted_zero_baseline_is_reported(self):
        """Regression: relative errors were dropped when the full value is 0,
        so corrupting a zero-valued result reported max_rel_error == 0."""
        full = ProvenanceSet()
        full[("z",)] = Polynomial.zero()  # full result is 0
        compressed = ProvenanceSet()
        compressed[("z",)] = Polynomial({Monomial.of("g"): 5.0})
        errors = result_distortion(full, compressed, {}, {"g": 1.0})
        assert errors["max_abs_error"] == pytest.approx(5.0)
        assert errors["max_rel_error"] > 1.0  # no longer silently 0
        assert errors["zero_baseline_count"] == 1

    def test_nonzero_baselines_unaffected_by_clamp(self, full, compressed):
        full_valuation = {"x": 2.0, "y": 1.0, "m1": 1.0, "m2": 1.0}
        compressed_valuation = {"g": 1.5, "m1": 1.0, "m2": 1.0}
        errors = result_distortion(full, compressed, full_valuation, compressed_valuation)
        assert errors["zero_baseline_count"] == 0
        assert errors["max_rel_error"] == pytest.approx(0.25)


class TestComputeErrorMetrics:
    def test_real_backend_matches_manual_deltas(self):
        errors = compute_error_metrics({("a",): 4.0, ("b",): 10.0}, {("a",): 5.0})
        # group b is missing from the compressed results -> compared to 0.
        assert errors["max_abs_error"] == pytest.approx(10.0)
        assert errors["mean_abs_error"] == pytest.approx(5.5)
        assert errors["max_rel_error"] == pytest.approx(1.0)

    def test_bool_backend_counts_flips(self):
        errors = compute_error_metrics(
            {("a",): True, ("b",): False, ("c",): True},
            {("a",): True, ("b",): True, ("c",): False},
            semiring="bool",
        )
        assert errors["max_abs_error"] == 1.0
        assert errors["mean_abs_error"] == pytest.approx(2 / 3)
        # group b's full result is False (magnitude 0) -> a zero baseline.
        assert errors["zero_baseline_count"] == 1

    def test_why_backend_symmetric_difference(self):
        a = frozenset({frozenset({"x"}), frozenset({"y"})})
        b = frozenset({frozenset({"x"})})
        errors = compute_error_metrics({("g",): a}, {("g",): b}, semiring="why")
        assert errors["max_abs_error"] == 1.0
        assert errors["max_rel_error"] == pytest.approx(0.5)

    def test_tropical_backend(self):
        errors = compute_error_metrics(
            {("g",): 5.0, ("h",): float("inf")},
            {("g",): 7.0, ("h",): float("inf")},
            semiring="tropical",
        )
        assert errors["max_abs_error"] == pytest.approx(2.0)
        assert errors["zero_baseline_count"] == 0
