"""Unit tests for batch scenario comparison on a session."""

import numpy as np
import pytest

from repro.batch import BatchEvaluator, BatchReport
from repro.engine.scenario import Scenario
from repro.engine.session import CobraSession
from repro.exceptions import SessionStateError
from repro.workloads.abstraction_trees import plans_tree


@pytest.fixture
def session(example2):
    session = CobraSession(example2)
    session.set_abstraction_trees(plans_tree())
    session.set_bound(6)
    session.compress()
    return session


class TestCompareScenarios:
    def test_one_report_per_scenario(self, session):
        scenarios = [
            Scenario("march").scale(["m3"], 0.8),
            Scenario("business").scale(["b1", "b2", "e"], 1.1),
            Scenario("freeze veterans").set_value(["v"], 0.0),
        ]
        reports = session.compare_scenarios(scenarios)
        assert set(reports) == {"march", "business", "freeze veterans"}
        for report in reports.values():
            assert report.full_size == session.provenance.size()

    def test_reports_reflect_their_scenario(self, session):
        reports = session.compare_scenarios(
            [
                Scenario("noop"),
                Scenario("march").scale(["m3"], 0.8),
            ]
        )
        noop_total = sum(group.full_result for group in reports["noop"].groups)
        march_total = sum(group.full_result for group in reports["march"].groups)
        assert march_total < noop_total

    def test_empty_scenario_list(self, session):
        assert session.compare_scenarios([]) == {}

    def test_speedup_disabled_by_default(self, session):
        reports = session.compare_scenarios([Scenario("march").scale(["m3"], 0.8)])
        assert reports["march"].speedup is None


class TestEvaluateMany:
    SCENARIOS = [
        Scenario("noop"),
        Scenario("march").scale(["m3"], 0.8),
        Scenario("business").scale(["b1", "b2", "e"], 1.1),
        Scenario("single plan").scale(["b1"], 2.0),
    ]

    def test_returns_one_row_per_scenario(self, session):
        report = session.evaluate_many(self.SCENARIOS)
        assert isinstance(report, BatchReport)
        assert report.scenario_names == ("noop", "march", "business", "single plan")
        assert report.full_results.shape == (4, len(session.provenance))
        assert report.full_size == session.provenance.size()

    def test_matches_assign_scenario(self, session):
        report = session.evaluate_many(self.SCENARIOS)
        for index, scenario in enumerate(self.SCENARIOS):
            sequential = session.assign_scenario(
                scenario, measure_assignment_speedup=False
            )
            outcome = report.outcome(index)
            for group in sequential.groups:
                assert outcome.results[group.key] == pytest.approx(
                    group.full_result, rel=1e-9
                )
                column = report.keys.index(group.key)
                assert report.compressed_results[index, column] == pytest.approx(
                    group.compressed_result, rel=1e-9, abs=1e-9
                )

    def test_compressed_included_after_compress(self, session):
        report = session.evaluate_many(self.SCENARIOS)
        assert report.compressed_results is not None
        assert report.compressed_size == session.compressed_provenance.size()
        # group-uniform scenarios are exact; the single-plan one is not
        errors = report.absolute_errors
        assert errors[1].max() < 1e-9
        assert errors[3].max() > 0.0

    def test_include_compressed_false(self, session):
        report = session.evaluate_many(self.SCENARIOS, include_compressed=False)
        assert report.compressed_results is None
        assert report.compressed_size is None

    def test_include_compressed_true_requires_compression(self, example2):
        fresh = CobraSession(example2)
        with pytest.raises(SessionStateError):
            fresh.evaluate_many(self.SCENARIOS, include_compressed=True)
        report = fresh.evaluate_many(self.SCENARIOS)  # "auto" degrades gracefully
        assert report.compressed_results is None

    def test_invalid_include_compressed(self, session):
        with pytest.raises(SessionStateError):
            session.evaluate_many(self.SCENARIOS, include_compressed="sometimes")

    def test_session_reuses_its_evaluator_cache(self, session):
        session.evaluate_many(self.SCENARIOS)
        evaluator = session._batch_evaluator
        before = evaluator.cache_info()["hits"]
        session.evaluate_many(self.SCENARIOS)
        assert evaluator.cache_info()["hits"] > before

    def test_explicit_evaluator_is_used(self, session):
        evaluator = BatchEvaluator(cache_size=4)
        session.evaluate_many(self.SCENARIOS, evaluator=evaluator)
        assert evaluator.cache_info()["misses"] >= 1

    def test_noop_scenario_matches_baseline(self, session):
        report = session.evaluate_many(self.SCENARIOS)
        np.testing.assert_allclose(report.full_results[0], report.baseline)
        assert report.outcome(0).total_delta == pytest.approx(0.0)
