"""Unit tests for batch scenario comparison on a session."""

import pytest

from repro.engine.scenario import Scenario
from repro.engine.session import CobraSession
from repro.workloads.abstraction_trees import plans_tree


@pytest.fixture
def session(example2):
    session = CobraSession(example2)
    session.set_abstraction_trees(plans_tree())
    session.set_bound(6)
    session.compress()
    return session


class TestCompareScenarios:
    def test_one_report_per_scenario(self, session):
        scenarios = [
            Scenario("march").scale(["m3"], 0.8),
            Scenario("business").scale(["b1", "b2", "e"], 1.1),
            Scenario("freeze veterans").set_value(["v"], 0.0),
        ]
        reports = session.compare_scenarios(scenarios)
        assert set(reports) == {"march", "business", "freeze veterans"}
        for report in reports.values():
            assert report.full_size == session.provenance.size()

    def test_reports_reflect_their_scenario(self, session):
        reports = session.compare_scenarios(
            [
                Scenario("noop"),
                Scenario("march").scale(["m3"], 0.8),
            ]
        )
        noop_total = sum(group.full_result for group in reports["noop"].groups)
        march_total = sum(group.full_result for group in reports["march"].groups)
        assert march_total < noop_total

    def test_empty_scenario_list(self, session):
        assert session.compare_scenarios([]) == {}

    def test_speedup_disabled_by_default(self, session):
        reports = session.compare_scenarios([Scenario("march").scale(["m3"], 0.8)])
        assert reports["march"].speedup is None
