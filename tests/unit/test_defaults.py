"""Unit tests for default meta-variable valuations."""

import pytest

from repro.exceptions import AbstractionError
from repro.core.compression import Abstraction
from repro.core.defaults import default_meta_valuation
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


@pytest.fixture
def abstraction():
    return Abstraction.from_groups({"SB": ["b1", "b2"], "Y": ["y1", "y2", "y3"]})


@pytest.fixture
def original_valuation():
    return {
        "b1": 1.0,
        "b2": 2.0,
        "y1": 0.9,
        "y2": 1.0,
        "y3": 1.1,
        "m1": 0.8,
    }


class TestMeanDefaults:
    def test_average_of_members(self, abstraction, original_valuation):
        defaults = default_meta_valuation(abstraction, original_valuation)
        assert defaults["SB"] == pytest.approx(1.5)
        assert defaults["Y"] == pytest.approx(1.0)

    def test_untouched_variables_keep_their_values(self, abstraction, original_valuation):
        defaults = default_meta_valuation(abstraction, original_valuation)
        assert defaults["m1"] == pytest.approx(0.8)

    def test_missing_member_value_raises(self, abstraction):
        with pytest.raises(AbstractionError):
            default_meta_valuation(abstraction, {"b1": 1.0})

    def test_missing_members_skipped_when_requested(self, abstraction):
        defaults = default_meta_valuation(
            abstraction,
            {"b1": 2.0, "y1": 0.5, "y2": 1.5},
            on_missing="skip",
        )
        # b2 is missing: the SB default is the average of the present members.
        assert defaults["SB"] == pytest.approx(2.0)
        assert defaults["Y"] == pytest.approx(1.0)

    def test_group_with_no_valued_members_uses_fallback(self, abstraction):
        defaults = default_meta_valuation(
            abstraction, {"y1": 1.0, "y2": 1.0, "y3": 1.0},
            on_missing="skip", fallback=0.7,
        )
        assert defaults["SB"] == pytest.approx(0.7)

    def test_unknown_on_missing_policy_rejected(self, abstraction, original_valuation):
        with pytest.raises(AbstractionError):
            default_meta_valuation(
                abstraction, original_valuation, on_missing="ignore"
            )

    def test_identity_valuation_gives_identity_defaults(self, abstraction):
        valuation = {name: 1.0 for name in ("b1", "b2", "y1", "y2", "y3")}
        defaults = default_meta_valuation(abstraction, valuation)
        assert defaults["SB"] == pytest.approx(1.0)
        assert defaults["Y"] == pytest.approx(1.0)


class TestWeightedDefaults:
    def test_weights_follow_coefficient_mass(self, abstraction, original_valuation):
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial(
            {
                Monomial.of("b1"): 9.0,   # b1 carries 9x the mass of b2
                Monomial.of("b2"): 1.0,
                Monomial.of("y1"): 1.0,
                Monomial.of("y2"): 1.0,
                Monomial.of("y3"): 1.0,
            }
        )
        defaults = default_meta_valuation(
            abstraction, original_valuation, reducer="weighted", provenance=provenance
        )
        assert defaults["SB"] == pytest.approx((9 * 1.0 + 1 * 2.0) / 10)
        assert defaults["Y"] == pytest.approx(1.0)

    def test_weighted_requires_provenance(self, abstraction, original_valuation):
        with pytest.raises(AbstractionError):
            default_meta_valuation(abstraction, original_valuation, reducer="weighted")

    def test_zero_mass_falls_back_to_mean(self, abstraction, original_valuation):
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial({Monomial.of("unrelated"): 1.0})
        defaults = default_meta_valuation(
            abstraction, original_valuation, reducer="weighted", provenance=provenance
        )
        assert defaults["SB"] == pytest.approx(1.5)


class TestCustomReducer:
    def test_callable_reducer(self, abstraction, original_valuation):
        defaults = default_meta_valuation(abstraction, original_valuation, reducer=max)
        assert defaults["SB"] == pytest.approx(2.0)
        assert defaults["Y"] == pytest.approx(1.1)

    def test_unknown_reducer_rejected(self, abstraction, original_valuation):
        with pytest.raises(AbstractionError):
            default_meta_valuation(abstraction, original_valuation, reducer="median!")
