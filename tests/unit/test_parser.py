"""Unit tests for the polynomial text format."""

import pytest

from repro.exceptions import PolynomialParseError
from repro.provenance.monomial import Monomial
from repro.provenance.parser import format_polynomial, parse_polynomial
from repro.provenance.polynomial import Polynomial


class TestParse:
    def test_single_constant(self):
        assert parse_polynomial("5").constant_term() == pytest.approx(5.0)

    def test_zero(self):
        assert parse_polynomial("0").is_zero()
        assert parse_polynomial("  ").is_zero()

    def test_single_variable(self):
        p = parse_polynomial("x")
        assert p.coefficient(Monomial.of("x")) == pytest.approx(1.0)

    def test_coefficient_times_variables(self):
        p = parse_polynomial("208.8 * p1 * m1")
        assert p.coefficient(Monomial.of("p1", "m1")) == pytest.approx(208.8)

    def test_example2_polynomial(self):
        text = (
            "208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "
            "75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3"
        )
        p = parse_polynomial(text)
        assert p.num_monomials() == 8
        assert p.coefficient(Monomial.of("v", "m3")) == pytest.approx(24.2)

    def test_exponents(self):
        p = parse_polynomial("2*x^3*y + 4")
        assert p.coefficient(Monomial({"x": 3, "y": 1})) == pytest.approx(2.0)
        assert p.constant_term() == pytest.approx(4.0)

    def test_repeated_variable_multiplies_exponents(self):
        assert parse_polynomial("x*x") == parse_polynomial("x^2")

    def test_negative_terms(self):
        p = parse_polynomial("3*x - 2*y - 1")
        assert p.coefficient(Monomial.of("y")) == pytest.approx(-2.0)
        assert p.constant_term() == pytest.approx(-1.0)

    def test_leading_sign(self):
        assert parse_polynomial("-x").coefficient(Monomial.of("x")) == pytest.approx(-1.0)
        assert parse_polynomial("+x").coefficient(Monomial.of("x")) == pytest.approx(1.0)

    def test_duplicate_terms_merge(self):
        p = parse_polynomial("x + x")
        assert p.coefficient(Monomial.of("x")) == pytest.approx(2.0)

    def test_multiple_coefficients_in_one_term(self):
        assert parse_polynomial("2*3*x").coefficient(Monomial.of("x")) == pytest.approx(6.0)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "x +",
            "* x",
            "x ^ y",
            "x^1.5",
            "2 x",          # missing '*'
            "x & y",
            "x * ",
            "(x + y)",      # parentheses not supported in polynomial text
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(PolynomialParseError):
            parse_polynomial(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "208.8*m1*p1 + 240*m3*p1",
            "2*x^2 + 3*y - 1.5",
            "42",
            "x",
            "0",
        ],
    )
    def test_format_then_parse_is_identity(self, text):
        polynomial = parse_polynomial(text)
        assert parse_polynomial(format_polynomial(polynomial)).almost_equal(polynomial)

    def test_format_uses_canonical_order(self):
        p = Polynomial.from_terms([(1, ["z"]), (1, ["a"])])
        assert format_polynomial(p) == "a + z"
