"""Unit tests for abstraction-tree / forest (de)serialisation."""

import json

import pytest

from repro.exceptions import InvalidTreeError
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.workloads.abstraction_trees import months_tree, plans_tree


class TestTreeRoundTrip:
    def test_round_trip_simple(self, simple_tree):
        restored = AbstractionTree.from_dict(simple_tree.to_dict())
        assert restored.nodes() == simple_tree.nodes()
        assert restored.leaves() == simple_tree.leaves()
        for name in simple_tree.nodes():
            assert restored.children(name) == simple_tree.children(name)

    def test_round_trip_figure2(self):
        tree = plans_tree()
        restored = AbstractionTree.from_dict(tree.to_dict())
        assert set(restored.leaves()) == set(tree.leaves())
        assert restored.root == "Plans"

    def test_dict_is_json_serialisable(self):
        data = plans_tree().to_dict()
        restored = AbstractionTree.from_dict(json.loads(json.dumps(data)))
        assert restored.leaves() == plans_tree().leaves()

    def test_single_leaf_tree(self):
        tree = AbstractionTree("only", {})
        restored = AbstractionTree.from_dict(tree.to_dict())
        assert restored.leaves() == ("only",)

    def test_missing_root_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionTree.from_dict({"edges": {}})

    def test_bad_edges_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionTree.from_dict({"root": "R", "edges": ["not", "a", "mapping"]})


class TestForestRoundTrip:
    def test_round_trip(self):
        forest = AbstractionForest([plans_tree(), months_tree(12)])
        restored = AbstractionForest.from_dict(forest.to_dict())
        assert len(restored) == 2
        assert set(restored.leaves()) == set(forest.leaves())

    def test_missing_trees_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionForest.from_dict({})
