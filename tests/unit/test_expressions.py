"""Unit tests for scalar expressions and predicates."""

import pytest

from repro.exceptions import QueryError, UnknownColumnError
from repro.db.expressions import And, Comparison, Not, Or, col, const
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial


ROW = {"Dur": 522.0, "Price": 0.4, "Plan": "A", "Mo": 1}


class TestScalarExpressions:
    def test_column_reference(self):
        assert col("Dur").evaluate(ROW) == pytest.approx(522.0)
        assert col("Dur").columns() == ("Dur",)

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            col("Missing").evaluate(ROW)

    def test_const(self):
        assert const(3.5).evaluate(ROW) == pytest.approx(3.5)
        assert const("x").columns() == ()

    def test_const_rejects_expressions_and_odd_types(self):
        with pytest.raises(QueryError):
            const(col("Dur"))
        with pytest.raises(QueryError):
            const([1, 2])

    def test_arithmetic(self):
        expression = col("Dur") * col("Price")
        assert expression.evaluate(ROW) == pytest.approx(208.8)
        assert set(expression.columns()) == {"Dur", "Price"}

    def test_arithmetic_with_python_numbers(self):
        assert (col("Dur") + 10).evaluate(ROW) == pytest.approx(532.0)
        assert (1 - col("Price")).evaluate(ROW) == pytest.approx(0.6)
        assert (col("Dur") / 2).evaluate(ROW) == pytest.approx(261.0)
        assert (2 * col("Price")).evaluate(ROW) == pytest.approx(0.8)

    def test_nested_expression_columns_deduplicated(self):
        expression = (col("Dur") * col("Price")) + col("Dur")
        assert expression.columns() == ("Dur", "Price")

    def test_polynomial_cells_flow_through_multiplication(self):
        row = dict(ROW, Price=Polynomial.from_terms([(0.4, ["p1", "m1"])]))
        result = (col("Dur") * col("Price")).evaluate(row)
        assert isinstance(result, Polynomial)
        assert result.coefficient(Monomial.of("p1", "m1")) == pytest.approx(208.8)

    def test_dividing_by_polynomial_raises(self):
        row = dict(ROW, Price=Polynomial.variable("p1"))
        with pytest.raises(QueryError):
            (col("Dur") / col("Price")).evaluate(row)

    def test_unsupported_operator_rejected(self):
        from repro.db.expressions import BinaryOp

        with pytest.raises(QueryError):
            BinaryOp("%", col("Dur"), const(2))


class TestPredicates:
    def test_comparisons(self):
        assert (col("Dur") > 500).evaluate(ROW) is True
        assert (col("Dur") < 500).evaluate(ROW) is False
        assert (col("Plan") == "A").evaluate(ROW) is True
        assert (col("Plan") != "A").evaluate(ROW) is False
        assert (col("Mo") >= 1).evaluate(ROW) is True
        assert (col("Mo") <= 0).evaluate(ROW) is False

    def test_comparison_between_columns(self):
        row = {"a": 1, "b": 1}
        assert (col("a") == col("b")).evaluate(row) is True

    def test_boolean_combinators(self):
        p = (col("Dur") > 500) & (col("Plan") == "A")
        q = (col("Dur") < 500) | (col("Plan") == "A")
        assert p.evaluate(ROW) is True
        assert q.evaluate(ROW) is True
        assert (~p).evaluate(ROW) is False
        assert isinstance(p, And)
        assert isinstance(q, Or)
        assert isinstance(~p, Not)

    def test_predicate_columns(self):
        p = (col("Dur") > 500) & (col("Plan") == "A")
        assert set(p.columns()) == {"Dur", "Plan"}

    def test_comparing_polynomials_raises(self):
        row = {"Price": Polynomial.variable("p1")}
        with pytest.raises(QueryError):
            (col("Price") == 0.4).evaluate(row)

    def test_unsupported_comparison_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~", col("a"), col("b"))
