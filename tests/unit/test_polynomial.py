"""Unit tests for provenance polynomials and provenance sets."""

import pytest

from repro.exceptions import (
    InvalidPolynomialError,
    MissingValuationError,
)
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


def poly(**coeffs):
    """Helper: poly(x=2, y=3) == 2*x + 3*y."""
    return Polynomial({Monomial.of(name): value for name, value in coeffs.items()})


class TestConstruction:
    def test_zero_and_one(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.one().constant_term() == 1.0
        assert Polynomial.one().num_monomials() == 1

    def test_constant(self):
        assert Polynomial.constant(3.5).constant_term() == pytest.approx(3.5)

    def test_variable(self):
        p = Polynomial.variable("x", 2.0)
        assert p.coefficient(Monomial.of("x")) == pytest.approx(2.0)

    def test_from_terms_merges_duplicates(self):
        p = Polynomial.from_terms([(2.0, ["x"]), (3.0, ["x"]), (1.0, ["y"])])
        assert p.coefficient(Monomial.of("x")) == pytest.approx(5.0)
        assert p.num_monomials() == 2

    def test_zero_coefficients_dropped(self):
        p = Polynomial({Monomial.of("x"): 0.0, Monomial.of("y"): 1.0})
        assert p.num_monomials() == 1

    def test_opposite_terms_cancel(self):
        p = Polynomial({Monomial.of("x"): 2.0}) + Polynomial({Monomial.of("x"): -2.0})
        assert p.is_zero()

    def test_rejects_non_monomial_keys(self):
        with pytest.raises(InvalidPolynomialError):
            Polynomial({"x": 1.0})

    def test_rejects_non_numeric_coefficients(self):
        with pytest.raises(InvalidPolynomialError):
            Polynomial({Monomial.of("x"): "abc"})


class TestInspection:
    def test_num_monomials_is_provenance_size(self):
        p = Polynomial.from_terms([(1, ["p1", "m1"]), (2, ["p1", "m3"]), (3, ["v", "m1"])])
        assert p.num_monomials() == 3

    def test_variables(self):
        p = Polynomial.from_terms([(1, ["p1", "m1"]), (2, ["v"])])
        assert p.variables() == frozenset({"p1", "m1", "v"})

    def test_degree(self):
        p = Polynomial({Monomial({"x": 3}): 1.0, Monomial.of("y"): 2.0})
        assert p.degree() == 3
        assert Polynomial.zero().degree() == 0

    def test_terms_sorted_canonically(self):
        p = Polynomial.from_terms([(1, ["z"]), (2, ["a"])])
        names = [m.to_text() for m, _ in p.terms()]
        assert names == sorted(names)

    def test_contains_and_len(self):
        p = poly(x=1, y=2)
        assert Monomial.of("x") in p
        assert len(p) == 2


class TestAlgebra:
    def test_addition_merges(self):
        assert (poly(x=2) + poly(x=3, y=1)) == poly(x=5, y=1)

    def test_addition_with_scalar(self):
        p = poly(x=2) + 5
        assert p.constant_term() == pytest.approx(5.0)

    def test_subtraction(self):
        assert (poly(x=5) - poly(x=2)) == poly(x=3)

    def test_negation(self):
        assert (-poly(x=2)).coefficient(Monomial.of("x")) == pytest.approx(-2.0)

    def test_scalar_multiplication(self):
        assert (poly(x=2) * 3) == poly(x=6)
        assert (3 * poly(x=2)) == poly(x=6)

    def test_polynomial_multiplication(self):
        p = Polynomial.variable("x") + Polynomial.variable("y")
        q = Polynomial.variable("x")
        product = p * q
        assert product.coefficient(Monomial({"x": 2})) == pytest.approx(1.0)
        assert product.coefficient(Monomial.of("x", "y")) == pytest.approx(1.0)

    def test_multiplication_distributes_over_addition(self):
        a, b, c = poly(x=2), poly(y=3), poly(z=4)
        assert (a * (b + c)) == (a * b + a * c)

    def test_zero_annihilates(self):
        assert (poly(x=2) * Polynomial.zero()).is_zero()

    def test_one_is_identity(self):
        p = poly(x=2, y=1)
        assert p * Polynomial.one() == p


class TestRenameSubstituteEvaluate:
    def test_rename_merges_monomials(self):
        p = Polynomial.from_terms([(2, ["b1", "m1"]), (3, ["b2", "m1"])])
        merged = p.rename({"b1": "SB", "b2": "SB"})
        assert merged.num_monomials() == 1
        assert merged.coefficient(Monomial.of("SB", "m1")) == pytest.approx(5.0)

    def test_rename_keeps_distinct_residues_apart(self):
        p = Polynomial.from_terms([(2, ["b1", "m1"]), (3, ["b2", "m3"])])
        merged = p.rename({"b1": "SB", "b2": "SB"})
        assert merged.num_monomials() == 2

    def test_substitute_partial(self):
        p = Polynomial.from_terms([(2, ["x", "y"]), (3, ["y"])])
        specialised = p.substitute({"x": 2.0})
        assert specialised.coefficient(Monomial.of("y")) == pytest.approx(7.0)
        assert specialised.variables() == frozenset({"y"})

    def test_substitute_everything_matches_evaluate(self):
        p = Polynomial.from_terms([(2, ["x", "y"]), (3, ["y"]), (1, [])])
        valuation = {"x": 1.5, "y": 2.0}
        assert p.substitute(valuation).constant_term() == pytest.approx(
            p.evaluate(valuation)
        )

    def test_evaluate(self):
        p = Polynomial.from_terms([(208.8, ["p1", "m1"]), (240.0, ["p1", "m3"])])
        value = p.evaluate({"p1": 1.0, "m1": 1.0, "m3": 0.8})
        assert value == pytest.approx(208.8 + 240.0 * 0.8)

    def test_evaluate_missing_variable_raises(self):
        p = poly(x=1)
        with pytest.raises(MissingValuationError) as excinfo:
            p.evaluate({})
        assert "x" in str(excinfo.value)

    def test_restrict_variables(self):
        p = Polynomial.from_terms([(1, ["x", "y"]), (2, ["x"]), (3, [])])
        restricted = p.restrict_variables({"x"})
        assert restricted.num_monomials() == 2  # 2*x and the constant

    def test_almost_equal(self):
        a = poly(x=1.0)
        b = poly(x=1.0 + 1e-12)
        assert a.almost_equal(b)
        assert not a.almost_equal(poly(x=1.1))

    def test_to_text(self):
        p = Polynomial.from_terms([(208.8, ["p1", "m1"]), (240, ["p1", "m3"])])
        text = p.to_text()
        assert "208.8*m1*p1" in text
        assert "240*m3*p1" in text


class TestProvenanceSet:
    def test_set_and_get_with_scalar_keys(self):
        provenance = ProvenanceSet()
        provenance["10001"] = poly(x=1)
        assert provenance[("10001",)] == poly(x=1)
        assert "10001" in provenance

    def test_add_sums_into_existing_key(self):
        provenance = ProvenanceSet()
        provenance.add("k", poly(x=1))
        provenance.add("k", poly(x=2))
        assert provenance[("k",)] == poly(x=3)

    def test_rejects_non_polynomial_values(self):
        provenance = ProvenanceSet()
        with pytest.raises(InvalidPolynomialError):
            provenance["k"] = 42

    def test_size_and_variables(self):
        provenance = ProvenanceSet()
        provenance["a"] = Polynomial.from_terms([(1, ["x", "m1"]), (2, ["y", "m1"])])
        provenance["b"] = Polynomial.from_terms([(3, ["x", "m2"])])
        assert provenance.size() == 3
        assert provenance.num_variables() == 4

    def test_rename_applies_to_every_group(self):
        provenance = ProvenanceSet()
        provenance["a"] = Polynomial.from_terms([(1, ["x"]), (2, ["y"])])
        provenance["b"] = Polynomial.from_terms([(3, ["x"])])
        renamed = provenance.rename({"x": "g", "y": "g"})
        assert renamed[("a",)].num_monomials() == 1
        assert renamed[("b",)].coefficient(Monomial.of("g")) == pytest.approx(3.0)

    def test_monomials_never_merge_across_groups(self):
        provenance = ProvenanceSet()
        provenance["a"] = Polynomial.from_terms([(1, ["x"])])
        provenance["b"] = Polynomial.from_terms([(1, ["y"])])
        renamed = provenance.rename({"x": "g", "y": "g"})
        assert renamed.size() == 2

    def test_evaluate_per_group(self):
        provenance = ProvenanceSet()
        provenance["a"] = poly(x=2)
        provenance["b"] = poly(x=3)
        results = provenance.evaluate({"x": 2.0})
        assert results[("a",)] == pytest.approx(4.0)
        assert results[("b",)] == pytest.approx(6.0)

    def test_substitute(self):
        provenance = ProvenanceSet()
        provenance["a"] = Polynomial.from_terms([(2, ["x", "y"])])
        specialised = provenance.substitute({"x": 3.0})
        assert specialised[("a",)].coefficient(Monomial.of("y")) == pytest.approx(6.0)

    def test_map(self):
        provenance = ProvenanceSet({("a",): poly(x=1)})
        doubled = provenance.map(lambda p: p * 2)
        assert doubled[("a",)] == poly(x=2)

    def test_equality_and_almost_equal(self):
        a = ProvenanceSet({("k",): poly(x=1)})
        b = ProvenanceSet({("k",): poly(x=1.0 + 1e-12)})
        assert a.almost_equal(b)
        assert a != ProvenanceSet({("k",): poly(x=2)})

    def test_get_default(self):
        provenance = ProvenanceSet()
        assert provenance.get("missing") is None


class TestProvenanceSetCaches:
    def test_variables_cached_and_invalidated_on_setitem(self):
        provenance = ProvenanceSet({("a",): poly(x=1)})
        first = provenance.variables()
        assert provenance.variables() is first  # cached object reused
        provenance[("b",)] = poly(y=2)
        assert provenance.variables() == frozenset({"x", "y"})

    def test_variables_invalidated_on_add(self):
        provenance = ProvenanceSet({("a",): poly(x=1)})
        assert provenance.variables() == frozenset({"x"})
        provenance.add(("a",), poly(z=1))
        assert provenance.variables() == frozenset({"x", "z"})

    def test_fingerprint_stable_for_equal_content(self):
        a = ProvenanceSet({("k",): poly(x=1, y=2)})
        b = ProvenanceSet({("k",): poly(x=1, y=2)})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_content(self):
        provenance = ProvenanceSet({("k",): poly(x=1)})
        before = provenance.fingerprint()
        provenance[("k2",)] = poly(y=3)
        assert provenance.fingerprint() != before

    def test_fingerprint_distinguishes_coefficients(self):
        a = ProvenanceSet({("k",): poly(x=1)})
        b = ProvenanceSet({("k",): poly(x=2)})
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_ignores_insertion_order(self):
        a = ProvenanceSet()
        a[("k1",)] = poly(x=1)
        a[("k2",)] = poly(y=2)
        b = ProvenanceSet()
        b[("k2",)] = poly(y=2)
        b[("k1",)] = poly(x=1)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_key_boundaries(self):
        a = ProvenanceSet({("ab",): poly(x=1)})
        b = ProvenanceSet({("a",): poly(x=1), ("b",): poly(x=1)})
        assert a.fingerprint() != b.fingerprint()
