"""Unit tests for abstraction trees and forests."""

import pytest

from repro.exceptions import InvalidTreeError
from repro.core.abstraction_tree import AbstractionForest, AbstractionTree
from repro.workloads.abstraction_trees import months_tree, plans_tree


class TestConstruction:
    def test_simple_tree(self, simple_tree):
        assert simple_tree.root == "R"
        assert set(simple_tree.leaves()) == {"a1", "a2", "c1", "c2", "b1"}
        assert set(simple_tree.inner_nodes()) == {"R", "A", "B", "C"}
        assert len(simple_tree) == 9

    def test_from_nested(self):
        tree = AbstractionTree.from_nested(
            "Plans",
            {
                "Standard": ["p1", "p2"],
                "Special": {"F": ["f1", "f2"], "v": None},
            },
        )
        assert set(tree.leaves()) == {"p1", "p2", "f1", "f2", "v"}
        assert tree.parent("F") == "Special"

    def test_from_groups(self):
        tree = AbstractionTree.from_groups("Year", {"q1": ["m1", "m2"], "q2": ["m3"]})
        assert tree.children("Year") == ("q1", "q2")
        assert tree.leaves_under("q1") == ("m1", "m2")

    def test_flat(self):
        tree = AbstractionTree.flat("Root", ["a", "b", "c"])
        assert tree.leaves() == ("a", "b", "c")
        assert tree.height() == 1

    def test_two_parents_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionTree("R", {"R": ["a", "b"], "a": ["x"], "b": ["x"]})

    def test_disconnected_node_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionTree("R", {"R": ["a"], "orphan": ["b"]})

    def test_root_with_parent_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionTree("R", {"R": ["a"], "a": ["R"]})

    def test_duplicate_child_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionTree("R", {"R": ["a", "a"]})

    def test_single_leaf_root_rejected_when_no_edges(self):
        # A root with no children is a single-leaf tree; it is allowed.
        tree = AbstractionTree("R", {})
        assert tree.leaves() == ("R",)

    def test_invalid_names_rejected(self):
        with pytest.raises(Exception):
            AbstractionTree("R", {"R": ["bad name"]})


class TestNavigation:
    def test_node_lookup(self, simple_tree):
        node = simple_tree.node("B")
        assert node.children == ("C", "b1")
        assert node.parent == "R"
        assert not node.is_leaf
        assert simple_tree.node("R").is_root

    def test_unknown_node(self, simple_tree):
        with pytest.raises(InvalidTreeError):
            simple_tree.node("missing")

    def test_contains(self, simple_tree):
        assert "C" in simple_tree
        assert "missing" not in simple_tree

    def test_leaves_under(self, simple_tree):
        assert set(simple_tree.leaves_under("B")) == {"c1", "c2", "b1"}
        assert simple_tree.leaves_under("a1") == ("a1",)
        assert set(simple_tree.leaves_under("R")) == set(simple_tree.leaves())

    def test_ancestors_and_depth(self, simple_tree):
        assert simple_tree.ancestors("c1") == ("C", "B", "R")
        assert simple_tree.depth("c1") == 3
        assert simple_tree.depth("R") == 0
        assert simple_tree.height() == 3

    def test_subtree_size(self, simple_tree):
        assert simple_tree.subtree_size("C") == 3
        assert simple_tree.subtree_size("R") == 9

    def test_preorder_starts_at_root(self, simple_tree):
        assert simple_tree.nodes()[0] == "R"

    def test_is_leaf(self, simple_tree):
        assert simple_tree.is_leaf("a1")
        assert not simple_tree.is_leaf("A")

    def test_to_ascii_mentions_every_node(self, simple_tree):
        rendering = simple_tree.to_ascii()
        for name in simple_tree.nodes():
            assert name in rendering


class TestPaperTrees:
    def test_figure2_tree_structure(self):
        tree = plans_tree()
        assert set(tree.leaves()) == {
            "p1", "p2", "f1", "f2", "y1", "y2", "y3", "v", "b1", "b2", "e",
        }
        assert set(tree.children("Plans")) == {"Standard", "Special", "Business"}
        assert set(tree.leaves_under("Business")) == {"b1", "b2", "e"}
        assert set(tree.leaves_under("Special")) == {"f1", "f2", "y1", "y2", "y3", "v"}

    def test_months_tree_quarters(self):
        tree = months_tree(12)
        assert len(tree.leaves()) == 12
        assert set(tree.children("Year")) == {"q1", "q2", "q3", "q4"}
        assert tree.leaves_under("q2") == ("m4", "m5", "m6")

    def test_months_tree_partial_year(self):
        tree = months_tree(7)
        assert tree.leaves_under("q3") == ("m7",)


class TestForest:
    def test_forest_of_disjoint_trees(self):
        forest = AbstractionForest([plans_tree(), months_tree(12)])
        assert len(forest) == 2
        assert forest.tree_of("m4").root == "Year"
        assert forest.tree_of("b1").root == "Plans"
        assert forest.tree_of("unknown") is None
        assert len(forest.leaves()) == 23

    def test_overlapping_trees_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionForest([plans_tree(), plans_tree()])

    def test_empty_forest_rejected(self):
        with pytest.raises(InvalidTreeError):
            AbstractionForest([])
