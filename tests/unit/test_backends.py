"""Unit tests for the semiring evaluation backends."""

import numpy as np
import pytest

from repro.engine.scenario import Scenario
from repro.engine.session import CobraSession
from repro.exceptions import MissingValuationError, SemiringError
from repro.provenance.backends import (
    SEMIRING_BACKEND_NAMES,
    BooleanBackend,
    GenericBackend,
    LineageBackend,
    RealBackend,
    TropicalBackend,
    WhyBackend,
    resolve_backend,
)
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.semiring import (
    CountingSemiring,
    TropicalSemiring,
    WhySemiring,
    evaluate_in_semiring,
)
from repro.provenance.valuation import Valuation
from repro.workloads.abstraction_trees import plans_tree
from repro.workloads.telephony import example2_provenance


@pytest.fixture
def provenance():
    prov = ProvenanceSet()
    prov[("a",)] = Polynomial.from_terms([(2.5, ["x", "y"]), (3, ["y"]), (1.5, [])])
    prov[("b",)] = Polynomial.from_terms([(4, ["x", "x", "z"])])
    prov[("c",)] = Polynomial.zero()
    return prov


def identity_valuation(backend, names=("x", "y", "z")):
    return {name: backend.default_value(name) for name in names}


class TestRegistry:
    def test_all_five_backends_registered(self):
        assert SEMIRING_BACKEND_NAMES == ("real", "tropical", "bool", "why", "lineage")

    def test_resolve_by_name_instance_and_backend(self):
        backend = resolve_backend("tropical")
        assert isinstance(backend, TropicalBackend)
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend(TropicalSemiring()), TropicalBackend)
        assert isinstance(resolve_backend(None), RealBackend)
        assert isinstance(resolve_backend(CountingSemiring()), RealBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(SemiringError, match="unknown semiring backend"):
            resolve_backend("viterbi")

    def test_unregistered_semiring_raises(self):
        from repro.provenance.semiring import PolynomialSemiring

        with pytest.raises(SemiringError, match="no registered backend"):
            resolve_backend(PolynomialSemiring())


class TestCompiledParity:
    """Every backend's compiled evaluation equals the reference homomorphism."""

    @pytest.mark.parametrize("name", SEMIRING_BACKEND_NAMES)
    def test_identity_valuation_parity(self, provenance, name):
        backend = resolve_backend(name)
        valuation = identity_valuation(backend)
        got = backend.compile(provenance).evaluate(valuation)
        for key, polynomial in provenance.items():
            want = evaluate_in_semiring(
                polynomial,
                backend.semiring,
                valuation,
                coefficient_embedding=backend.embed_coefficient,
            )
            if isinstance(want, float):
                assert got[key] == pytest.approx(want)
            else:
                assert got[key] == want

    def test_tropical_is_min_cost(self):
        prov = ProvenanceSet()
        prov[("g",)] = Polynomial.from_terms([(1.0, ["x", "y"]), (10.0, ["z"])])
        backend = resolve_backend("tropical")
        result = backend.compile(prov).evaluate({"x": 2.0, "y": 3.0, "z": 1.0})
        # route 1: 1 + 2 + 3 = 6; route 2: 10 + 1 = 11.
        assert result[("g",)] == pytest.approx(6.0)

    def test_tropical_empty_polynomial_is_unreachable(self, provenance):
        backend = resolve_backend("tropical")
        result = backend.compile(provenance).evaluate(identity_valuation(backend))
        assert result[("c",)] == float("inf")

    def test_bool_deletion(self):
        prov = ProvenanceSet()
        prov[("g",)] = Polynomial.from_terms([(1.0, ["x", "y"]), (2.0, ["z"])])
        backend = resolve_backend("bool")
        compiled = backend.compile(prov)
        assert compiled.evaluate({"x": True, "y": False, "z": True})[("g",)] is True
        assert compiled.evaluate({"x": True, "y": False, "z": False})[("g",)] is False

    def test_bool_exponents_are_idempotent(self):
        prov = ProvenanceSet()
        prov[("g",)] = Polynomial.from_terms([(1.0, ["x", "x", "x"])])
        backend = resolve_backend("bool")
        assert backend.compile(prov).evaluate({"x": True})[("g",)] is True

    @pytest.mark.parametrize("name", ["tropical", "bool"])
    def test_matrix_path_matches_per_valuation(self, provenance, name):
        backend = resolve_backend(name)
        compiled = backend.compile(provenance)
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0.0, 2.0, size=(5, len(compiled.variables)))
        if name == "bool":
            matrix = (matrix > 1.0).astype(np.float64)
        batch = compiled.evaluate_matrix(matrix)
        for row in range(matrix.shape[0]):
            valuation = dict(zip(compiled.variables, matrix[row]))
            single = compiled.evaluate(valuation)
            for j, key in enumerate(compiled.keys):
                assert float(batch[row, j]) == pytest.approx(
                    float(single[key]), abs=1e-9
                )

    @pytest.mark.parametrize("name", SEMIRING_BACKEND_NAMES)
    def test_missing_variable_raises(self, provenance, name):
        backend = resolve_backend(name)
        with pytest.raises(MissingValuationError):
            backend.compile(provenance).evaluate({"x": backend.default_value("x")})

    @pytest.mark.parametrize("name", SEMIRING_BACKEND_NAMES)
    def test_compiled_surface(self, provenance, name):
        compiled = resolve_backend(name).compile(provenance)
        assert compiled.keys == provenance.keys()
        assert tuple(compiled.variables) == tuple(sorted(provenance.variables()))
        assert compiled.size() == provenance.size()


class TestValueSemantics:
    def test_real_scale_and_set(self):
        backend = resolve_backend("real")
        assert backend.scale_value(2.0, 0.5) == 1.0
        assert backend.set_value(3.0, "x") == 3.0

    def test_tropical_scale_multiplies_costs(self):
        backend = resolve_backend("tropical")
        assert backend.scale_value(4.0, 1.5) == pytest.approx(6.0)
        assert backend.default_value("t1") == 0.0

    def test_bool_scale_zero_deletes(self):
        backend = resolve_backend("bool")
        assert backend.scale_value(True, 0.0) is False
        assert backend.scale_value(True, 0.8) is True
        assert backend.set_value(0.0, "x") is False
        assert backend.set_value(2.0, "x") is True

    def test_why_defaults_and_set(self):
        backend = resolve_backend("why")
        assert backend.default_value("x") == WhySemiring.of("x")
        assert backend.set_value(0, "x") == frozenset()
        assert backend.set_value(1, "x") == WhySemiring.of("x")
        assert backend.scale_value(WhySemiring.of("x"), 0.5) == WhySemiring.of("x")
        assert backend.scale_value(WhySemiring.of("x"), 0.0) == frozenset()

    def test_lineage_defaults_and_set(self):
        backend = resolve_backend("lineage")
        assert backend.default_value("x") == frozenset({"x"})
        assert backend.set_value(0, "x") is None


class TestErrorMeasures:
    def test_numeric_errors(self):
        assert resolve_backend("real").error(3.0, 1.0) == pytest.approx(2.0)
        assert resolve_backend("real").delta(1.0, 3.0) == pytest.approx(2.0)

    def test_tropical_inf_equal_is_zero_error(self):
        backend = resolve_backend("tropical")
        assert backend.error(float("inf"), float("inf")) == 0.0
        assert backend.error(float("inf"), 1.0) == float("inf")

    def test_bool_error_is_flip_indicator(self):
        backend = resolve_backend("bool")
        assert backend.error(True, True) == 0.0
        assert backend.error(True, False) == 1.0

    def test_why_error_is_symmetric_difference(self):
        backend = resolve_backend("why")
        a = frozenset({frozenset({"x"}), frozenset({"y"})})
        b = frozenset({frozenset({"x"}), frozenset({"z"})})
        assert backend.error(a, a) == 0.0
        assert backend.error(a, b) == 2.0

    def test_lineage_error_handles_bottom(self):
        backend = resolve_backend("lineage")
        assert backend.error(None, None) == 0.0
        assert backend.error(None, frozenset()) == 1.0
        assert backend.error(frozenset({"x", "y"}), None) == 2.0
        assert backend.error(frozenset({"x"}), frozenset({"y"})) == 2.0


class TestSemiringValuation:
    def test_identity_for_why(self, provenance):
        valuation = Valuation.identity_for(provenance, semiring="why")
        assert valuation["x"] == WhySemiring.of("x")
        assert valuation.semiring_name == "why"

    def test_scaled_preserves_backend(self):
        valuation = Valuation({"t1": 2.0}, semiring="tropical")
        scaled = valuation.scaled(["t1", "t2"], 1.5)
        assert scaled.semiring_name == "tropical"
        assert scaled["t1"] == pytest.approx(3.0)
        # missing variables start from the tropical identity (0.0 cost).
        assert scaled["t2"] == pytest.approx(0.0)

    def test_set_to_routes_through_backend(self):
        valuation = Valuation({}, semiring="lineage")
        assert valuation.set_to(["x"], 0)["x"] is None
        assert valuation.set_to(["x"], 1)["x"] == frozenset({"x"})

    def test_real_valuation_unchanged(self):
        valuation = Valuation({"x": "2"})
        assert valuation["x"] == 2.0
        assert valuation.semiring_name == "real"

    def test_scenario_apply_in_bool(self):
        scenario = Scenario("revoke").set_value(["x"], 0).scale(["y"], 0.0)
        valuation = Valuation({"x": True, "y": True, "z": True}, semiring="bool")
        result = scenario.apply(valuation)
        assert result["x"] is False
        assert result["y"] is False
        assert result["z"] is True


class TestSessionEndToEnd:
    @pytest.mark.parametrize("name", SEMIRING_BACKEND_NAMES)
    def test_running_example_any_semiring(self, name):
        provenance = example2_provenance()
        session = CobraSession(provenance, semiring=name)
        session.set_abstraction_trees(plans_tree())
        session.set_bound(provenance.size())
        session.compress(allow_infeasible=True)
        scenario = Scenario("delete March").set_value(["m3"], 0)
        report = session.assign_scenario(scenario, measure_assignment_speedup=False)
        assert report.semiring == name
        assert len(report.groups) == len(provenance)
        text = report.render_text()
        assert "provenance size" in text

    def test_bool_group_uniform_deletion_is_exact(self):
        """Deleting every member of an abstracted group is answered exactly."""
        provenance = example2_provenance()
        session = CobraSession(provenance, semiring="bool")
        session.set_abstraction_trees(plans_tree())
        session.set_bound(provenance.size())
        session.compress(allow_infeasible=True)
        grouped = session.abstraction.grouped_variables()
        meta, members = sorted(grouped.items())[0]
        scenario = Scenario("revoke group").set_value(list(members), 0)
        report = session.assign_scenario(scenario, measure_assignment_speedup=False)
        assert report.max_absolute_error == 0.0

    def test_tropical_congestion_changes_min_cost(self):
        prov = ProvenanceSet()
        prov[("g",)] = Polynomial.from_terms([(1.0, ["x"]), (5.0, ["y"])])
        session = CobraSession(prov, base_valuation={"x": 2.0, "y": 1.0}, semiring="tropical")
        assert session.initial_results()[("g",)] == pytest.approx(3.0)
        scenario = Scenario("congest x").scale(["x"], 10.0)
        session.set_abstraction_trees(plans_tree())  # unused by full path
        session.set_bound(prov.size())
        session.compress(allow_infeasible=True)
        report = session.assign_scenario(scenario, measure_assignment_speedup=False)
        # route x costs 1 + 20 = 21, route y costs 5 + 1 = 6 -> min is 6.
        assert report.groups[0].full_result == pytest.approx(6.0)


class TestGenericBackend:
    def test_wraps_any_semiring(self, provenance):
        backend = GenericBackend(TropicalSemiring(), name="tropical-generic")
        compiled = backend.compile(provenance)
        numpy_backend = resolve_backend("tropical")
        valuation = {"x": 1.0, "y": 2.0, "z": 3.0}
        generic = compiled.evaluate(valuation)
        # The generic fallback embeds coefficients as presence (0 cost),
        # so compare against the reference with the same embedding.
        for key, polynomial in provenance.items():
            want = evaluate_in_semiring(
                polynomial,
                backend.semiring,
                valuation,
                coefficient_embedding=backend.embed_coefficient,
            )
            assert generic[key] == pytest.approx(want)
        del numpy_backend

    def test_why_and_lineage_are_generic(self):
        assert isinstance(resolve_backend("why"), WhyBackend)
        assert isinstance(resolve_backend("lineage"), LineageBackend)
        assert not resolve_backend("why").is_numeric
        assert resolve_backend("tropical").is_numeric
