"""Unit tests for the exact single-tree dynamic program."""

import pytest

from repro.exceptions import InfeasibleBoundError, UnsupportedPolynomialError
from repro.core.brute_force import optimize_brute_force
from repro.core.cut import leaf_cut, root_cut
from repro.core.optimizer import build_load_model, optimize_single_tree
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.workloads.random_polynomials import random_single_tree_instance


class TestLoadModel:
    def test_loads_of_simple_instance(self, simple_provenance, simple_tree):
        model = build_load_model(simple_provenance, simple_tree)
        # Leaf loads: number of (group, residue, exponent) combinations.
        assert model.loads["a1"] == 2   # (g1, e1), (g2, e2)
        assert model.loads["a2"] == 1
        assert model.loads["c1"] == 2
        assert model.loads["c2"] == 1
        assert model.loads["b1"] == 2
        # Node A merges a1 and a2: residues {(g1,e1),(g2,e2),(g1,e1)} -> 2 distinct? a2 has (g1, e1).
        assert model.loads["A"] == 2
        assert model.loads["C"] == 3
        assert model.loads["B"] == 4
        # A's residues are a subset of B's, so the root merges to 4 as well.
        assert model.loads["R"] == 4
        assert model.base_monomials == 1  # the 7*e1 monomial in g2

    def test_cut_size_prediction_matches_actual(self, simple_provenance, simple_tree):
        from repro.core.compression import apply_abstraction
        from repro.core.cut import enumerate_cuts

        model = build_load_model(simple_provenance, simple_tree)
        for cut in enumerate_cuts(simple_tree):
            predicted = model.cut_size(cut)
            actual = apply_abstraction(simple_provenance, cut).compressed_size
            assert predicted == actual

    def test_two_tree_variables_in_a_monomial_rejected(self, simple_tree):
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial({Monomial.of("a1", "c1"): 1.0})
        with pytest.raises(UnsupportedPolynomialError):
            build_load_model(provenance, simple_tree)

    def test_leaf_occurrences(self, simple_provenance, simple_tree):
        model = build_load_model(simple_provenance, simple_tree)
        assert model.leaf_occurrences["a1"] == 2
        assert model.leaf_occurrences["a2"] == 1


class TestOptimizeSingleTree:
    def test_loose_bound_keeps_leaf_cut(self, simple_provenance, simple_tree):
        result = optimize_single_tree(simple_provenance, simple_tree, bound=100)
        assert result.cut == leaf_cut(simple_tree)
        assert result.feasible
        assert result.achieved_size == simple_provenance.size()

    def test_tight_bound_forces_root(self, simple_provenance, simple_tree):
        model_size_at_root = 4 + 1
        result = optimize_single_tree(
            simple_provenance, simple_tree, bound=model_size_at_root
        )
        assert result.cut == root_cut(simple_tree)
        assert result.achieved_size <= model_size_at_root

    def test_infeasible_bound_raises(self, simple_provenance, simple_tree):
        with pytest.raises(InfeasibleBoundError) as excinfo:
            optimize_single_tree(simple_provenance, simple_tree, bound=2)
        assert excinfo.value.bound == 2
        assert excinfo.value.best_achievable == 5

    def test_infeasible_bound_allowed_returns_coarsest(self, simple_provenance, simple_tree):
        result = optimize_single_tree(
            simple_provenance, simple_tree, bound=2, allow_infeasible=True
        )
        assert not result.feasible
        assert result.achieved_size == 5

    def test_negative_bound_rejected(self, simple_provenance, simple_tree):
        with pytest.raises(ValueError):
            optimize_single_tree(simple_provenance, simple_tree, bound=-1)

    def test_predicted_size_matches_achieved(self, simple_provenance, simple_tree):
        for bound in (6, 7, 8, 9, 12):
            result = optimize_single_tree(simple_provenance, simple_tree, bound=bound)
            assert result.predicted_size == result.achieved_size
            assert result.achieved_size <= bound

    def test_trace_contents(self, simple_provenance, simple_tree):
        result = optimize_single_tree(
            simple_provenance, simple_tree, bound=8, keep_trace=True
        )
        assert result.trace is not None
        assert set(result.trace["loads"]) == set(simple_tree.nodes())
        assert "dp_table" in result.trace
        assert result.trace["base_monomials"] == 1

    def test_no_trace_by_default(self, simple_provenance, simple_tree):
        assert optimize_single_tree(simple_provenance, simple_tree, bound=8).trace is None

    def test_variables_outside_tree_are_untouched(self, simple_provenance, simple_tree):
        result = optimize_single_tree(simple_provenance, simple_tree, bound=6)
        assert {"e1", "e2"} <= set(result.compressed.variables())

    def test_algorithm_label(self, simple_provenance, simple_tree):
        result = optimize_single_tree(simple_provenance, simple_tree, bound=8)
        assert result.algorithm == "dynamic-programming"
        assert result.summary()["algorithm"] == "dynamic-programming"

    def test_maximises_variables_among_feasible_cuts(self, simple_provenance, simple_tree):
        # Cross-check against brute force for a range of bounds.
        for bound in range(6, 13):
            dp = optimize_single_tree(simple_provenance, simple_tree, bound=bound)
            bf = optimize_brute_force(simple_provenance, simple_tree, bound=bound)
            assert dp.num_variables == bf.num_variables
            assert dp.cut.num_variables() == bf.cut.num_variables()
            assert dp.achieved_size <= bound

    def test_matches_brute_force_on_random_instances(self):
        for seed in range(5):
            provenance, tree = random_single_tree_instance(
                num_leaves=6, num_groups=3, monomials_per_group=12, seed=seed
            )
            full = provenance.size()
            for bound in {full, int(full * 0.8), int(full * 0.5)}:
                try:
                    dp = optimize_single_tree(provenance, tree, bound=bound)
                except InfeasibleBoundError:
                    with pytest.raises(InfeasibleBoundError):
                        optimize_brute_force(provenance, tree, bound=bound)
                    continue
                bf = optimize_brute_force(provenance, tree, bound=bound)
                assert dp.cut.num_variables() == bf.cut.num_variables()
                assert dp.achieved_size <= bound


class TestSection4Shape:
    def test_small_replica_of_section4(self):
        """A scaled-down Section 4 instance: 5 zips x 11 plans x 12 months."""
        from repro.workloads.abstraction_trees import plans_tree
        from repro.workloads.telephony import TelephonyConfig, generate_revenue_provenance

        config = TelephonyConfig(num_customers=5 * 11, num_zips=5, months=tuple(range(1, 13)))
        provenance = generate_revenue_provenance(config)
        assert provenance.size() == 5 * 11 * 12

        tree = plans_tree()
        # Bound allowing 7 plan-groups (like the paper's 94,600 for 1,055 zips).
        result = optimize_single_tree(provenance, tree, bound=7 * 12 * 5)
        assert result.achieved_size == 7 * 12 * 5
        assert result.cut.num_variables() == 7

        result = optimize_single_tree(provenance, tree, bound=3 * 12 * 5 + 5)
        assert result.achieved_size == 3 * 12 * 5
        assert result.cut.nodes == frozenset({"Business", "Special", "Standard"})
