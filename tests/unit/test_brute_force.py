"""Unit tests for the exhaustive (brute-force) optimiser."""

import pytest

from repro.exceptions import InfeasibleBoundError
from repro.core.abstraction_tree import AbstractionTree
from repro.core.brute_force import optimize_brute_force
from repro.core.cut import leaf_cut, root_cut
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet


class TestBruteForce:
    def test_loose_bound_keeps_leaf_cut(self, simple_provenance, simple_tree):
        result = optimize_brute_force(simple_provenance, simple_tree, bound=100)
        assert result.cut == leaf_cut(simple_tree)
        assert result.feasible
        assert result.algorithm == "brute-force"

    def test_tight_bound_forces_root(self, simple_provenance, simple_tree):
        result = optimize_brute_force(simple_provenance, simple_tree, bound=5)
        assert result.cut == root_cut(simple_tree)

    def test_infeasible_raises(self, simple_provenance, simple_tree):
        with pytest.raises(InfeasibleBoundError):
            optimize_brute_force(simple_provenance, simple_tree, bound=1)

    def test_infeasible_allowed_returns_smallest(self, simple_provenance, simple_tree):
        result = optimize_brute_force(
            simple_provenance, simple_tree, bound=1, allow_infeasible=True
        )
        assert not result.feasible
        assert result.achieved_size == 5

    def test_negative_bound_rejected(self, simple_provenance, simple_tree):
        with pytest.raises(ValueError):
            optimize_brute_force(simple_provenance, simple_tree, bound=-1)

    def test_max_cuts_guard(self, simple_provenance, simple_tree):
        with pytest.raises(ValueError):
            optimize_brute_force(simple_provenance, simple_tree, bound=10, max_cuts=3)

    def test_handles_monomials_with_two_tree_variables(self):
        """Unlike the DP, brute force measures sizes by actually applying cuts."""
        tree = AbstractionTree("R", {"R": ["x", "y"]})
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial(
            {
                Monomial.of("x", "y"): 1.0,
                Monomial({"x": 2}): 2.0,
                Monomial({"y": 2}): 3.0,
            }
        )
        # Collapsing x and y into R turns all three monomials into R^2.
        result = optimize_brute_force(provenance, tree, bound=1)
        assert result.cut == root_cut(tree)
        assert result.achieved_size == 1
        assert result.compressed[("g",)].coefficient(
            Monomial({"R": 2})
        ) == pytest.approx(6.0)

    def test_tie_breaking_prefers_smaller_size(self, simple_tree):
        # Two cuts with the same number of variables: prefer the smaller size.
        provenance = ProvenanceSet()
        provenance[("g",)] = Polynomial(
            {
                Monomial.of("a1"): 1.0,
                Monomial.of("a2"): 1.0,
                Monomial.of("c1"): 1.0,
                Monomial.of("c2"): 1.0,
                Monomial.of("b1"): 1.0,
            }
        )
        result = optimize_brute_force(provenance, simple_tree, bound=4)
        assert result.achieved_size <= 4
        # No 5-variable cut fits the bound (the leaf cut has size 5), so the
        # optimum has 4 variables.
        assert result.cut.num_variables() == 4
