"""Unit tests for valuations and the compiled (vectorised) evaluators."""

import numpy as np
import pytest

from repro.exceptions import MissingValuationError
from repro.provenance.monomial import Monomial
from repro.provenance.polynomial import Polynomial, ProvenanceSet
from repro.provenance.valuation import (
    CompiledPolynomial,
    CompiledProvenanceSet,
    FingerprintCache,
    Valuation,
)


@pytest.fixture
def p1():
    return Polynomial.from_terms(
        [
            (208.8, ["p1", "m1"]),
            (240.0, ["p1", "m3"]),
            (42.0, ["v", "m1"]),
            (24.2, ["v", "m3"]),
            (5.0, []),
        ]
    )


class TestValuation:
    def test_mapping_interface(self):
        valuation = Valuation({"x": 1.5, "y": 2})
        assert valuation["x"] == pytest.approx(1.5)
        assert valuation["y"] == pytest.approx(2.0)
        assert len(valuation) == 2
        assert set(valuation) == {"x", "y"}
        assert "x" in valuation

    def test_uniform(self):
        valuation = Valuation.uniform(["a", "b"], 0.5)
        assert valuation["a"] == valuation["b"] == pytest.approx(0.5)

    def test_identity_for_polynomial(self, p1):
        valuation = Valuation.identity_for(p1)
        assert set(valuation) == set(p1.variables())
        assert all(value == 1.0 for value in valuation.values())

    def test_updated_does_not_mutate(self):
        original = Valuation({"x": 1.0})
        updated = original.updated({"x": 2.0, "y": 3.0})
        assert original["x"] == 1.0
        assert updated["x"] == 2.0
        assert updated["y"] == 3.0

    def test_scaled(self):
        valuation = Valuation({"m1": 1.0, "m3": 1.0}).scaled(["m3"], 0.8)
        assert valuation["m3"] == pytest.approx(0.8)
        assert valuation["m1"] == pytest.approx(1.0)

    def test_scaled_treats_missing_as_one(self):
        valuation = Valuation({}).scaled(["m3"], 0.8)
        assert valuation["m3"] == pytest.approx(0.8)

    def test_restricted(self):
        valuation = Valuation({"a": 1, "b": 2}).restricted(["b", "c"])
        assert set(valuation) == {"b"}

    def test_covers_and_missing(self):
        valuation = Valuation({"a": 1})
        assert valuation.covers(["a"])
        assert not valuation.covers(["a", "b"])
        assert valuation.missing(["b", "a", "c"]) == ("b", "c")


class TestCompiledPolynomial:
    def test_matches_naive_evaluation(self, p1):
        compiled = CompiledPolynomial(p1)
        valuation = {"p1": 1.1, "v": 0.9, "m1": 1.0, "m3": 0.8}
        assert compiled.evaluate(valuation) == pytest.approx(p1.evaluate(valuation))

    def test_constant_only_polynomial(self):
        compiled = CompiledPolynomial(Polynomial.constant(4.5))
        assert compiled.evaluate({}) == pytest.approx(4.5)
        assert compiled.num_monomials() == 1

    def test_exponents(self):
        p = Polynomial({Monomial({"x": 3}): 2.0, Monomial.of("x", "y"): 1.0})
        compiled = CompiledPolynomial(p)
        valuation = {"x": 2.0, "y": 5.0}
        assert compiled.evaluate(valuation) == pytest.approx(p.evaluate(valuation))

    def test_missing_variable_raises(self, p1):
        with pytest.raises(MissingValuationError):
            CompiledPolynomial(p1).evaluate({"p1": 1.0})

    def test_num_monomials(self, p1):
        assert CompiledPolynomial(p1).num_monomials() == p1.num_monomials()

    def test_evaluate_many(self, p1):
        compiled = CompiledPolynomial(p1)
        valuations = [
            {"p1": 1.0, "v": 1.0, "m1": 1.0, "m3": 1.0},
            {"p1": 1.0, "v": 1.0, "m1": 1.0, "m3": 0.8},
        ]
        results = compiled.evaluate_many(valuations)
        assert results.shape == (2,)
        assert results[0] == pytest.approx(p1.evaluate(valuations[0]))
        assert results[1] == pytest.approx(p1.evaluate(valuations[1]))


class TestCompiledProvenanceSet:
    @pytest.fixture
    def provenance(self, p1):
        provenance = ProvenanceSet()
        provenance[("10001",)] = p1
        provenance[("10002",)] = Polynomial.from_terms(
            [(77.9, ["b1", "m1"]), (80.5, ["b1", "m3"]), (3.0, [])]
        )
        return provenance

    def test_matches_naive_evaluation(self, provenance):
        compiled = CompiledProvenanceSet(provenance)
        valuation = Valuation.uniform(provenance.variables(), 1.0).updated({"m3": 0.8})
        naive = provenance.evaluate(valuation)
        fast = compiled.evaluate(valuation)
        assert set(fast) == set(naive)
        for key in naive:
            assert fast[key] == pytest.approx(naive[key])

    def test_size_matches(self, provenance):
        assert CompiledProvenanceSet(provenance).size() == provenance.size()

    def test_keys_order_preserved(self, provenance):
        assert CompiledProvenanceSet(provenance).keys == provenance.keys()

    def test_evaluate_vector_alignment(self, provenance):
        compiled = CompiledProvenanceSet(provenance)
        valuation = Valuation.uniform(provenance.variables(), 1.0)
        vector = compiled.evaluate_vector(valuation)
        mapping = compiled.evaluate(valuation)
        for index, key in enumerate(compiled.keys):
            assert vector[index] == pytest.approx(mapping[key])

    def test_missing_variable_raises(self, provenance):
        with pytest.raises(MissingValuationError):
            CompiledProvenanceSet(provenance).evaluate({"p1": 1.0})

    def test_empty_set(self):
        compiled = CompiledProvenanceSet(ProvenanceSet())
        assert compiled.size() == 0
        assert compiled.evaluate({}) == {}


class TestFingerprintCache:
    def test_get_counts_misses(self):
        """Regression: misses used to be counted only via get_or_build."""
        cache = FingerprintCache(capacity=2)
        assert cache.get("absent") is None
        assert cache.info()["misses"] == 1
        assert cache.info()["hits"] == 0

    def test_cached_falsy_values_are_hits(self):
        """Regression: a cached None/0/False was reported as a miss."""
        cache = FingerprintCache(capacity=4)
        cache.put("none", None)
        cache.put("zero", 0)
        cache.put("false", False)
        assert cache.get("none") is None
        assert cache.get("zero") == 0
        assert cache.get("false") is False
        info = cache.info()
        assert info["hits"] == 3
        assert info["misses"] == 0

    def test_get_or_build_does_not_rebuild_falsy_values(self):
        cache = FingerprintCache(capacity=2)
        calls = []

        def factory():
            calls.append(1)
            return None

        assert cache.get_or_build("k", factory) is None
        assert cache.get_or_build("k", factory) is None
        assert len(calls) == 1
        info = cache.info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_get_default_argument(self):
        cache = FingerprintCache(capacity=2)
        sentinel = object()
        assert cache.get("absent", sentinel) is sentinel

    def test_lru_eviction_and_recency(self):
        cache = FingerprintCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch a -> b is least recent
        cache.put("c", 3)
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert cache.get("c") == 3
