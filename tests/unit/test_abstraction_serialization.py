"""Unit tests for abstraction (de)serialisation and the CLI summary output."""

import json

import pytest

from repro.core.compression import Abstraction, apply_abstraction
from repro.core.cut import Cut
from repro.exceptions import AbstractionError
from repro.workloads.abstraction_trees import plans_tree
from repro.workloads.telephony import example2_provenance


class TestAbstractionRoundTrip:
    def test_round_trip_from_groups(self):
        abstraction = Abstraction.from_groups(
            {"SB": ["b1", "b2"], "F": ["f1", "f2"]}
        )
        restored = Abstraction.from_dict(abstraction.to_dict())
        assert restored.grouped_variables() == abstraction.grouped_variables()

    def test_round_trip_from_cut(self):
        tree = plans_tree()
        abstraction = Abstraction.from_cut(
            Cut.of(tree, "Business", "Special", "Standard")
        )
        restored = Abstraction.from_dict(
            json.loads(json.dumps(abstraction.to_dict()))
        )
        assert restored.mapping == dict(abstraction.mapping)

    def test_restored_abstraction_compresses_identically(self):
        provenance = example2_provenance()
        tree = plans_tree()
        original = Abstraction.from_cut(Cut.of(tree, "Plans"))
        restored = Abstraction.from_dict(original.to_dict())
        assert (
            apply_abstraction(provenance, original).compressed
            == apply_abstraction(provenance, restored).compressed
        )

    def test_missing_groups_rejected(self):
        with pytest.raises(AbstractionError):
            Abstraction.from_dict({})


class TestCliSummaryOutput:
    def test_compress_writes_summary(self, tmp_path, capsys):
        from repro.cli.main import main
        from repro.provenance.serialization import save_provenance_set

        provenance_path = tmp_path / "prov.json"
        save_provenance_set(example2_provenance(), provenance_path)
        tree_path = tmp_path / "tree.json"
        tree_path.write_text(json.dumps(plans_tree().to_dict()))
        summary_path = tmp_path / "summary.json"

        code = main(
            [
                "compress",
                "--input", str(provenance_path),
                "--tree", str(tree_path),
                "--bound", "6",
                "--summary", str(summary_path),
            ]
        )
        assert code == 0
        summary = json.loads(summary_path.read_text())
        assert summary["original_size"] == 14
        assert summary["compressed_size"] <= 6
        assert summary["feasible"] is True
        assert "abstraction" in summary and "groups" in summary["abstraction"]
        capsys.readouterr()
