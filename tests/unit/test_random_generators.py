"""Unit tests for the random provenance / tree generators."""

import pytest

from repro.core.optimizer import build_load_model
from repro.workloads.random_polynomials import (
    random_provenance,
    random_single_tree_instance,
    random_tree,
)


class TestRandomTree:
    def test_leaf_count(self):
        for leaves in (1, 2, 5, 17):
            tree = random_tree(leaves, seed=3)
            assert len(tree.leaves()) == leaves

    def test_deterministic(self):
        a = random_tree(10, seed=5)
        b = random_tree(10, seed=5)
        assert a.nodes() == b.nodes()

    def test_different_seeds_differ(self):
        a = random_tree(10, seed=1)
        b = random_tree(10, seed=2)
        assert a.nodes() != b.nodes() or a.leaves() == b.leaves()

    def test_invalid_leaf_count(self):
        with pytest.raises(ValueError):
            random_tree(0)

    def test_leaf_names_follow_prefix(self):
        tree = random_tree(4, seed=0, leaf_prefix="leaf")
        assert all(name.startswith("leaf") for name in tree.leaves())


class TestRandomProvenance:
    def test_group_count_and_size(self):
        provenance = random_provenance(
            ["x1", "x2", "x3"], num_groups=4, monomials_per_group=10, seed=1
        )
        assert len(provenance) == 4
        assert provenance.size() <= 40

    def test_deterministic(self):
        a = random_provenance(["x1", "x2"], seed=9)
        b = random_provenance(["x1", "x2"], seed=9)
        assert a == b

    def test_variables_come_from_requested_pools(self):
        provenance = random_provenance(
            ["x1", "x2"], extra_variables=["e1"], num_groups=2, seed=2
        )
        assert provenance.variables() <= {"x1", "x2", "e1"}


class TestRandomInstance:
    def test_satisfies_dp_precondition(self):
        for seed in range(3):
            provenance, tree = random_single_tree_instance(seed=seed)
            model = build_load_model(provenance, tree)  # must not raise
            assert model.base_monomials >= 0

    def test_tree_and_provenance_are_matched(self):
        provenance, tree = random_single_tree_instance(num_leaves=5, seed=1)
        tree_leaves = set(tree.leaves())
        used = provenance.variables()
        assert used & tree_leaves, "some tree variables must occur in the provenance"
