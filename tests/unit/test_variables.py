"""Unit tests for provenance variables and the variable registry."""

import pytest

from repro.exceptions import InvalidVariableNameError
from repro.provenance.variables import (
    Variable,
    VariableRegistry,
    validate_variable_name,
    variable_name,
)


class TestValidateVariableName:
    def test_accepts_simple_names(self):
        assert validate_variable_name("p1") == "p1"
        assert validate_variable_name("m3") == "m3"
        assert validate_variable_name("_hidden") == "_hidden"

    def test_accepts_dots_and_dashes(self):
        assert validate_variable_name("n_united.states-1") == "n_united.states-1"

    def test_rejects_empty(self):
        with pytest.raises(InvalidVariableNameError):
            validate_variable_name("")

    def test_rejects_none(self):
        with pytest.raises(InvalidVariableNameError):
            validate_variable_name(None)

    def test_rejects_leading_digit(self):
        with pytest.raises(InvalidVariableNameError):
            validate_variable_name("1p")

    def test_rejects_whitespace(self):
        with pytest.raises(InvalidVariableNameError):
            validate_variable_name("p 1")

    def test_rejects_operator_characters(self):
        with pytest.raises(InvalidVariableNameError):
            validate_variable_name("p*1")


class TestVariable:
    def test_name_is_validated(self):
        with pytest.raises(InvalidVariableNameError):
            Variable("not a name")

    def test_metadata_is_kept(self):
        variable = Variable("p1", table="Plans", column="Price", key=("A", 1))
        assert variable.table == "Plans"
        assert variable.column == "Price"
        assert variable.key == ("A", 1)

    def test_str_is_name(self):
        assert str(Variable("p1")) == "p1"

    def test_variable_name_coercion(self):
        assert variable_name(Variable("p1")) == "p1"
        assert variable_name("m1") == "m1"


class TestVariableRegistry:
    def test_declare_and_get(self):
        registry = VariableRegistry()
        variable = registry.declare("p1", table="Plans")
        assert registry.get("p1") is variable
        assert "p1" in registry
        assert len(registry) == 1

    def test_redeclare_identical_is_noop(self):
        registry = VariableRegistry()
        first = registry.declare("p1", table="Plans")
        second = registry.declare("p1", table="Plans")
        assert first == second
        assert len(registry) == 1

    def test_redeclare_conflicting_metadata_raises(self):
        registry = VariableRegistry()
        registry.declare("p1", table="Plans")
        with pytest.raises(InvalidVariableNameError):
            registry.declare("p1", table="Calls")

    def test_fresh_names_are_unique_and_deterministic(self):
        registry = VariableRegistry()
        names = [registry.fresh("x").name for _ in range(5)]
        assert names == ["x_1", "x_2", "x_3", "x_4", "x_5"]

    def test_fresh_skips_explicitly_taken_names(self):
        registry = VariableRegistry()
        registry.declare("x_1")
        assert registry.fresh("x").name == "x_2"

    def test_by_table(self):
        registry = VariableRegistry()
        registry.declare("p1", table="Plans")
        registry.declare("m1", table="Calls")
        registry.declare("p2", table="Plans")
        assert {v.name for v in registry.by_table("Plans")} == {"p1", "p2"}

    def test_iteration_and_names(self):
        registry = VariableRegistry()
        registry.declare("a")
        registry.declare("b")
        assert registry.names() == ("a", "b")
        assert [v.name for v in registry] == ["a", "b"]

    def test_as_mapping_is_a_copy(self):
        registry = VariableRegistry()
        registry.declare("a")
        mapping = registry.as_mapping()
        assert set(mapping) == {"a"}
