"""Unit tests for the size/expressiveness Pareto frontier (compute_size_profile)."""

import pytest

from repro.core.brute_force import optimize_brute_force
from repro.core.compression import apply_abstraction
from repro.core.cut import enumerate_cuts
from repro.core.optimizer import compute_size_profile, optimize_single_tree
from repro.exceptions import SessionStateError
from repro.engine.session import CobraSession
from repro.workloads.abstraction_trees import months_tree, plans_tree
from repro.workloads.random_polynomials import random_single_tree_instance


class TestComputeSizeProfile:
    def test_profile_on_simple_instance(self, simple_provenance, simple_tree):
        profile = compute_size_profile(simple_provenance, simple_tree)
        # The finest cut has 5 nodes and the full size; the coarsest 1 node.
        assert profile[5] == simple_provenance.size()
        assert min(profile) == 1
        assert max(profile) == 5

    def test_profile_is_monotone(self, simple_provenance, simple_tree):
        profile = compute_size_profile(simple_provenance, simple_tree)
        cardinalities = sorted(profile)
        sizes = [profile[k] for k in cardinalities]
        assert sizes == sorted(sizes)

    def test_profile_matches_exhaustive_minimum(self, simple_provenance, simple_tree):
        profile = compute_size_profile(simple_provenance, simple_tree)
        best_by_cardinality = {}
        for cut in enumerate_cuts(simple_tree):
            size = apply_abstraction(simple_provenance, cut).compressed_size
            k = cut.num_variables()
            best_by_cardinality[k] = min(best_by_cardinality.get(k, size), size)
        assert profile == best_by_cardinality

    def test_profile_consistent_with_optimizer(self):
        provenance, tree = random_single_tree_instance(num_leaves=7, seed=3)
        profile = compute_size_profile(provenance, tree)
        for cardinality, size in profile.items():
            result = optimize_single_tree(provenance, tree, bound=size)
            # At that bound the optimizer keeps at least `cardinality` variables.
            assert result.cut.num_variables() >= cardinality

    def test_profile_on_running_example(self, example2, fig2_tree):
        profile = compute_size_profile(example2, fig2_tree)
        assert profile[1] == 4     # the root cut (S5 on both polynomials)
        assert profile[11] == 14   # the leaf cut
        assert profile[3] == 6     # the S1-level size


class TestSessionSizeProfile:
    def test_session_profile(self, example2, fig2_tree):
        session = CobraSession(example2)
        session.set_abstraction_trees(fig2_tree)
        profile = session.size_profile()
        assert profile[1] == 4
        assert profile[11] == 14

    def test_requires_tree(self, example2):
        session = CobraSession(example2)
        with pytest.raises(SessionStateError):
            session.size_profile()

    def test_rejects_forests(self, example2, fig2_tree):
        from repro.core.abstraction_tree import AbstractionForest

        session = CobraSession(example2)
        session.set_abstraction_trees(
            AbstractionForest([fig2_tree, months_tree(3)])
        )
        with pytest.raises(SessionStateError):
            session.size_profile()
