"""Contract tests: every registered backend honours the full ABC surface.

The registry is the extension point — new semirings plug in by subclassing
:class:`SemiringBackend` and registering an instance — so these tests pin
the contract mechanically for *whatever* is registered, not just the five
shipped backends:

* every abstract method/property is implemented (no lingering ABC stubs);
* every overridden method keeps the base signature (parameter names, kinds
  and defaults), so generic call sites never break on a specific backend;
* the compiled set each backend produces implements *its* ABC surface and
  its ``supports_deltas`` flag tells the truth.
"""

import inspect

import numpy as np
import pytest

from repro.provenance.backends import backend_names, resolve_backend
from repro.provenance.backends.base import CompiledSemiringSet, SemiringBackend
from repro.provenance.polynomial import Polynomial, ProvenanceSet

ALL_BACKENDS = backend_names()


def _provenance():
    result = ProvenanceSet()
    result[("r1",)] = Polynomial.from_terms([(2.0, ["x", "y"]), (1.0, [])])
    result[("r2",)] = Polynomial.from_terms([(3.0, ["z"])])
    return result


def _abstract_names(abc_class):
    return set(abc_class.__abstractmethods__)


def _overridden_methods(instance, abc_class):
    """(name, impl, base) for every base method the instance's class redefines."""
    for name, base_member in inspect.getmembers(abc_class):
        if name.startswith("__") or not callable(base_member):
            continue
        impl = getattr(type(instance), name, None)
        if impl is None or impl is base_member:
            continue
        yield name, impl, getattr(abc_class, name)


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestBackendContract:
    def test_resolves_to_a_semiring_backend(self, name):
        backend = resolve_backend(name)
        assert isinstance(backend, SemiringBackend)
        assert backend.name == name

    def test_every_abstract_member_is_implemented(self, name):
        backend = resolve_backend(name)
        assert not getattr(type(backend), "__abstractmethods__", frozenset())
        for member in _abstract_names(SemiringBackend):
            assert getattr(type(backend), member, None) is not None

    def test_overrides_keep_the_base_signature(self, name):
        backend = resolve_backend(name)
        for method, impl, base in _overridden_methods(backend, SemiringBackend):
            if isinstance(
                inspect.getattr_static(SemiringBackend, method), property
            ):
                continue
            impl_params = list(inspect.signature(impl).parameters.values())
            base_params = list(inspect.signature(base).parameters.values())
            assert [(p.name, p.kind, p.default) for p in impl_params] == [
                (p.name, p.kind, p.default) for p in base_params
            ], f"{name}.{method} diverges from SemiringBackend.{method}"

    def test_value_semantics_round_trip(self, name):
        backend = resolve_backend(name)
        default = backend.default_value("x")
        scaled = backend.scale_value(default, 2.0)
        pinned = backend.set_value(5.0, "x")
        for value in (default, scaled, pinned, backend.embed_coefficient(2.0)):
            backend.coerce(value)
            assert isinstance(backend.magnitude(value), float)
            assert isinstance(backend.format_value(value), str)
        assert isinstance(backend.delta(default, scaled), float)
        backend.reduce_members([default, scaled])

    def test_compiled_set_implements_the_full_surface(self, name):
        backend = resolve_backend(name)
        compiled = backend.compile(_provenance())
        assert isinstance(compiled, CompiledSemiringSet)
        assert not getattr(type(compiled), "__abstractmethods__", frozenset())
        assert set(compiled.keys) == {("r1",), ("r2",)}
        assert set(compiled.variables) == {"x", "y", "z"}
        assert compiled.size() >= 3
        assert compiled.dense_row_footprint() >= 1
        valuation = {v: backend.default_value(v) for v in compiled.variables}
        results = compiled.evaluate(valuation)
        assert set(results) == {("r1",), ("r2",)}
        many = compiled.evaluate_many([valuation, valuation])
        assert len(many) == 2

    def test_supports_deltas_flag_tells_the_truth(self, name):
        backend = resolve_backend(name)
        compiled = backend.compile(_provenance())
        base = np.array(
            [1.0, 2.0, 3.0] if backend.is_numeric else [0.0, 0.0, 0.0]
        )
        plans = [(np.array([0], dtype=np.intp), np.array([4.0]))]
        if compiled.supports_deltas:
            out = compiled.evaluate_deltas(base, plans)
            assert np.asarray(out).shape[0] == 1
        else:
            with pytest.raises(NotImplementedError):
                compiled.evaluate_deltas(base, plans)

    def test_error_measure_is_a_float_and_zero_on_identity(self, name):
        backend = resolve_backend(name)
        value = backend.set_value(3.0, "x")
        assert backend.error(value, value) == pytest.approx(0.0)
        assert isinstance(
            backend.error(value, backend.default_value("x")), float
        )
